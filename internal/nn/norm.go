package nn

import (
	"fmt"
	"math"

	"tinymlops/internal/tensor"
)

// BatchNorm1D normalizes each feature of a [batch, features] input over the
// batch dimension during training, tracking running statistics for
// inference.
type BatchNorm1D struct {
	F        int
	Eps      float32
	Momentum float32 // running-stat update rate, e.g. 0.1

	Gamma, Beta *Param
	RunMean     *tensor.Tensor
	RunVar      *tensor.Tensor

	lastXHat  *tensor.Tensor
	lastStd   []float32
	lastBatch int
}

// NewBatchNorm1D returns a batch-norm layer over f features.
func NewBatchNorm1D(f int) *BatchNorm1D {
	return &BatchNorm1D{
		F: f, Eps: 1e-5, Momentum: 0.1,
		Gamma:   newParam("gamma", tensor.Ones(f)),
		Beta:    newParam("beta", tensor.New(f)),
		RunMean: tensor.New(f),
		RunVar:  tensor.Ones(f),
	}
}

// Kind implements Layer.
func (bn *BatchNorm1D) Kind() string { return "batchnorm1d" }

// Forward implements Layer.
func (bn *BatchNorm1D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != bn.F {
		panic(fmt.Sprintf("nn: batchnorm1d(%d) got input shape %v", bn.F, x.Shape()))
	}
	b := x.Dim(0)
	out := tensor.New(b, bn.F)
	if !train {
		bn.InferInto(out, x)
		return out
	}
	bn.lastBatch = b
	bn.lastXHat = tensor.New(b, bn.F)
	bn.lastStd = make([]float32, bn.F)
	for j := 0; j < bn.F; j++ {
		var mean float64
		for i := 0; i < b; i++ {
			mean += float64(x.Data[i*bn.F+j])
		}
		mean /= float64(b)
		var variance float64
		for i := 0; i < b; i++ {
			d := float64(x.Data[i*bn.F+j]) - mean
			variance += d * d
		}
		variance /= float64(b)
		std := float32(math.Sqrt(variance + float64(bn.Eps)))
		bn.lastStd[j] = std
		bn.RunMean.Data[j] = (1-bn.Momentum)*bn.RunMean.Data[j] + bn.Momentum*float32(mean)
		bn.RunVar.Data[j] = (1-bn.Momentum)*bn.RunVar.Data[j] + bn.Momentum*float32(variance)
		g, be := bn.Gamma.Value.Data[j], bn.Beta.Value.Data[j]
		for i := 0; i < b; i++ {
			xh := (x.Data[i*bn.F+j] - float32(mean)) / std
			bn.lastXHat.Data[i*bn.F+j] = xh
			out.Data[i*bn.F+j] = g*xh + be
		}
	}
	return out
}

// InferInto implements the ForwardBatch fast path: normalization with the
// frozen running statistics, no batch-statistic updates.
func (bn *BatchNorm1D) InferInto(dst, x *tensor.Tensor) {
	if x.Rank() != 2 || x.Dim(1) != bn.F {
		panic(fmt.Sprintf("nn: batchnorm1d(%d) got input shape %v", bn.F, x.Shape()))
	}
	b := x.Dim(0)
	for j := 0; j < bn.F; j++ {
		inv := 1 / float32(math.Sqrt(float64(bn.RunVar.Data[j]+bn.Eps)))
		g, be, mu := bn.Gamma.Value.Data[j], bn.Beta.Value.Data[j], bn.RunMean.Data[j]
		for i := 0; i < b; i++ {
			dst.Data[i*bn.F+j] = g*(x.Data[i*bn.F+j]-mu)*inv + be
		}
	}
}

// Backward implements Layer.
func (bn *BatchNorm1D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	b := bn.lastBatch
	dx := tensor.New(b, bn.F)
	for j := 0; j < bn.F; j++ {
		var sumG, sumGX float32
		for i := 0; i < b; i++ {
			g := grad.Data[i*bn.F+j]
			sumG += g
			sumGX += g * bn.lastXHat.Data[i*bn.F+j]
		}
		bn.Beta.Grad.Data[j] += sumG
		bn.Gamma.Grad.Data[j] += sumGX
		gamma := bn.Gamma.Value.Data[j]
		invStd := 1 / bn.lastStd[j]
		nb := float32(b)
		for i := 0; i < b; i++ {
			g := grad.Data[i*bn.F+j]
			xh := bn.lastXHat.Data[i*bn.F+j]
			dx.Data[i*bn.F+j] = gamma * invStd / nb * (nb*g - sumG - xh*sumGX)
		}
	}
	return dx
}

// Params implements Layer.
func (bn *BatchNorm1D) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// Describe implements Layer.
func (bn *BatchNorm1D) Describe(in []int) (LayerInfo, error) {
	if len(in) != 1 || in[0] != bn.F {
		return LayerInfo{}, errShape("batchnorm1d", []int{bn.F}, in)
	}
	return LayerInfo{OutShape: []int{bn.F}, MACs: 2 * int64(bn.F),
		ParamCount: 2 * int64(bn.F), ActivationFloats: int64(bn.F)}, nil
}

// Dropout zeroes a fraction P of activations during training and rescales
// the survivors by 1/(1-P) (inverted dropout); it is the identity at
// inference time.
type Dropout struct {
	P   float32
	rng *tensor.RNG

	lastMask *tensor.Tensor
}

// NewDropout returns a dropout layer with drop probability p drawing its
// masks from rng.
func NewDropout(p float32, rng *tensor.RNG) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout probability %v out of [0,1)", p))
	}
	return &Dropout{P: p, rng: rng}
}

// Kind implements Layer.
func (d *Dropout) Kind() string { return "dropout" }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P == 0 {
		d.lastMask = nil
		return x
	}
	keep := 1 - d.P
	scale := 1 / keep
	d.lastMask = tensor.New(x.Shape()...)
	out := tensor.New(x.Shape()...)
	for i, v := range x.Data {
		if d.rng.Float32() < keep {
			d.lastMask.Data[i] = scale
			out.Data[i] = v * scale
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.lastMask == nil {
		return grad
	}
	return tensor.Mul(grad, d.lastMask)
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// Describe implements Layer.
func (d *Dropout) Describe(in []int) (LayerInfo, error) {
	return LayerInfo{OutShape: append([]int(nil), in...), ActivationFloats: shapeProduct(in)}, nil
}
