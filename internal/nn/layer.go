package nn

import (
	"fmt"

	"tinymlops/internal/tensor"
)

// Param is a trainable tensor together with its gradient accumulator.
type Param struct {
	// Name identifies the parameter within its layer ("weight", "bias", ...).
	Name string
	// Value is the current parameter tensor.
	Value *tensor.Tensor
	// Grad accumulates the gradient of the loss w.r.t. Value. It has the
	// same shape as Value and is reset by Network.ZeroGrad.
	Grad *tensor.Tensor
}

func newParam(name string, v *tensor.Tensor) *Param {
	return &Param{Name: name, Value: v, Grad: tensor.New(v.Shape()...)}
}

// LayerInfo describes the static properties of a layer for a given input
// shape (batch dimension excluded). It drives the device cost model and the
// fragmented-target compatibility checks.
type LayerInfo struct {
	// OutShape is the per-example output shape (batch dimension excluded).
	OutShape []int
	// MACs is the number of multiply-accumulate operations per example.
	MACs int64
	// ParamCount is the number of trainable parameters.
	ParamCount int64
	// ActivationFloats is the number of output floats per example, a proxy
	// for working-set memory.
	ActivationFloats int64
}

// Layer is one differentiable stage of a network.
//
// Forward caches whatever it needs for Backward; a layer therefore supports
// one in-flight forward/backward pair at a time (networks are cheap to
// Clone when concurrent training is needed, e.g. in federated simulation).
type Layer interface {
	// Kind returns the operator type ("dense", "conv2d", "relu", ...), used
	// for serialization and for device op-support matrices.
	Kind() string
	// Forward computes the layer output. train enables training-only
	// behaviour (dropout masks, batch-norm statistics updates).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes the gradient w.r.t. the layer output and returns
	// the gradient w.r.t. the layer input, accumulating parameter
	// gradients along the way.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the trainable parameters (possibly empty).
	Params() []*Param
	// Describe reports output shape and cost for a per-example input shape.
	Describe(in []int) (LayerInfo, error)
}

func shapeProduct(s []int) int64 {
	p := int64(1)
	for _, d := range s {
		p *= int64(d)
	}
	return p
}

func shapeEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func errShape(kind string, want, got []int) error {
	return fmt.Errorf("nn: %s expects input shape %v, got %v", kind, want, got)
}
