package nn

import (
	"fmt"
	"math"

	"tinymlops/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy of logits against
// integer labels, together with the gradient w.r.t. the logits. Fusing
// softmax with the loss keeps the computation numerically stable and makes
// the gradient the simple (p - onehot)/batch form.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (float32, *tensor.Tensor) {
	b, c := logits.Dim(0), logits.Dim(1)
	if len(labels) != b {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy got %d labels for batch %d", len(labels), b))
	}
	probs := SoftmaxRows(logits)
	grad := probs.Clone()
	var loss float64
	for i, y := range labels {
		if y < 0 || y >= c {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, c))
		}
		p := float64(probs.At2(i, y))
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
		grad.Set2(i, y, grad.At2(i, y)-1)
	}
	grad.Scale(1 / float32(b))
	return float32(loss / float64(b)), grad
}

// MSE computes the mean squared error between pred and target and its
// gradient w.r.t. pred.
func MSE(pred, target *tensor.Tensor) (float32, *tensor.Tensor) {
	if !tensor.SameShape(pred, target) {
		panic(fmt.Sprintf("nn: MSE shape mismatch %v vs %v", pred.Shape(), target.Shape()))
	}
	n := float32(pred.Size())
	grad := tensor.Sub(pred, target)
	var loss float64
	for _, d := range grad.Data {
		loss += float64(d) * float64(d)
	}
	grad.Scale(2 / n)
	return float32(loss / float64(n)), grad
}

// DistillationLoss blends hard-label cross-entropy with a soft-target term
// against teacher probabilities at temperature T (Hinton-style knowledge
// distillation). alpha weighs the soft term; the returned gradient is
// w.r.t. the student logits.
func DistillationLoss(studentLogits, teacherProbs *tensor.Tensor, labels []int, temperature, alpha float32) (float32, *tensor.Tensor) {
	if temperature <= 0 {
		panic("nn: distillation temperature must be positive")
	}
	hardLoss, hardGrad := SoftmaxCrossEntropy(studentLogits, labels)

	// Soft term: CE(teacherProbs, softmax(student/T)), gradient scaled by T²
	// as in the original formulation so the soft-gradient magnitude is
	// temperature-independent.
	b, c := studentLogits.Dim(0), studentLogits.Dim(1)
	scaled := studentLogits.Map(func(v float32) float32 { return v / temperature })
	sp := SoftmaxRows(scaled)
	var softLoss float64
	softGrad := tensor.New(b, c)
	for i := 0; i < b; i++ {
		for j := 0; j < c; j++ {
			tp := float64(teacherProbs.At2(i, j))
			p := float64(sp.At2(i, j))
			if p < 1e-12 {
				p = 1e-12
			}
			softLoss -= tp * math.Log(p)
			softGrad.Set2(i, j, (sp.At2(i, j)-teacherProbs.At2(i, j))*temperature/float32(b))
		}
	}
	loss := (1-alpha)*hardLoss + alpha*float32(softLoss/float64(b))
	grad := tensor.New(b, c)
	for i := range grad.Data {
		grad.Data[i] = (1-alpha)*hardGrad.Data[i] + alpha*softGrad.Data[i]
	}
	return loss, grad
}

// Accuracy returns the fraction of rows of logits whose argmax equals the
// label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	pred := logits.ArgMaxRows()
	if len(pred) != len(labels) {
		panic(fmt.Sprintf("nn: Accuracy got %d predictions for %d labels", len(pred), len(labels)))
	}
	if len(labels) == 0 {
		return 0
	}
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}
