// Package nn is a from-scratch neural-network engine: layers with forward
// and backward passes, losses, optimizers, a training loop, binary model
// serialization and per-layer cost accounting.
//
// It plays the role TFLite-Micro/ONNX-Runtime play for the paper: the
// inference substrate every TinyMLOps feature (quantization, watermarking,
// federated learning, verifiable execution) operates on. Keeping it in-repo
// gives those features full access to weights, gradients and layer
// structure.
//
// Tensors follow the conventions of internal/tensor: dense layers take
// [batch, features]; convolutional layers take [batch, channels, h, w].
//
// Two forward paths exist. Layer.Forward caches what Backward needs, so a
// network is single-flight while training. Network.ForwardBatch is the
// serving path: batched, allocation-free in the steady state (reusable
// Scratch buffers), free of layer-state writes — so one model can serve
// many simulated devices concurrently — and bit-identical to per-sample
// Forward, which keeps the fast path out of the accuracy story entirely.
package nn
