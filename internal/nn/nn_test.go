package nn

import (
	"math"
	"testing"

	"tinymlops/internal/tensor"
)

// numericalGrad estimates d(loss)/d(param) for one scalar parameter by
// central differences, using a full forward pass each time.
func numericalGrad(net *Network, x *tensor.Tensor, labels []int, p *tensor.Tensor, i int) float64 {
	const eps = 1e-3
	orig := p.Data[i]
	p.Data[i] = orig + eps
	lp, _ := SoftmaxCrossEntropy(net.Forward(x, false), labels)
	p.Data[i] = orig - eps
	lm, _ := SoftmaxCrossEntropy(net.Forward(x, false), labels)
	p.Data[i] = orig
	return (float64(lp) - float64(lm)) / (2 * eps)
}

// checkGradients compares analytic and numeric gradients for a sample of
// parameter entries of each layer.
func checkGradients(t *testing.T, net *Network, x *tensor.Tensor, labels []int, tol float64) {
	t.Helper()
	net.ZeroGrad()
	logits := net.Forward(x, false)
	_, grad := SoftmaxCrossEntropy(logits, labels)
	net.Backward(grad)
	rng := tensor.NewRNG(99)
	for _, p := range net.Params() {
		n := p.Value.Size()
		samples := 6
		if n < samples {
			samples = n
		}
		for s := 0; s < samples; s++ {
			i := rng.Intn(n)
			analytic := float64(p.Grad.Data[i])
			numeric := numericalGrad(net, x, labels, p.Value, i)
			diff := math.Abs(analytic - numeric)
			scale := math.Max(1, math.Max(math.Abs(analytic), math.Abs(numeric)))
			if diff/scale > tol {
				t.Fatalf("gradient mismatch %s[%d]: analytic %g numeric %g", p.Name, i, analytic, numeric)
			}
		}
	}
}

func TestDenseGradient(t *testing.T) {
	rng := tensor.NewRNG(1)
	net := NewNetwork([]int{5}, NewDense(5, 4, rng))
	x := tensor.Randn(rng, 1, 8, 5)
	labels := []int{0, 1, 2, 3, 0, 1, 2, 3}
	checkGradients(t, net, x, labels, 2e-2)
}

func TestMLPGradient(t *testing.T) {
	rng := tensor.NewRNG(2)
	net := NewNetwork([]int{6},
		NewDense(6, 10, rng), NewTanh(),
		NewDense(10, 8, rng), NewSigmoid(),
		NewDense(8, 3, rng))
	x := tensor.Randn(rng, 1, 6, 6)
	labels := []int{0, 1, 2, 0, 1, 2}
	checkGradients(t, net, x, labels, 3e-2)
}

func TestReLUGradient(t *testing.T) {
	rng := tensor.NewRNG(3)
	net := NewNetwork([]int{6}, NewDense(6, 12, rng), NewReLU(), NewDense(12, 3, rng))
	// Offset inputs away from the ReLU kink so central differences are valid.
	x := tensor.Randn(rng, 1, 5, 6).AddScalar(0.3)
	labels := []int{0, 1, 2, 0, 1}
	checkGradients(t, net, x, labels, 3e-2)
}

func TestConvGradient(t *testing.T) {
	rng := tensor.NewRNG(4)
	net := NewNetwork([]int{1, 6, 6},
		NewConv2D(1, 3, 3, 3, 1, 1, rng), NewReLU(),
		NewMaxPool2D(2, 2),
		NewFlatten(),
		NewDense(3*3*3, 2, rng))
	x := tensor.Randn(rng, 1, 4, 1, 6, 6).AddScalar(0.2)
	labels := []int{0, 1, 0, 1}
	checkGradients(t, net, x, labels, 4e-2)
}

func TestBatchNormGradient(t *testing.T) {
	rng := tensor.NewRNG(5)
	bn := NewBatchNorm1D(4)
	net := NewNetwork([]int{4}, NewDense(4, 4, rng), bn, NewDense(4, 2, rng))
	x := tensor.Randn(rng, 1, 6, 4)
	labels := []int{0, 1, 0, 1, 0, 1}
	// Batch-norm training mode differs from eval mode; check gradients with
	// train=true forward passes by temporarily wiring them manually.
	net.ZeroGrad()
	logits := net.Forward(x, true)
	_, grad := SoftmaxCrossEntropy(logits, labels)
	net.Backward(grad)
	// Validate gamma gradient numerically (in train mode).
	const eps = 1e-3
	for i := 0; i < 4; i++ {
		orig := bn.Gamma.Value.Data[i]
		bn.Gamma.Value.Data[i] = orig + eps
		lp, _ := SoftmaxCrossEntropy(net.Forward(x, true), labels)
		bn.Gamma.Value.Data[i] = orig - eps
		lm, _ := SoftmaxCrossEntropy(net.Forward(x, true), labels)
		bn.Gamma.Value.Data[i] = orig
		numeric := (float64(lp) - float64(lm)) / (2 * eps)
		analytic := float64(bn.Gamma.Grad.Data[i])
		if math.Abs(analytic-numeric) > 3e-2*math.Max(1, math.Abs(numeric)) {
			t.Fatalf("batchnorm gamma[%d] gradient: analytic %g numeric %g", i, analytic, numeric)
		}
	}
}

func TestSoftmaxLayerMatchesSoftmaxRows(t *testing.T) {
	rng := tensor.NewRNG(6)
	x := tensor.Randn(rng, 2, 4, 5)
	sm := NewSoftmax()
	y := sm.Forward(x, false)
	want := SoftmaxRows(x)
	if !tensor.ApproxEqual(y, want, 1e-6) {
		t.Fatal("Softmax layer disagrees with SoftmaxRows")
	}
	for i := 0; i < 4; i++ {
		var s float32
		for j := 0; j < 5; j++ {
			s += y.At2(i, j)
		}
		if math.Abs(float64(s)-1) > 1e-5 {
			t.Fatalf("softmax row %d sums to %v", i, s)
		}
	}
}

func TestDropoutTrainVsEval(t *testing.T) {
	rng := tensor.NewRNG(7)
	d := NewDropout(0.5, rng)
	x := tensor.Ones(1, 1000)
	ytrain := d.Forward(x, true)
	zeros := 0
	for _, v := range ytrain.Data {
		if v == 0 {
			zeros++
		}
	}
	if zeros < 350 || zeros > 650 {
		t.Fatalf("dropout p=0.5 zeroed %d of 1000", zeros)
	}
	// Survivors are scaled by 2.
	for _, v := range ytrain.Data {
		if v != 0 && v != 2 {
			t.Fatalf("dropout survivor has value %v, want 2", v)
		}
	}
	yeval := d.Forward(x, false)
	if !tensor.ApproxEqual(yeval, x, 0) {
		t.Fatal("dropout must be identity in eval mode")
	}
}

func TestSoftmaxCrossEntropyKnownValue(t *testing.T) {
	logits := tensor.FromSlice([]float32{0, 0}, 1, 2)
	loss, grad := SoftmaxCrossEntropy(logits, []int{0})
	want := float32(math.Log(2))
	if math.Abs(float64(loss-want)) > 1e-6 {
		t.Fatalf("loss = %v, want ln2", loss)
	}
	if math.Abs(float64(grad.At2(0, 0)+0.5)) > 1e-6 || math.Abs(float64(grad.At2(0, 1)-0.5)) > 1e-6 {
		t.Fatalf("grad = %v", grad.Data)
	}
}

func TestMSEKnownValue(t *testing.T) {
	pred := tensor.FromSlice([]float32{1, 2}, 1, 2)
	targ := tensor.FromSlice([]float32{0, 0}, 1, 2)
	loss, grad := MSE(pred, targ)
	if loss != 2.5 {
		t.Fatalf("MSE = %v, want 2.5", loss)
	}
	if grad.Data[0] != 1 || grad.Data[1] != 2 {
		t.Fatalf("MSE grad = %v", grad.Data)
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float32{
		2, 1, 0,
		0, 3, 1,
		1, 0, 5,
		9, 0, 0,
	}, 4, 3)
	if got := Accuracy(logits, []int{0, 1, 2, 1}); got != 0.75 {
		t.Fatalf("Accuracy = %v, want 0.75", got)
	}
}

func TestTrainLearnsLinearlySeparable(t *testing.T) {
	rng := tensor.NewRNG(8)
	// Two Gaussian blobs separated along the first coordinate.
	n := 400
	x := tensor.New(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		cx := float32(-2 + 4*cls)
		x.Set2(i, 0, cx+rng.NormFloat32()*0.5)
		x.Set2(i, 1, rng.NormFloat32()*0.5)
		labels[i] = cls
	}
	net := NewNetwork([]int{2}, NewDense(2, 8, rng), NewReLU(), NewDense(8, 2, rng))
	_, err := Train(net, x, labels, TrainConfig{
		Epochs: 10, BatchSize: 32, Optimizer: NewSGD(0.1).WithMomentum(0.9), RNG: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Evaluate(net, x, labels); acc < 0.98 {
		t.Fatalf("train accuracy %v < 0.98", acc)
	}
}

func TestAdamConvergesFasterThanPlainsSGDOnRosenbrockLikeTask(t *testing.T) {
	// Tiny regression sanity check: Adam reduces loss on a fixed batch.
	rng := tensor.NewRNG(9)
	net := NewNetwork([]int{3}, NewDense(3, 16, rng), NewTanh(), NewDense(16, 2, rng))
	x := tensor.Randn(rng, 1, 64, 3)
	labels := make([]int, 64)
	for i := range labels {
		if x.At2(i, 0)+x.At2(i, 1) > 0 {
			labels[i] = 1
		}
	}
	opt := NewAdam(0.01)
	first := float32(0)
	var last float32
	for step := 0; step < 60; step++ {
		net.ZeroGrad()
		loss, grad := SoftmaxCrossEntropy(net.Forward(x, true), labels)
		net.Backward(grad)
		opt.Step(net.Params())
		if step == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first/2 {
		t.Fatalf("Adam failed to reduce loss: first %v last %v", first, last)
	}
}

func TestSerializationRoundTripPreservesPredictions(t *testing.T) {
	rng := tensor.NewRNG(10)
	net := NewNetwork([]int{1, 8, 8},
		NewConv2D(1, 4, 3, 3, 1, 1, rng), NewReLU(),
		NewMaxPool2D(2, 2), NewFlatten(),
		NewDense(4*4*4, 16, rng), NewBatchNorm1D(16), NewTanh(),
		NewDropout(0.3, rng),
		NewDense(16, 3, rng), NewSoftmax())
	x := tensor.Randn(rng, 1, 5, 1, 8, 8)
	want := net.Predict(x)

	data, err := net.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	net2, err := UnmarshalNetwork(data)
	if err != nil {
		t.Fatal(err)
	}
	got := net2.Predict(x)
	if !tensor.ApproxEqual(want, got, 1e-6) {
		t.Fatal("round-tripped network changed predictions")
	}
	if net2.ParamCount() != net.ParamCount() {
		t.Fatalf("param count changed: %d vs %d", net2.ParamCount(), net.ParamCount())
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalNetwork([]byte("garbage stream")); err == nil {
		t.Fatal("UnmarshalNetwork accepted garbage")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	rng := tensor.NewRNG(11)
	net := NewNetwork([]int{4}, NewDense(4, 4, rng))
	clone := net.Clone()
	net.Params()[0].Value.Data[0] += 100
	if clone.Params()[0].Value.Data[0] == net.Params()[0].Value.Data[0] {
		t.Fatal("clone shares weight storage with original")
	}
}

func TestFlatParamsRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(12)
	net := NewNetwork([]int{4}, NewDense(4, 8, rng), NewReLU(), NewDense(8, 2, rng))
	v := net.FlatParams()
	if len(v) != net.ParamCount() {
		t.Fatalf("FlatParams length %d, want %d", len(v), net.ParamCount())
	}
	for i := range v {
		v[i] = float32(i)
	}
	if err := net.SetFlatParams(v); err != nil {
		t.Fatal(err)
	}
	got := net.FlatParams()
	for i := range got {
		if got[i] != float32(i) {
			t.Fatalf("FlatParams[%d] = %v after SetFlatParams", i, got[i])
		}
	}
	if err := net.SetFlatParams(v[:3]); err == nil {
		t.Fatal("SetFlatParams accepted wrong length")
	}
}

func TestSummaryAndMACs(t *testing.T) {
	rng := tensor.NewRNG(13)
	net := NewNetwork([]int{1, 8, 8},
		NewConv2D(1, 2, 3, 3, 1, 1, rng), // out [2,8,8], MACs = 2*8*8*9 = 1152
		NewMaxPool2D(2, 2),               // out [2,4,4]
		NewFlatten(),                     // out [32]
		NewDense(32, 10, rng))            // MACs 320
	cs, err := net.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 4 {
		t.Fatalf("summary has %d entries", len(cs))
	}
	if cs[0].Info.MACs != 1152 {
		t.Fatalf("conv MACs = %d, want 1152", cs[0].Info.MACs)
	}
	if got := cs[2].Info.OutShape[0]; got != 32 {
		t.Fatalf("flatten out = %d, want 32", got)
	}
	total, err := net.TotalMACs()
	if err != nil {
		t.Fatal(err)
	}
	if total != 1152+320 {
		t.Fatalf("TotalMACs = %d", total)
	}
	outShape, err := net.OutputShape()
	if err != nil {
		t.Fatal(err)
	}
	if len(outShape) != 1 || outShape[0] != 10 {
		t.Fatalf("OutputShape = %v", outShape)
	}
}

func TestSummaryReportsShapeErrors(t *testing.T) {
	rng := tensor.NewRNG(14)
	net := NewNetwork([]int{5}, NewDense(4, 2, rng)) // mismatched input
	if _, err := net.Summary(); err == nil {
		t.Fatal("Summary accepted mismatched shapes")
	}
}

func TestOpKinds(t *testing.T) {
	rng := tensor.NewRNG(15)
	net := NewNetwork([]int{4}, NewDense(4, 4, rng), NewReLU(), NewDense(4, 2, rng))
	kinds := net.OpKinds()
	if len(kinds) != 2 || kinds[0] != "dense" || kinds[1] != "relu" {
		t.Fatalf("OpKinds = %v", kinds)
	}
}

func TestDistillationLossGradientDirection(t *testing.T) {
	rng := tensor.NewRNG(16)
	logits := tensor.Randn(rng, 1, 4, 3)
	teacher := SoftmaxRows(tensor.Randn(rng, 1, 4, 3))
	labels := []int{0, 1, 2, 0}
	loss, grad := DistillationLoss(logits, teacher, labels, 2.0, 0.5)
	if loss <= 0 {
		t.Fatalf("distillation loss = %v", loss)
	}
	// Gradient step should reduce the loss.
	lr := float32(0.5)
	stepped := logits.Clone()
	stepped.Axpy(-lr, grad)
	loss2, _ := DistillationLoss(stepped, teacher, labels, 2.0, 0.5)
	if loss2 >= loss {
		t.Fatalf("distillation loss did not decrease: %v -> %v", loss, loss2)
	}
}

func TestMeanLossMatchesDirectComputation(t *testing.T) {
	rng := tensor.NewRNG(17)
	net := NewNetwork([]int{4}, NewDense(4, 3, rng))
	x := tensor.Randn(rng, 1, 10, 4)
	labels := []int{0, 1, 2, 0, 1, 2, 0, 1, 2, 0}
	want, _ := SoftmaxCrossEntropy(net.Predict(x), labels)
	got := MeanLoss(net, x, labels)
	if math.Abs(float64(want-got)) > 1e-5 {
		t.Fatalf("MeanLoss = %v, want %v", got, want)
	}
}

func TestBatchNormRunningStatsConverge(t *testing.T) {
	rng := tensor.NewRNG(18)
	bn := NewBatchNorm1D(1)
	// Feed batches with mean 3, std 2.
	for i := 0; i < 200; i++ {
		x := tensor.Randn(rng, 2, 64, 1).AddScalar(3)
		bn.Forward(x, true)
	}
	if math.Abs(float64(bn.RunMean.Data[0])-3) > 0.3 {
		t.Fatalf("running mean = %v, want ≈3", bn.RunMean.Data[0])
	}
	if math.Abs(float64(bn.RunVar.Data[0])-4) > 0.8 {
		t.Fatalf("running var = %v, want ≈4", bn.RunVar.Data[0])
	}
}
