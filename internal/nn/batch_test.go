package nn

import (
	"sync"
	"testing"

	"tinymlops/internal/tensor"
)

// rowByRow runs every example of x through net.Forward individually and
// concatenates the outputs — the single-sample reference path.
func rowByRow(t *testing.T, net *Network, x *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	n := x.Dim(0)
	exampleSize := x.Size() / n
	var out *tensor.Tensor
	for i := 0; i < n; i++ {
		shape := append([]int{1}, x.Shape()[1:]...)
		row := tensor.FromSlice(x.Data[i*exampleSize:(i+1)*exampleSize], shape...)
		y := net.Forward(row, false)
		if out == nil {
			out = tensor.New(append([]int{n}, y.Shape()[1:]...)...)
		}
		copy(out.Data[i*y.Size():(i+1)*y.Size()], y.Data)
	}
	return out
}

func requireIdentical(t *testing.T, name string, got, want *tensor.Tensor) {
	t.Helper()
	if !tensor.SameShape(got, want) {
		t.Fatalf("%s: shape %v vs %v", name, got.Shape(), want.Shape())
	}
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: element %d differs: %v vs %v (outputs must be bit-identical)",
				name, i, got.Data[i], want.Data[i])
		}
	}
}

// TestForwardBatchMatchesSingleSampleMLP checks the acceptance contract:
// ForwardBatch output is byte-identical to per-sample Forward, including
// through batch norm (frozen stats), dropout (identity) and softmax.
func TestForwardBatchMatchesSingleSampleMLP(t *testing.T) {
	rng := tensor.NewRNG(11)
	net := NewNetwork([]int{16},
		NewDense(16, 32, rng), NewBatchNorm1D(32), NewReLU(),
		NewDropout(0.3, rng), NewDense(32, 24, rng), NewTanh(),
		NewDense(24, 5, rng), NewSoftmax())
	// Train a little so batch-norm running statistics are non-trivial.
	x := tensor.Randn(rng, 1, 128, 16)
	labels := make([]int, 128)
	for i := range labels {
		labels[i] = rng.Intn(5)
	}
	if _, err := Train(net, x, labels, TrainConfig{Epochs: 2, BatchSize: 16, Optimizer: NewSGD(0.05), RNG: rng}); err != nil {
		t.Fatal(err)
	}

	for _, batch := range []int{1, 16, 33} {
		in := tensor.Randn(rng, 1, batch, 16)
		want := rowByRow(t, net, in)
		scratch := NewScratch()
		got := net.ForwardBatch(in, scratch)
		requireIdentical(t, "mlp batched vs per-sample", got, want)
		// Scratch reuse must not change results.
		requireIdentical(t, "mlp scratch reuse", net.ForwardBatch(in, scratch), want)
		// Nil scratch allocates per call but computes the same values.
		requireIdentical(t, "mlp nil scratch", net.ForwardBatch(in, nil), want)
		// The regular full-batch Forward is the third equivalent path.
		requireIdentical(t, "mlp Forward full batch", net.Forward(in, false), want)
	}
}

// TestForwardBatchMatchesSingleSampleConv covers the conv/pool/flatten
// fast paths.
func TestForwardBatchMatchesSingleSampleConv(t *testing.T) {
	rng := tensor.NewRNG(13)
	net := NewNetwork([]int{1, 12, 12},
		NewConv2D(1, 4, 3, 3, 1, 1, rng), NewReLU(),
		NewMaxPool2D(2, 2), NewConv2D(4, 8, 3, 3, 1, 0, rng), NewReLU(),
		NewFlatten(), NewDense(8*4*4, 4, rng), NewSoftmax())
	in := tensor.Randn(rng, 1, 9, 1, 12, 12)
	want := rowByRow(t, net, in)
	got := net.ForwardBatch(in, NewScratch())
	requireIdentical(t, "conv batched vs per-sample", got, want)
}

// TestForwardBatchConcurrent drives one shared network from many
// goroutines with per-goroutine scratches; the race detector guards the
// stateless-fast-path contract.
func TestForwardBatchConcurrent(t *testing.T) {
	rng := tensor.NewRNG(17)
	net := NewNetwork([]int{8},
		NewDense(8, 32, rng), NewReLU(), NewBatchNorm1D(32), NewDense(32, 3, rng))
	in := tensor.Randn(rng, 1, 10, 8)
	want := net.ForwardBatch(in, nil).Clone()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := NewScratch()
			for k := 0; k < 50; k++ {
				got := net.ForwardBatch(in, scratch)
				for i := range got.Data {
					if got.Data[i] != want.Data[i] {
						t.Errorf("concurrent ForwardBatch diverged at %d", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
