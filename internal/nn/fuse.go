package nn

import (
	"math"

	"tinymlops/internal/tensor"
)

// This file implements the compiled batch program behind
// Network.ForwardBatch: the layer list is lowered once per (batch, input
// shape) into a list of steps whose buffers, workspace headers and fusion
// decisions are all resolved ahead of time, so running the program in the
// steady state allocates nothing. Dense layers absorb a following
// BatchNorm1D (frozen statistics) and elementwise activations into a
// single fused kernel; Conv2D absorbs elementwise activations. Every
// fused epilogue reproduces the exact arithmetic of the layer it absorbs
// (same formula, same element order), so a compiled program's output is
// bit-identical to the legacy layer-by-layer path and to Forward.

// epKind identifies one fused epilogue operation.
type epKind int

const (
	epReLU epKind = iota
	epTanh
	epSigmoid
	epBatchNorm
)

// epilogue is one elementwise (or, for batch norm, columnwise) transform
// applied in place to a fused step's output.
type epilogue struct {
	kind epKind
	bn   *BatchNorm1D // epBatchNorm only
}

// stepKind identifies the executable form of one compiled step.
type stepKind int

const (
	stepFlatten stepKind = iota
	stepDense
	stepConv
	stepPlain
)

// bstep is one compiled step: its output buffer, any hoisted workspace
// headers, and the epilogue ops fused into it.
type bstep struct {
	kind  stepKind
	dst   *tensor.Tensor
	eps   []epilogue
	layer Layer // stepPlain

	dense *Dense

	conv     *Conv2D
	cols, my *tensor.Tensor // conv im2col and matmul-output workspaces
	ch, cw   int            // conv input spatial dims (fixed per program)
	coh, cow int            // conv output spatial dims
	flatHdr  *tensor.Tensor // stepFlatten: [b, per] view, data rebound per run
}

// program is a network lowered for one (batch, per-example input shape)
// pair. It is owned by a Scratch, so one program serves one goroutine.
type program struct {
	batch   int
	inShape []int
	steps   []*bstep
}

// isElementwise maps an activation layer to its epilogue op.
func isElementwise(l Layer) (epKind, bool) {
	switch l.(type) {
	case *ReLU:
		return epReLU, true
	case *Tanh:
		return epTanh, true
	case *Sigmoid:
		return epSigmoid, true
	}
	return 0, false
}

// compileBatch lowers the network for a batch of b examples shaped in. It
// returns ok=false when any layer falls outside the compilable set — the
// caller then uses the uncompiled layer-by-layer path.
func (n *Network) compileBatch(b int, in []int) (*program, bool) {
	p := &program{batch: b, inShape: append([]int(nil), in...)}
	cur := p.inShape
	layers := n.layers
	for i := 0; i < len(layers); i++ {
		switch l := layers[i].(type) {
		case *Dropout:
			// Inverted dropout is the identity at inference time.
		case *Flatten:
			per := 1
			for _, d := range cur {
				per *= d
			}
			p.steps = append(p.steps, &bstep{kind: stepFlatten, flatHdr: tensor.New(b, per)})
			cur = []int{per}
		case *Dense:
			if len(cur) != 1 || cur[0] != l.In {
				return nil, false
			}
			st := &bstep{kind: stepDense, dense: l, dst: tensor.New(b, l.Out)}
			// Absorb the elementwise tail: batch norm over the dense output
			// and activations fuse into the step's epilogue; identity
			// dropout is skipped outright.
			for i+1 < len(layers) {
				if bn, ok := layers[i+1].(*BatchNorm1D); ok && bn.F == l.Out {
					st.eps = append(st.eps, epilogue{kind: epBatchNorm, bn: bn})
					i++
					continue
				}
				if k, ok := isElementwise(layers[i+1]); ok {
					st.eps = append(st.eps, epilogue{kind: k})
					i++
					continue
				}
				if _, ok := layers[i+1].(*Dropout); ok {
					i++
					continue
				}
				break
			}
			p.steps = append(p.steps, st)
			cur = []int{l.Out}
		case *Conv2D:
			if len(cur) != 3 || cur[0] != l.InC {
				return nil, false
			}
			info, err := l.Describe(cur)
			if err != nil {
				return nil, false
			}
			oh, ow := l.outHW(cur[1], cur[2])
			k := l.InC * l.KH * l.KW
			st := &bstep{
				kind: stepConv, conv: l,
				dst:  tensor.New(append([]int{b}, info.OutShape...)...),
				cols: tensor.New(k, oh*ow),
				my:   tensor.New(l.OutC, oh*ow),
				ch:   cur[1], cw: cur[2], coh: oh, cow: ow,
			}
			for i+1 < len(layers) {
				if k, ok := isElementwise(layers[i+1]); ok {
					st.eps = append(st.eps, epilogue{kind: k})
					i++
					continue
				}
				if _, ok := layers[i+1].(*Dropout); ok {
					i++
					continue
				}
				break
			}
			p.steps = append(p.steps, st)
			cur = info.OutShape
		default:
			if _, ok := l.(inferIntoWS); ok {
				// A workspace layer we don't know how to hoist buffers for.
				return nil, false
			}
			fast, ok := l.(inferInto)
			if !ok {
				return nil, false
			}
			info, err := l.Describe(cur)
			if err != nil {
				return nil, false
			}
			p.steps = append(p.steps, &bstep{
				kind: stepPlain, layer: fast.(Layer),
				dst: tensor.New(append([]int{b}, info.OutShape...)...),
			})
			cur = info.OutShape
		}
	}
	return p, true
}

// applyEpilogues runs a step's fused tail in place over out. Each op uses
// exactly the arithmetic of the layer it replaces: the batch-norm pass is
// BatchNorm1D.InferInto's column loop (inverse stddev recomputed from the
// live running statistics on every call), the activations are the
// elementwise formulas from their InferInto methods.
func applyEpilogues(out *tensor.Tensor, eps []epilogue, rows int) {
	for _, ep := range eps {
		switch ep.kind {
		case epReLU:
			// Mirror ReLU.InferInto's branch exactly: v > 0 keeps v, anything
			// else (including NaN) becomes 0 — `v <= 0` would let NaN through
			// and fork the fused path from the layer-by-layer one.
			for i, v := range out.Data {
				if v > 0 {
					out.Data[i] = v
				} else {
					out.Data[i] = 0
				}
			}
		case epTanh:
			for i, v := range out.Data {
				out.Data[i] = float32(math.Tanh(float64(v)))
			}
		case epSigmoid:
			for i, v := range out.Data {
				out.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
			}
		case epBatchNorm:
			bn := ep.bn
			f := bn.F
			for j := 0; j < f; j++ {
				inv := 1 / float32(math.Sqrt(float64(bn.RunVar.Data[j]+bn.Eps)))
				g, be, mu := bn.Gamma.Value.Data[j], bn.Beta.Value.Data[j], bn.RunMean.Data[j]
				for i := 0; i < rows; i++ {
					out.Data[i*f+j] = g*(out.Data[i*f+j]-mu)*inv + be
				}
			}
		}
	}
}

// run executes the compiled program. The returned tensor aliases program
// storage (or, after a trailing Flatten, the input's data) and is valid
// until the next run.
func (p *program) run(x *tensor.Tensor) *tensor.Tensor {
	for _, st := range p.steps {
		switch st.kind {
		case stepFlatten:
			st.flatHdr.Data = x.Data
			x = st.flatHdr
		case stepDense:
			d := st.dense
			tensor.MatMulInto(st.dst, x, d.W.Value)
			st.dst.AddRowVector(d.B.Value)
			applyEpilogues(st.dst, st.eps, p.batch)
			x = st.dst
		case stepConv:
			c := st.conv
			oh, ow := st.coh, st.cow
			ex := st.ch * st.cw * c.InC
			for n := 0; n < p.batch; n++ {
				c.im2colInto(st.cols, x.Data[n*ex:(n+1)*ex], st.ch, st.cw, oh, ow)
				tensor.MatMulInto(st.my, c.W.Value, st.cols)
				seg := st.dst.Data[n*c.OutC*oh*ow : (n+1)*c.OutC*oh*ow]
				copy(seg, st.my.Data)
				for oc := 0; oc < c.OutC; oc++ {
					bias := c.B.Value.Data[oc]
					row := seg[oc*oh*ow : (oc+1)*oh*ow]
					for i := range row {
						row[i] += bias
					}
				}
			}
			applyEpilogues(st.dst, st.eps, p.batch)
			x = st.dst
		case stepPlain:
			st.layer.(inferInto).InferInto(st.dst, x)
			x = st.dst
		}
	}
	return x
}
