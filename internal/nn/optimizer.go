package nn

import (
	"math"

	"tinymlops/internal/tensor"
)

// Optimizer updates network parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update to every parameter and leaves gradients
	// untouched (callers pair it with Network.ZeroGrad).
	Step(params []*Param)
}

// SGD is stochastic gradient descent with optional momentum and decoupled
// weight decay.
type SGD struct {
	LR          float32
	Momentum    float32
	WeightDecay float32

	velocity map[*Param]*tensor.Tensor
}

// NewSGD returns an SGD optimizer with the given learning rate.
func NewSGD(lr float32) *SGD { return &SGD{LR: lr} }

// WithMomentum sets the momentum coefficient and returns the optimizer.
func (s *SGD) WithMomentum(m float32) *SGD { s.Momentum = m; return s }

// WithWeightDecay sets decoupled L2 weight decay and returns the optimizer.
func (s *SGD) WithWeightDecay(wd float32) *SGD { s.WeightDecay = wd; return s }

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	if s.Momentum != 0 && s.velocity == nil {
		s.velocity = make(map[*Param]*tensor.Tensor)
	}
	for _, p := range params {
		if s.WeightDecay != 0 {
			p.Value.Scale(1 - s.LR*s.WeightDecay)
		}
		if s.Momentum == 0 {
			p.Value.Axpy(-s.LR, p.Grad)
			continue
		}
		v, ok := s.velocity[p]
		if !ok {
			v = tensor.New(p.Value.Shape()...)
			s.velocity[p] = v
		}
		for i := range v.Data {
			v.Data[i] = s.Momentum*v.Data[i] + p.Grad.Data[i]
			p.Value.Data[i] -= s.LR * v.Data[i]
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float32

	t int
	m map[*Param]*tensor.Tensor
	v map[*Param]*tensor.Tensor
}

// NewAdam returns an Adam optimizer with standard defaults
// (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float32) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param]*tensor.Tensor), v: make(map[*Param]*tensor.Tensor)}
}

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	a.t++
	bc1 := 1 - float32(math.Pow(float64(a.Beta1), float64(a.t)))
	bc2 := 1 - float32(math.Pow(float64(a.Beta2), float64(a.t)))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = tensor.New(p.Value.Shape()...)
			a.m[p] = m
		}
		v, ok := a.v[p]
		if !ok {
			v = tensor.New(p.Value.Shape()...)
			a.v[p] = v
		}
		for i := range p.Value.Data {
			g := p.Grad.Data[i]
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*g
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*g*g
			mh := m.Data[i] / bc1
			vh := v.Data[i] / bc2
			p.Value.Data[i] -= a.LR * mh / (float32(math.Sqrt(float64(vh))) + a.Eps)
		}
	}
}
