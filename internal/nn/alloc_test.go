package nn

import (
	"testing"

	"tinymlops/internal/tensor"
)

// TestForwardBatchZeroAlloc asserts the compiled float32 serving path is
// allocation-free in the steady state: after one warmup call (which
// compiles the program and sizes every buffer), repeated ForwardBatch
// calls must not allocate at all. EnterPool reproduces the serving
// context — inside a bounded worker the matmul kernels run serially, so
// the assertion is independent of the host's core count.
func TestForwardBatchZeroAlloc(t *testing.T) {
	rng := tensor.NewRNG(7)
	fixtures := []struct {
		name string
		net  *Network
		in   *tensor.Tensor
	}{
		{
			"dense-bn-act",
			NewNetwork([]int{64},
				NewDense(64, 128, rng), NewBatchNorm1D(128), NewReLU(),
				NewDense(128, 32, rng), NewTanh(), NewDense(32, 10, rng), NewSoftmax()),
			tensor.Randn(rng, 1, 16, 64),
		},
		{
			"conv-pool-dense",
			NewNetwork([]int{1, 12, 12},
				NewConv2D(1, 4, 3, 3, 1, 1, rng), NewReLU(), NewMaxPool2D(2, 2),
				NewFlatten(), NewDense(4*6*6, 10, rng)),
			tensor.Randn(rng, 1, 8, 1, 12, 12),
		},
	}
	exit := tensor.EnterPool()
	defer exit()
	for _, fx := range fixtures {
		scratch := NewScratch()
		fx.net.ForwardBatch(fx.in, scratch) // warmup: compile + size buffers
		allocs := testing.AllocsPerRun(100, func() {
			fx.net.ForwardBatch(fx.in, scratch)
		})
		if allocs != 0 {
			t.Errorf("%s: steady-state ForwardBatch allocates %.1f allocs/op, want 0", fx.name, allocs)
		}
	}
}
