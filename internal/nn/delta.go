package nn

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"

	"tinymlops/internal/tensor"
)

// deltaMagic identifies the weight-delta wire format: a per-tensor patch
// that upgrades one serialized network to another of identical topology.
// Same-topology OTA updates (a retrained base, a fine-tuned head) ship as
// deltas instead of full artifacts; the registry computes them, the rollout
// controller accounts their transfer cost, and the device applies them.
const deltaMagic = "TMLD1\n"

// Per-tensor delta encodings. Sparse stores (index, value) pairs for the
// changed elements; dense stores every element. The encoder picks whichever
// is smaller, so a head-only fine-tune ships a few hundred bytes while a
// full retrain degrades gracefully to dense (≈ the full tensor).
const (
	deltaDense  = 0
	deltaSparse = 1
)

// TopologySignature summarizes the network's architecture and all
// non-tensor layer configuration (shapes, strides, epsilons) without the
// weights. Two networks with equal signatures serialize to artifacts that
// differ only in tensor data, which is exactly the precondition for a
// weight delta to reproduce the target bit-exactly.
func (n *Network) TopologySignature() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "in%v", n.InputShape)
	for _, l := range n.layers {
		switch v := l.(type) {
		case *Dense:
			fmt.Fprintf(&b, "|dense(%d,%d)", v.In, v.Out)
		case *Conv2D:
			fmt.Fprintf(&b, "|conv2d(%d,%d,%d,%d,%d,%d)", v.InC, v.OutC, v.KH, v.KW, v.Stride, v.Pad)
		case *MaxPool2D:
			fmt.Fprintf(&b, "|maxpool2d(%d,%d)", v.K, v.Stride)
		case *BatchNorm1D:
			// Eps and Momentum are serialized config, so they are topology
			// for delta purposes: a delta cannot patch them.
			fmt.Fprintf(&b, "|batchnorm1d(%d,%x,%x)", v.F, math.Float32bits(v.Eps), math.Float32bits(v.Momentum))
		case *Dropout:
			fmt.Fprintf(&b, "|dropout(%x)", math.Float32bits(v.P))
		default:
			fmt.Fprintf(&b, "|%s", l.Kind())
		}
	}
	return b.String()
}

// stateTensors returns every tensor the binary model format serializes, in
// encode order: trainable parameters plus batch-norm running statistics.
func (n *Network) stateTensors() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range n.layers {
		switch v := l.(type) {
		case *Dense:
			out = append(out, v.W.Value, v.B.Value)
		case *Conv2D:
			out = append(out, v.W.Value, v.B.Value)
		case *BatchNorm1D:
			out = append(out, v.Gamma.Value, v.Beta.Value, v.RunMean, v.RunVar)
		}
	}
	return out
}

// EncodeDelta computes the weight delta that transforms oldNet's state into
// newNet's. The networks must have identical topology (TopologySignature).
// Changed elements store the new value's raw bits, so applying the delta to
// oldNet reproduces newNet bit-exactly — including NaN payloads.
func EncodeDelta(oldNet, newNet *Network) ([]byte, error) {
	sig := oldNet.TopologySignature()
	if got := newNet.TopologySignature(); got != sig {
		return nil, fmt.Errorf("nn: delta topology mismatch: %q vs %q", sig, got)
	}
	oldTs, newTs := oldNet.stateTensors(), newNet.stateTensors()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	w.WriteString(deltaMagic) //nolint:errcheck // bytes.Buffer writes cannot fail
	writeString(w, sig)
	writeU32(w, uint32(len(oldTs)))
	for ti := range oldTs {
		ov, nv := oldTs[ti].Data, newTs[ti].Data
		if len(ov) != len(nv) {
			return nil, fmt.Errorf("nn: delta tensor %d size %d vs %d", ti, len(ov), len(nv))
		}
		var changed []int
		for i := range ov {
			if math.Float32bits(ov[i]) != math.Float32bits(nv[i]) {
				changed = append(changed, i)
			}
		}
		writeU32(w, uint32(len(ov)))
		// Sparse costs 8 bytes per change, dense 4 per element.
		if len(changed)*8 < len(ov)*4 {
			w.WriteByte(deltaSparse) //nolint:errcheck
			writeU32(w, uint32(len(changed)))
			for _, i := range changed {
				writeU32(w, uint32(i))
				writeF32(w, nv[i])
			}
		} else {
			w.WriteByte(deltaDense) //nolint:errcheck
			for _, v := range nv {
				writeF32(w, v)
			}
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ApplyDelta returns a new network equal to oldNet with the delta applied.
// It fails if the delta was encoded against a different topology, so a
// device cannot corrupt its model with a patch meant for another variant.
// The input network is not modified.
func ApplyDelta(oldNet *Network, delta []byte) (*Network, error) {
	r := bufio.NewReader(bytes.NewReader(delta))
	got := make([]byte, len(deltaMagic))
	if _, err := io.ReadFull(r, got); err != nil {
		return nil, fmt.Errorf("nn: delta header: %w", err)
	}
	if string(got) != deltaMagic {
		return nil, fmt.Errorf("nn: not a TMLD1 delta stream")
	}
	sig, err := readDeltaString(r)
	if err != nil {
		return nil, err
	}
	if want := oldNet.TopologySignature(); sig != want {
		return nil, fmt.Errorf("nn: delta targets topology %q, model is %q", sig, want)
	}
	count, err := readU32(r)
	if err != nil {
		return nil, err
	}
	out := oldNet.Clone()
	ts := out.stateTensors()
	if int(count) != len(ts) {
		return nil, fmt.Errorf("nn: delta has %d tensors, model has %d", count, len(ts))
	}
	for ti := range ts {
		data := ts[ti].Data
		total, err := readU32(r)
		if err != nil {
			return nil, err
		}
		if int(total) != len(data) {
			return nil, fmt.Errorf("nn: delta tensor %d size %d, model has %d", ti, total, len(data))
		}
		mode, err := r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("nn: delta tensor %d mode: %w", ti, err)
		}
		switch mode {
		case deltaDense:
			for i := range data {
				v, err := readF32(r)
				if err != nil {
					return nil, err
				}
				data[i] = v
			}
		case deltaSparse:
			nc, err := readU32(r)
			if err != nil {
				return nil, err
			}
			if int(nc) > len(data) {
				return nil, fmt.Errorf("nn: delta tensor %d claims %d changes of %d elements", ti, nc, len(data))
			}
			for c := uint32(0); c < nc; c++ {
				idx, err := readU32(r)
				if err != nil {
					return nil, err
				}
				if int(idx) >= len(data) {
					return nil, fmt.Errorf("nn: delta tensor %d index %d out of range", ti, idx)
				}
				v, err := readF32(r)
				if err != nil {
					return nil, err
				}
				data[idx] = v
			}
		default:
			return nil, fmt.Errorf("nn: delta tensor %d unknown mode %d", ti, mode)
		}
	}
	return out, nil
}

// DeltaCost is the modeled transfer and flash footprint of shipping a
// delta at a given weight precision, mirroring how Metrics.SizeBytes
// models the packed size of a float32-stored artifact.
type DeltaCost struct {
	// ShipBytes go over the radio: packed changed weights plus 4-byte
	// indices for sparse tensors, packed full tensors for dense ones.
	ShipBytes int
	// FlashBytes are rewritten on device: only the changed weights (sparse)
	// or the whole tensor (dense), at packed precision.
	FlashBytes int
	// ChangedParams / TotalParams summarize sparsity for reporting.
	ChangedParams int
	TotalParams   int
}

// CostOfDelta parses an encoded delta and returns its modeled cost at the
// given weight bit width (≤ 0 means 32). The cost model matches SizeBytes
// semantics: weights ship and flash at packed precision even though the
// registry stores float32 artifacts for exactness.
func CostOfDelta(delta []byte, bits int) (DeltaCost, error) {
	if bits <= 0 {
		bits = 32
	}
	r := bufio.NewReader(bytes.NewReader(delta))
	got := make([]byte, len(deltaMagic))
	if _, err := io.ReadFull(r, got); err != nil {
		return DeltaCost{}, fmt.Errorf("nn: delta header: %w", err)
	}
	if string(got) != deltaMagic {
		return DeltaCost{}, fmt.Errorf("nn: not a TMLD1 delta stream")
	}
	if _, err := readDeltaString(r); err != nil {
		return DeltaCost{}, err
	}
	count, err := readU32(r)
	if err != nil {
		return DeltaCost{}, err
	}
	packed := func(n int) int { return (n*bits + 7) / 8 }
	// A small fixed allowance for the header and per-tensor metadata.
	cost := DeltaCost{ShipBytes: 64}
	for ti := uint32(0); ti < count; ti++ {
		total, err := readU32(r)
		if err != nil {
			return DeltaCost{}, err
		}
		cost.TotalParams += int(total)
		mode, err := r.ReadByte()
		if err != nil {
			return DeltaCost{}, fmt.Errorf("nn: delta tensor %d mode: %w", ti, err)
		}
		switch mode {
		case deltaDense:
			if _, err := io.CopyN(io.Discard, r, int64(total)*4); err != nil {
				return DeltaCost{}, fmt.Errorf("nn: delta tensor %d: %w", ti, err)
			}
			cost.ChangedParams += int(total)
			cost.ShipBytes += packed(int(total))
			cost.FlashBytes += packed(int(total))
		case deltaSparse:
			nc, err := readU32(r)
			if err != nil {
				return DeltaCost{}, err
			}
			if _, err := io.CopyN(io.Discard, r, int64(nc)*8); err != nil {
				return DeltaCost{}, fmt.Errorf("nn: delta tensor %d: %w", ti, err)
			}
			cost.ChangedParams += int(nc)
			cost.ShipBytes += 4*int(nc) + packed(int(nc))
			cost.FlashBytes += packed(int(nc))
		default:
			return DeltaCost{}, fmt.Errorf("nn: delta tensor %d unknown mode %d", ti, mode)
		}
	}
	return cost, nil
}

// readDeltaString reads a length-prefixed string without the 1 KiB bound of
// readString: topology signatures of deep networks can exceed it.
func readDeltaString(r *bufio.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("nn: implausible delta signature length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", fmt.Errorf("nn: read delta signature: %w", err)
	}
	return string(b), nil
}
