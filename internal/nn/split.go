package nn

import (
	"fmt"

	"tinymlops/internal/tensor"
)

// checkCut validates a layer cut point for partitioned execution.
func (n *Network) checkCut(cut int) error {
	if cut < 0 || cut > len(n.layers) {
		return fmt.Errorf("nn: cut %d out of range [0,%d]", cut, len(n.layers))
	}
	return nil
}

// Subnet returns a view over layers [lo,hi) of the network: the returned
// Network shares the receiver's layer objects (weights included — no copy),
// with its InputShape set to the per-example shape entering layer lo. It is
// the execution form of a partitioned model: Subnet(0, cut) is the device
// prefix and Subnet(cut, len) is the cloud suffix, and because the layers
// are shared, running both in sequence performs exactly the floating-point
// operations Forward would. The view must not outlive mutations of the
// parent's layer list.
func (n *Network) Subnet(lo, hi int) (*Network, error) {
	if lo < 0 || hi > len(n.layers) || lo > hi {
		return nil, fmt.Errorf("nn: subnet [%d,%d) out of range [0,%d]", lo, hi, len(n.layers))
	}
	in := append([]int(nil), n.InputShape...)
	if lo > 0 {
		cs, err := n.Summary()
		if err != nil {
			return nil, err
		}
		in = append([]int(nil), cs[lo-1].Info.OutShape...)
	}
	return &Network{InputShape: in, layers: n.layers[lo:hi]}, nil
}

// ForwardPrefix runs layers [0,cut) on x in inference mode and returns the
// boundary activation — the tensor an edge–cloud split ships over the
// network. cut = 0 returns x unchanged; cut = len(layers) computes the full
// forward pass. The result is bit-identical to stopping Forward(x, false)
// after cut layers, so ForwardSuffix(ForwardPrefix(x, c), c) reproduces the
// monolithic output exactly for any c.
func (n *Network) ForwardPrefix(x *tensor.Tensor, cut int) (*tensor.Tensor, error) {
	if err := n.checkCut(cut); err != nil {
		return nil, err
	}
	for _, l := range n.layers[:cut] {
		x = l.Forward(x, false)
	}
	return x, nil
}

// ForwardSuffix runs layers [cut,len) on a boundary activation in
// inference mode — the cloud half of a partitioned forward pass. cut = 0
// runs the whole network (the activation is the raw input); cut =
// len(layers) returns x unchanged (the device already finished).
func (n *Network) ForwardSuffix(x *tensor.Tensor, cut int) (*tensor.Tensor, error) {
	if err := n.checkCut(cut); err != nil {
		return nil, err
	}
	for _, l := range n.layers[cut:] {
		x = l.Forward(x, false)
	}
	return x, nil
}

// PrefixShape returns the per-example shape of the activation crossing a
// cut: the network input shape at cut 0, otherwise layer cut-1's output
// shape. It is what a cloud suffix endpoint validates incoming activations
// against.
func (n *Network) PrefixShape(cut int) ([]int, error) {
	if err := n.checkCut(cut); err != nil {
		return nil, err
	}
	if cut == 0 {
		return append([]int(nil), n.InputShape...), nil
	}
	cs, err := n.Summary()
	if err != nil {
		return nil, err
	}
	return append([]int(nil), cs[cut-1].Info.OutShape...), nil
}
