package nn

import (
	"tinymlops/internal/tensor"
)

// inferInto is the optional fast path behind Network.ForwardBatch: write
// the inference-mode (train=false) output for x into dst without touching
// any layer state. dst has shape [batch, Describe(in).OutShape...] and may
// hold stale values from a previous call, so implementations must write
// every element. Because the contract forbids state writes, any number of
// goroutines may drive the fast path through one shared network.
type inferInto interface {
	InferInto(dst, x *tensor.Tensor)
}

// inferIntoWS is the workspace-backed variant of inferInto for layers
// whose kernel needs per-call scratch beyond the output buffer (conv's
// im2col unroll). ForwardBatch sizes ws with workspaceFloats and keeps it
// in the Scratch, so these layers are allocation-free in the steady state
// too.
type inferIntoWS interface {
	workspaceFloats(in []int) (int, error)
	inferIntoWS(dst, x *tensor.Tensor, ws []float32)
}

// Scratch holds the reusable per-layer activation buffers behind
// Network.ForwardBatch, plus the compiled batch program (see fuse.go) the
// fast path executes. One Scratch serves one goroutine and one network;
// buffers are grown on first use and reused while shapes repeat, so a
// steady-state inference loop allocates nothing at all.
type Scratch struct {
	bufs    []*tensor.Tensor
	prog    *program
	progNet *Network
}

// NewScratch returns an empty scratch space.
func NewScratch() *Scratch { return &Scratch{} }

// buffer returns the cached buffer for layer idx reshaped to shape,
// reallocating only when the element count changed.
func (s *Scratch) buffer(idx int, shape []int) *tensor.Tensor {
	for len(s.bufs) <= idx {
		s.bufs = append(s.bufs, nil)
	}
	n := 1
	for _, d := range shape {
		n *= d
	}
	if b := s.bufs[idx]; b != nil && b.Size() == n {
		if !shapeEqual(b.Shape(), shape) {
			b = tensor.FromSlice(b.Data, shape...)
			s.bufs[idx] = b
		}
		return b
	}
	b := tensor.New(shape...)
	s.bufs[idx] = b
	return b
}

// ForwardBatch runs inference on a batch of B examples ([B, example
// shape...]) through the network's batched fast path: layers implementing
// the InferInto contract write into reusable scratch buffers, everything
// else falls back to Forward(x, false). The output is bit-identical to
// Forward(x, false) — and therefore to B single-example Forward calls —
// because every fast path preserves its layer's exact floating-point
// accumulation order; only allocation and caching behavior differ.
//
// The returned tensor aliases scratch storage and is valid until the next
// call with the same Scratch; clone it to retain it. A nil scratch
// allocates fresh buffers. When every layer takes the fast path the pass
// performs no writes to the network, so concurrent goroutines may share
// one Network with per-goroutine Scratches — the property the fleet engine
// relies on to serve thousands of simulated devices from one model.
func (n *Network) ForwardBatch(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	if s == nil {
		s = NewScratch()
	}
	// Fast path: execute the compiled program for this (network, batch,
	// shape) triple, recompiling only when one of them changed. Fused
	// epilogues preserve each absorbed layer's exact arithmetic, so the
	// program's output is bit-identical to the layer-by-layer path below.
	if p := s.prog; p != nil && s.progNet == n && p.batch == x.Dim(0) &&
		shapeEqual(p.inShape, x.Shape()[1:]) {
		return p.run(x)
	}
	if p, ok := n.compileBatch(x.Dim(0), x.Shape()[1:]); ok {
		s.prog, s.progNet = p, n
		return p.run(x)
	}
	s.prog, s.progNet = nil, nil
	return n.forwardBatchSlow(x, s)
}

// forwardBatchSlow is the uncompiled layer-by-layer path, kept for layer
// kinds (or shape errors) the program compiler does not cover.
func (n *Network) forwardBatchSlow(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	b := x.Dim(0)
	perExample := x.Shape()[1:]
	for i, l := range n.layers {
		// Shape-only and identity layers need no buffer at all.
		if _, isFlatten := l.(*Flatten); isFlatten {
			x = x.Reshape(b, -1)
			perExample = x.Shape()[1:]
			continue
		}
		if _, isDropout := l.(*Dropout); isDropout {
			continue // inverted dropout is the identity at inference time
		}
		if fast, ok := l.(inferIntoWS); ok {
			if info, err := l.Describe(perExample); err == nil {
				if wsn, werr := fast.workspaceFloats(perExample); werr == nil {
					dst := s.buffer(i, append([]int{b}, info.OutShape...))
					// Workspace slots live past the layer-output slots.
					ws := s.buffer(len(n.layers)+i, []int{wsn})
					fast.inferIntoWS(dst, x, ws.Data)
					x = dst
					perExample = info.OutShape
					continue
				}
			}
		}
		if fast, ok := l.(inferInto); ok {
			if info, err := l.Describe(perExample); err == nil {
				dst := s.buffer(i, append([]int{b}, info.OutShape...))
				fast.InferInto(dst, x)
				x = dst
				perExample = info.OutShape
				continue
			}
		}
		x = l.Forward(x, false)
		perExample = x.Shape()[1:]
	}
	return x
}
