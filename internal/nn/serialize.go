package nn

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"tinymlops/internal/tensor"
)

// netMagic identifies the network serialization format. The format is
// stable little-endian binary: magic, input shape, layer count, then per
// layer the kind string, kind-specific config and parameter tensors. It is
// the artifact format the model registry stores and hashes.
const netMagic = "TMLN1\n"

// MarshalBinary serializes the network (architecture, weights and, for
// batch norm, running statistics).
func (n *Network) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := n.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Encode writes the network to w in the binary model format.
func (n *Network) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(netMagic); err != nil {
		return fmt.Errorf("nn: encode: %w", err)
	}
	writeU32(bw, uint32(len(n.InputShape)))
	for _, d := range n.InputShape {
		writeU32(bw, uint32(d))
	}
	writeU32(bw, uint32(len(n.layers)))
	for i, l := range n.layers {
		if err := encodeLayer(bw, l); err != nil {
			return fmt.Errorf("nn: encode layer %d (%s): %w", i, l.Kind(), err)
		}
	}
	return bw.Flush()
}

// UnmarshalNetwork parses a network serialized by MarshalBinary.
func UnmarshalNetwork(data []byte) (*Network, error) {
	return DecodeNetwork(bytes.NewReader(data))
}

// DecodeNetwork reads a network in the binary model format from r.
func DecodeNetwork(r io.Reader) (*Network, error) {
	br := bufio.NewReader(r)
	got := make([]byte, len(netMagic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("nn: decode header: %w", err)
	}
	if string(got) != netMagic {
		return nil, errors.New("nn: not a TMLN1 model stream")
	}
	rank, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if rank == 0 || rank > 8 {
		return nil, fmt.Errorf("nn: implausible input rank %d", rank)
	}
	inShape := make([]int, rank)
	for i := range inShape {
		d, err := readU32(br)
		if err != nil {
			return nil, err
		}
		inShape[i] = int(d)
	}
	count, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if count > 4096 {
		return nil, fmt.Errorf("nn: implausible layer count %d", count)
	}
	net := NewNetwork(inShape)
	for i := uint32(0); i < count; i++ {
		l, err := decodeLayer(br)
		if err != nil {
			return nil, fmt.Errorf("nn: decode layer %d: %w", i, err)
		}
		net.Add(l)
	}
	return net, nil
}

func encodeLayer(w *bufio.Writer, l Layer) error {
	writeString(w, l.Kind())
	switch v := l.(type) {
	case *Dense:
		writeU32(w, uint32(v.In))
		writeU32(w, uint32(v.Out))
		return writeTensors(w, v.W.Value, v.B.Value)
	case *Flatten, *ReLU, *Sigmoid, *Tanh, *Softmax:
		return nil
	case *Conv2D:
		for _, d := range []int{v.InC, v.OutC, v.KH, v.KW, v.Stride, v.Pad} {
			writeU32(w, uint32(d))
		}
		return writeTensors(w, v.W.Value, v.B.Value)
	case *MaxPool2D:
		writeU32(w, uint32(v.K))
		writeU32(w, uint32(v.Stride))
		return nil
	case *BatchNorm1D:
		writeU32(w, uint32(v.F))
		writeF32(w, v.Eps)
		writeF32(w, v.Momentum)
		return writeTensors(w, v.Gamma.Value, v.Beta.Value, v.RunMean, v.RunVar)
	case *Dropout:
		writeF32(w, v.P)
		return nil
	default:
		return fmt.Errorf("unknown layer type %T", l)
	}
}

func decodeLayer(r *bufio.Reader) (Layer, error) {
	kind, err := readString(r)
	if err != nil {
		return nil, err
	}
	switch kind {
	case "dense":
		in, err := readU32(r)
		if err != nil {
			return nil, err
		}
		out, err := readU32(r)
		if err != nil {
			return nil, err
		}
		d := &Dense{In: int(in), Out: int(out)}
		ts, err := readTensors(r, 2)
		if err != nil {
			return nil, err
		}
		d.W, d.B = newParam("weight", ts[0]), newParam("bias", ts[1])
		return d, nil
	case "flatten":
		return NewFlatten(), nil
	case "relu":
		return NewReLU(), nil
	case "sigmoid":
		return NewSigmoid(), nil
	case "tanh":
		return NewTanh(), nil
	case "softmax":
		return NewSoftmax(), nil
	case "conv2d":
		cfg := make([]int, 6)
		for i := range cfg {
			v, err := readU32(r)
			if err != nil {
				return nil, err
			}
			cfg[i] = int(v)
		}
		c := &Conv2D{InC: cfg[0], OutC: cfg[1], KH: cfg[2], KW: cfg[3], Stride: cfg[4], Pad: cfg[5]}
		ts, err := readTensors(r, 2)
		if err != nil {
			return nil, err
		}
		c.W, c.B = newParam("weight", ts[0]), newParam("bias", ts[1])
		return c, nil
	case "maxpool2d":
		k, err := readU32(r)
		if err != nil {
			return nil, err
		}
		s, err := readU32(r)
		if err != nil {
			return nil, err
		}
		return NewMaxPool2D(int(k), int(s)), nil
	case "batchnorm1d":
		f, err := readU32(r)
		if err != nil {
			return nil, err
		}
		eps, err := readF32(r)
		if err != nil {
			return nil, err
		}
		mom, err := readF32(r)
		if err != nil {
			return nil, err
		}
		ts, err := readTensors(r, 4)
		if err != nil {
			return nil, err
		}
		bn := &BatchNorm1D{F: int(f), Eps: eps, Momentum: mom}
		bn.Gamma, bn.Beta = newParam("gamma", ts[0]), newParam("beta", ts[1])
		bn.RunMean, bn.RunVar = ts[2], ts[3]
		return bn, nil
	case "dropout":
		p, err := readF32(r)
		if err != nil {
			return nil, err
		}
		// A deserialized dropout layer gets a fixed-seed RNG; inference is
		// unaffected (dropout is identity at inference) and callers that
		// resume training can replace it.
		return NewDropout(p, tensor.NewRNG(0)), nil
	default:
		return nil, fmt.Errorf("unknown layer kind %q", kind)
	}
}

func writeTensors(w *bufio.Writer, ts ...*tensor.Tensor) error {
	for _, t := range ts {
		if _, err := t.WriteTo(w); err != nil {
			return err
		}
	}
	return nil
}

func readTensors(r *bufio.Reader, n int) ([]*tensor.Tensor, error) {
	out := make([]*tensor.Tensor, n)
	for i := range out {
		var t tensor.Tensor
		if _, err := t.ReadFrom(r); err != nil {
			return nil, err
		}
		out[i] = &t
	}
	return out, nil
}

func writeU32(w *bufio.Writer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.Write(b[:]) //nolint:errcheck // bufio.Writer records the first error; Flush reports it.
}

func readU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, fmt.Errorf("nn: read u32: %w", err)
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func writeF32(w *bufio.Writer, v float32) { writeU32(w, math.Float32bits(v)) }

func readF32(r io.Reader) (float32, error) {
	v, err := readU32(r)
	return math.Float32frombits(v), err
}

func writeString(w *bufio.Writer, s string) {
	writeU32(w, uint32(len(s)))
	w.WriteString(s) //nolint:errcheck // see writeU32
}

func readString(r io.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > 1024 {
		return "", fmt.Errorf("nn: implausible string length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", fmt.Errorf("nn: read string: %w", err)
	}
	return string(b), nil
}
