package nn

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"tinymlops/internal/tensor"
)

// corpusDeltas returns a seed corpus of valid encoded deltas against the
// fuzz fixture network: a sparse head-only patch, a dense full retrain,
// an empty (no-op) delta, and one carrying NaN/-0 payloads.
func corpusDeltas(f *testing.F) [][]byte {
	f.Helper()
	old := deltaFixtureNet(1)

	sparse := old.Clone()
	head := sparse.Layers()[7].(*Dense)
	head.W.Value.Data[0] = 42
	head.B.Value.Data[1] = -0.5

	dense := old.Clone()
	rng := tensor.NewRNG(9)
	for _, p := range dense.Params() {
		for i := range p.Value.Data {
			p.Value.Data[i] += rng.NormFloat32()
		}
	}

	weird := old.Clone()
	bn := weird.Layers()[5].(*BatchNorm1D)
	bn.RunMean.Data[0] = float32(math.NaN())
	bn.RunVar.Data[1] = float32(math.Copysign(0, -1))

	var out [][]byte
	for _, target := range []*Network{sparse, dense, weird, old} {
		d, err := EncodeDelta(old, target)
		if err != nil {
			f.Fatal(err)
		}
		out = append(out, d)
	}
	return out
}

// FuzzApplyDelta feeds arbitrary byte streams to the delta decoder: it
// must reject malformed patches with an error — never panic, never
// corrupt the input network — and accepted patches must decode
// consistently (applying twice to clones gives identical bytes).
func FuzzApplyDelta(f *testing.F) {
	deltas := corpusDeltas(f)
	for _, d := range deltas {
		f.Add(d)
		// Seed classic decoder traps: truncations and header corruption.
		f.Add(d[:len(d)/2])
		f.Add(d[:6])
		mut := append([]byte(nil), d...)
		mut[len(mut)-1] ^= 0xFF
		f.Add(mut)
	}
	f.Add([]byte("TMLD1\n"))
	f.Add([]byte{})
	// A sparse tensor claiming an out-of-range index.
	bad := append([]byte(nil), deltas[0]...)
	if len(bad) > 40 {
		binary.LittleEndian.PutUint32(bad[len(bad)-8:], 1<<30)
		f.Add(bad)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		old := deltaFixtureNet(1)
		before, err := old.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		applied, aerr := ApplyDelta(old, data)

		// The input network must never be touched, accepted or not.
		after, err := old.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(before, after) {
			t.Fatal("ApplyDelta mutated its input network")
		}
		if aerr != nil {
			return // rejected: that is the correct handling of garbage
		}
		// Accepted: the patch must decode deterministically and preserve
		// the topology contract.
		if applied.TopologySignature() != old.TopologySignature() {
			t.Fatal("accepted delta changed the topology")
		}
		again, aerr2 := ApplyDelta(deltaFixtureNet(1), data)
		if aerr2 != nil {
			t.Fatalf("accepted delta rejected on second apply: %v", aerr2)
		}
		b1, err := applied.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		b2, err := again.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatal("accepted delta applied differently twice")
		}
		// And the cost parser must agree the stream is well-formed.
		if _, cerr := CostOfDelta(data, 8); cerr != nil {
			t.Fatalf("ApplyDelta accepted what CostOfDelta rejects: %v", cerr)
		}
	})
}

// FuzzDeltaRoundTrip derives a perturbed target network from the fuzz
// input and checks the codec's core contract: apply(encode(old, new),
// old) reproduces new bit-exactly, whatever the perturbation — including
// NaN payloads and signed zeros synthesized from raw bits.
func FuzzDeltaRoundTrip(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, uint8(1))
	f.Add([]byte{0xFF, 0xC0, 0, 0}, uint8(3)) // NaN bit pattern
	f.Add([]byte{}, uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, stride uint8) {
		old := deltaFixtureNet(2)
		target := old.Clone()
		// Scatter the fuzz bytes through the parameter tensors as raw
		// float bits: every IEEE bit pattern is a legal weight.
		ts := target.stateTensors()
		if len(raw) >= 4 {
			st := int(stride%16) + 1
			k := 0
			for ti := range ts {
				data := ts[ti].Data
				for i := 0; i < len(data) && k+4 <= len(raw); i += st {
					bits := binary.LittleEndian.Uint32(raw[k : k+4])
					data[i] = math.Float32frombits(bits)
					k += 4
					if k+4 > len(raw) {
						k = 0
						break
					}
				}
			}
		}
		delta, err := EncodeDelta(old, target)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		applied, err := ApplyDelta(old, delta)
		if err != nil {
			t.Fatalf("apply: %v", err)
		}
		want, err := target.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		got, err := applied.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatal("round trip not bit-exact")
		}
	})
}
