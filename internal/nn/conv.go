package nn

import (
	"fmt"
	"math"

	"tinymlops/internal/tensor"
)

// Conv2D is a 2D convolution over [batch, inC, h, w] inputs, implemented
// with im2col + matrix multiply so the heavy lifting reuses the parallel
// matmul kernel.
type Conv2D struct {
	InC, OutC   int
	KH, KW      int
	Stride, Pad int
	W, B        *Param // W is [OutC, InC*KH*KW]

	lastInput *tensor.Tensor
	lastCols  []*tensor.Tensor // per-example im2col buffers
}

// NewConv2D returns a convolution layer with He-initialized kernels.
func NewConv2D(inC, outC, kh, kw, stride, pad int, rng *tensor.RNG) *Conv2D {
	if stride < 1 {
		panic("nn: conv2d stride must be >= 1")
	}
	fanIn := inC * kh * kw
	std := float32(math.Sqrt(2.0 / float64(fanIn)))
	w := tensor.Randn(rng, std, outC, fanIn)
	b := tensor.New(outC)
	return &Conv2D{InC: inC, OutC: outC, KH: kh, KW: kw, Stride: stride, Pad: pad,
		W: newParam("weight", w), B: newParam("bias", b)}
}

// Kind implements Layer.
func (c *Conv2D) Kind() string { return "conv2d" }

func (c *Conv2D) outHW(h, w int) (int, int) {
	oh := (h+2*c.Pad-c.KH)/c.Stride + 1
	ow := (w+2*c.Pad-c.KW)/c.Stride + 1
	return oh, ow
}

// im2col unrolls one example [inC, h, w] into a [inC*KH*KW, oh*ow] matrix.
func (c *Conv2D) im2col(x []float32, h, w, oh, ow int) *tensor.Tensor {
	cols := tensor.New(c.InC*c.KH*c.KW, oh*ow)
	c.im2colInto(cols, x, h, w, oh, ow)
	return cols
}

// im2colInto unrolls into a caller-owned buffer so the batched inference
// path can reuse one buffer across every example of a batch.
func (c *Conv2D) im2colInto(cols *tensor.Tensor, x []float32, h, w, oh, ow int) {
	cols.Zero()
	idx := 0
	for ch := 0; ch < c.InC; ch++ {
		plane := x[ch*h*w : (ch+1)*h*w]
		for ki := 0; ki < c.KH; ki++ {
			for kj := 0; kj < c.KW; kj++ {
				row := cols.Data[idx*oh*ow : (idx+1)*oh*ow]
				idx++
				p := 0
				for oi := 0; oi < oh; oi++ {
					si := oi*c.Stride + ki - c.Pad
					for oj := 0; oj < ow; oj++ {
						sj := oj*c.Stride + kj - c.Pad
						if si >= 0 && si < h && sj >= 0 && sj < w {
							row[p] = plane[si*w+sj]
						}
						p++
					}
				}
			}
		}
	}
}

// col2im folds a [inC*KH*KW, oh*ow] gradient back into [inC, h, w],
// accumulating overlapping windows.
func (c *Conv2D) col2im(cols *tensor.Tensor, h, w, oh, ow int, dst []float32) {
	idx := 0
	for ch := 0; ch < c.InC; ch++ {
		plane := dst[ch*h*w : (ch+1)*h*w]
		for ki := 0; ki < c.KH; ki++ {
			for kj := 0; kj < c.KW; kj++ {
				row := cols.Data[idx*oh*ow : (idx+1)*oh*ow]
				idx++
				p := 0
				for oi := 0; oi < oh; oi++ {
					si := oi*c.Stride + ki - c.Pad
					for oj := 0; oj < ow; oj++ {
						sj := oj*c.Stride + kj - c.Pad
						if si >= 0 && si < h && sj >= 0 && sj < w {
							plane[si*w+sj] += row[p]
						}
						p++
					}
				}
			}
		}
	}
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: conv2d(%d→%d) got input shape %v", c.InC, c.OutC, x.Shape()))
	}
	b, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := c.outHW(h, w)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: conv2d output would be empty for input %v", x.Shape()))
	}
	c.lastInput = x
	c.lastCols = make([]*tensor.Tensor, b)
	out := tensor.New(b, c.OutC, oh, ow)
	ex := h * w * c.InC
	for n := 0; n < b; n++ {
		cols := c.im2col(x.Data[n*ex:(n+1)*ex], h, w, oh, ow)
		c.lastCols[n] = cols
		y := tensor.MatMul(c.W.Value, cols) // [OutC, oh*ow]
		dst := out.Data[n*c.OutC*oh*ow : (n+1)*c.OutC*oh*ow]
		copy(dst, y.Data)
		for oc := 0; oc < c.OutC; oc++ {
			bias := c.B.Value.Data[oc]
			seg := dst[oc*oh*ow : (oc+1)*oh*ow]
			for i := range seg {
				seg[i] += bias
			}
		}
	}
	return out
}

// workspaceFloats reports the im2col + matmul-output workspace size for a
// per-example input shape (part of the ForwardBatch workspace contract).
func (c *Conv2D) workspaceFloats(in []int) (int, error) {
	if len(in) != 3 || in[0] != c.InC {
		return 0, errShape("conv2d", []int{c.InC, -1, -1}, in)
	}
	oh, ow := c.outHW(in[1], in[2])
	if oh <= 0 || ow <= 0 {
		return 0, fmt.Errorf("nn: conv2d output empty for input %v", in)
	}
	return (c.InC*c.KH*c.KW + c.OutC) * oh * ow, nil
}

// inferIntoWS implements the ForwardBatch fast path: the same im2col +
// matmul pipeline as Forward, but with one caller-owned cols/output
// workspace (sized by workspaceFloats, Scratch-backed) reused across the
// whole batch instead of a per-example backward cache.
func (c *Conv2D) inferIntoWS(dst, x *tensor.Tensor, ws []float32) {
	if x.Rank() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: conv2d(%d→%d) got input shape %v", c.InC, c.OutC, x.Shape()))
	}
	b, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := c.outHW(h, w)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: conv2d output would be empty for input %v", x.Shape()))
	}
	ex := h * w * c.InC
	k := c.InC * c.KH * c.KW
	cols := tensor.FromSlice(ws[:k*oh*ow], k, oh*ow)
	y := tensor.FromSlice(ws[k*oh*ow:(k+c.OutC)*oh*ow], c.OutC, oh*ow)
	for n := 0; n < b; n++ {
		c.im2colInto(cols, x.Data[n*ex:(n+1)*ex], h, w, oh, ow)
		tensor.MatMulInto(y, c.W.Value, cols) // [OutC, oh*ow]
		seg := dst.Data[n*c.OutC*oh*ow : (n+1)*c.OutC*oh*ow]
		copy(seg, y.Data)
		for oc := 0; oc < c.OutC; oc++ {
			bias := c.B.Value.Data[oc]
			row := seg[oc*oh*ow : (oc+1)*oh*ow]
			for i := range row {
				row[i] += bias
			}
		}
	}
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	b := grad.Dim(0)
	oh, ow := grad.Dim(2), grad.Dim(3)
	h, w := c.lastInput.Dim(2), c.lastInput.Dim(3)
	dx := tensor.New(c.lastInput.Shape()...)
	ex := c.InC * h * w
	for n := 0; n < b; n++ {
		g := tensor.FromSlice(grad.Data[n*c.OutC*oh*ow:(n+1)*c.OutC*oh*ow], c.OutC, oh*ow)
		// dW += g · colsᵀ
		c.W.Grad.AddInPlace(tensor.MatMulT(g, c.lastCols[n]))
		// db += row sums of g
		for oc := 0; oc < c.OutC; oc++ {
			var s float32
			for _, v := range g.Data[oc*oh*ow : (oc+1)*oh*ow] {
				s += v
			}
			c.B.Grad.Data[oc] += s
		}
		// dcols = Wᵀ · g, then fold back.
		dcols := tensor.TMatMul(c.W.Value, g)
		c.col2im(dcols, h, w, oh, ow, dx.Data[n*ex:(n+1)*ex])
	}
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// Describe implements Layer.
func (c *Conv2D) Describe(in []int) (LayerInfo, error) {
	if len(in) != 3 || in[0] != c.InC {
		return LayerInfo{}, errShape("conv2d", []int{c.InC, -1, -1}, in)
	}
	oh, ow := c.outHW(in[1], in[2])
	if oh <= 0 || ow <= 0 {
		return LayerInfo{}, fmt.Errorf("nn: conv2d output empty for input %v", in)
	}
	outN := int64(c.OutC) * int64(oh) * int64(ow)
	return LayerInfo{
		OutShape:         []int{c.OutC, oh, ow},
		MACs:             outN * int64(c.InC*c.KH*c.KW),
		ParamCount:       int64(c.OutC)*int64(c.InC*c.KH*c.KW) + int64(c.OutC),
		ActivationFloats: outN,
	}, nil
}

// MaxPool2D is a max pooling layer over [batch, c, h, w] inputs.
type MaxPool2D struct {
	K, Stride int

	lastShape  []int
	lastArgmax []int // flat index into input for each output element
}

// NewMaxPool2D returns a pooling layer with window k and the given stride.
func NewMaxPool2D(k, stride int) *MaxPool2D {
	if k < 1 || stride < 1 {
		panic("nn: maxpool2d window and stride must be >= 1")
	}
	return &MaxPool2D{K: k, Stride: stride}
}

// Kind implements Layer.
func (p *MaxPool2D) Kind() string { return "maxpool2d" }

func (p *MaxPool2D) outHW(h, w int) (int, int) {
	return (h-p.K)/p.Stride + 1, (w-p.K)/p.Stride + 1
}

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: maxpool2d got input shape %v", x.Shape()))
	}
	b, ch, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := p.outHW(h, w)
	p.lastShape = append([]int(nil), x.Shape()...)
	out := tensor.New(b, ch, oh, ow)
	p.lastArgmax = make([]int, out.Size())
	oi := 0
	for n := 0; n < b; n++ {
		for c := 0; c < ch; c++ {
			plane := (n*ch + c) * h * w
			for i := 0; i < oh; i++ {
				for j := 0; j < ow; j++ {
					best := float32(math.Inf(-1))
					bestIdx := -1
					for ki := 0; ki < p.K; ki++ {
						for kj := 0; kj < p.K; kj++ {
							si, sj := i*p.Stride+ki, j*p.Stride+kj
							idx := plane + si*w + sj
							if v := x.Data[idx]; v > best {
								best, bestIdx = v, idx
							}
						}
					}
					out.Data[oi] = best
					p.lastArgmax[oi] = bestIdx
					oi++
				}
			}
		}
	}
	return out
}

// InferInto implements the ForwardBatch fast path: pooling without the
// argmax cache Backward needs.
func (p *MaxPool2D) InferInto(dst, x *tensor.Tensor) {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: maxpool2d got input shape %v", x.Shape()))
	}
	b, ch, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := p.outHW(h, w)
	oi := 0
	for n := 0; n < b; n++ {
		for c := 0; c < ch; c++ {
			plane := (n*ch + c) * h * w
			for i := 0; i < oh; i++ {
				for j := 0; j < ow; j++ {
					best := float32(math.Inf(-1))
					for ki := 0; ki < p.K; ki++ {
						for kj := 0; kj < p.K; kj++ {
							si, sj := i*p.Stride+ki, j*p.Stride+kj
							if v := x.Data[plane+si*w+sj]; v > best {
								best = v
							}
						}
					}
					dst.Data[oi] = best
					oi++
				}
			}
		}
	}
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(p.lastShape...)
	for oi, src := range p.lastArgmax {
		dx.Data[src] += grad.Data[oi]
	}
	return dx
}

// Params implements Layer.
func (p *MaxPool2D) Params() []*Param { return nil }

// Describe implements Layer.
func (p *MaxPool2D) Describe(in []int) (LayerInfo, error) {
	if len(in) != 3 {
		return LayerInfo{}, errShape("maxpool2d", []int{-1, -1, -1}, in)
	}
	oh, ow := p.outHW(in[1], in[2])
	if oh <= 0 || ow <= 0 {
		return LayerInfo{}, fmt.Errorf("nn: maxpool2d output empty for input %v", in)
	}
	outN := int64(in[0]) * int64(oh) * int64(ow)
	return LayerInfo{OutShape: []int{in[0], oh, ow}, ActivationFloats: outN}, nil
}
