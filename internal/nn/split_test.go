package nn

import (
	"bytes"
	"math"
	"testing"

	"tinymlops/internal/tensor"
)

// splitNets returns the network zoo the partitioned-execution contract is
// verified against, with a matching input batch for each.
func splitNets(t *testing.T) []struct {
	name string
	net  *Network
	x    *tensor.Tensor
} {
	t.Helper()
	rng := tensor.NewRNG(7)
	mlp := NewNetwork([]int{6},
		NewDense(6, 16, rng), NewReLU(),
		NewDense(16, 16, rng), NewTanh(),
		NewDense(16, 4, rng), NewSoftmax())
	bn := NewNetwork([]int{8},
		NewDense(8, 12, rng), NewBatchNorm1D(12), NewSigmoid(),
		NewDropout(0.5, rng),
		NewDense(12, 3, rng))
	conv := NewNetwork([]int{1, 8, 8},
		NewConv2D(1, 4, 3, 3, 1, 1, rng), NewReLU(),
		NewMaxPool2D(2, 2), NewFlatten(),
		NewDense(4*4*4, 5, rng))
	mk := func(shape ...int) *tensor.Tensor {
		x := tensor.New(shape...)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat32()
		}
		return x
	}
	// Run a training forward through the batch-norm net so its running
	// statistics are non-trivial before inference-mode comparison.
	bn.Forward(mk(4, 8), true)
	return []struct {
		name string
		net  *Network
		x    *tensor.Tensor
	}{
		{"mlp", mlp, mk(3, 6)},
		{"batchnorm", bn, mk(3, 8)},
		{"conv", conv, mk(2, 1, 8, 8)},
	}
}

func bitsEqual(a, b *tensor.Tensor) bool {
	if len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		if math.Float32bits(a.Data[i]) != math.Float32bits(b.Data[i]) {
			return false
		}
	}
	return true
}

// TestSplitBitExactAtEveryCut is the partitioned-execution contract:
// prefix + suffix, with the boundary activation round-tripped through the
// tensor codec (the serialized handoff an edge–cloud split performs), is
// bit-identical to the monolithic forward pass at every possible cut.
func TestSplitBitExactAtEveryCut(t *testing.T) {
	for _, c := range splitNets(t) {
		want := c.net.Forward(c.x, false)
		n := len(c.net.Layers())
		for cut := 0; cut <= n; cut++ {
			act, err := c.net.ForwardPrefix(c.x, cut)
			if err != nil {
				t.Fatalf("%s cut %d: prefix: %v", c.name, cut, err)
			}
			// Serialize the boundary activation exactly as the offload
			// plane ships it.
			var buf bytes.Buffer
			if _, err := act.WriteTo(&buf); err != nil {
				t.Fatalf("%s cut %d: encode: %v", c.name, cut, err)
			}
			var wire tensor.Tensor
			if _, err := wire.ReadFrom(&buf); err != nil {
				t.Fatalf("%s cut %d: decode: %v", c.name, cut, err)
			}
			got, err := c.net.ForwardSuffix(&wire, cut)
			if err != nil {
				t.Fatalf("%s cut %d: suffix: %v", c.name, cut, err)
			}
			if !bitsEqual(got, want) {
				t.Fatalf("%s cut %d: split output differs from monolithic Forward", c.name, cut)
			}
		}
	}
}

// TestSubnetForwardBatchMatchesSuffix pins the cloud serving path: the
// suffix subnet's batched fast path must be bit-identical to the plain
// suffix — and therefore to the monolithic forward.
func TestSubnetForwardBatchMatchesSuffix(t *testing.T) {
	for _, c := range splitNets(t) {
		want := c.net.Forward(c.x, false)
		n := len(c.net.Layers())
		for cut := 0; cut < n; cut++ {
			act, err := c.net.ForwardPrefix(c.x, cut)
			if err != nil {
				t.Fatal(err)
			}
			suffix, err := c.net.Subnet(cut, n)
			if err != nil {
				t.Fatalf("%s cut %d: subnet: %v", c.name, cut, err)
			}
			got := suffix.ForwardBatch(act, NewScratch())
			if !bitsEqual(got, want) {
				t.Fatalf("%s cut %d: suffix ForwardBatch differs from monolithic Forward", c.name, cut)
			}
		}
	}
}

// TestSubnetSharesWeights verifies that a subnet is a view, not a copy: a
// weight edit through the parent is visible to the suffix.
func TestSubnetSharesWeights(t *testing.T) {
	rng := tensor.NewRNG(3)
	net := NewNetwork([]int{4}, NewDense(4, 4, rng), NewReLU(), NewDense(4, 2, rng))
	suffix, err := net.Subnet(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.FromSlice([]float32{1, 0, -1, 2}, 1, 4)
	act, err := net.ForwardPrefix(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	before := suffix.Forward(act, false).Data[0]
	net.Layers()[2].(*Dense).W.Value.Data[0] += 1
	after := suffix.Forward(act, false).Data[0]
	if before == after {
		t.Fatal("subnet did not observe the parent's weight mutation")
	}
}

func TestSplitValidation(t *testing.T) {
	rng := tensor.NewRNG(5)
	net := NewNetwork([]int{4}, NewDense(4, 2, rng))
	x := tensor.New(1, 4)
	if _, err := net.ForwardPrefix(x, -1); err == nil {
		t.Fatal("accepted negative cut")
	}
	if _, err := net.ForwardSuffix(x, 2); err == nil {
		t.Fatal("accepted cut past the last layer")
	}
	if _, err := net.Subnet(1, 0); err == nil {
		t.Fatal("accepted inverted subnet range")
	}
	if _, err := net.PrefixShape(5); err == nil {
		t.Fatal("accepted out-of-range prefix shape")
	}
	shape, err := net.PrefixShape(0)
	if err != nil || len(shape) != 1 || shape[0] != 4 {
		t.Fatalf("PrefixShape(0) = %v, %v", shape, err)
	}
	shape, err = net.PrefixShape(1)
	if err != nil || len(shape) != 1 || shape[0] != 2 {
		t.Fatalf("PrefixShape(1) = %v, %v", shape, err)
	}
}
