package nn

import (
	"fmt"
	"math"

	"tinymlops/internal/tensor"
)

// Dense is a fully connected layer computing y = xW + b with
// W ∈ [in, out] and b ∈ [out].
type Dense struct {
	In, Out int
	W, B    *Param

	lastInput *tensor.Tensor
}

// NewDense returns a dense layer with He-initialized weights drawn from rng.
func NewDense(in, out int, rng *tensor.RNG) *Dense {
	std := float32(math.Sqrt(2.0 / float64(in)))
	w := tensor.Randn(rng, std, in, out)
	b := tensor.New(out)
	return &Dense{In: in, Out: out, W: newParam("weight", w), B: newParam("bias", b)}
}

// Kind implements Layer.
func (d *Dense) Kind() string { return "dense" }

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	d.lastInput = x
	y := tensor.New(x.Dim(0), d.Out)
	d.InferInto(y, x)
	return y
}

// InferInto implements the ForwardBatch fast path: dst = xW + b with no
// allocation and no backward cache.
func (d *Dense) InferInto(dst, x *tensor.Tensor) {
	if x.Rank() != 2 || x.Dim(1) != d.In {
		panic(fmt.Sprintf("nn: dense(%d→%d) got input shape %v", d.In, d.Out, x.Shape()))
	}
	tensor.MatMulInto(dst, x, d.W.Value)
	dst.AddRowVector(d.B.Value)
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	// dW += xᵀ·grad ; db += column sums ; dx = grad·Wᵀ.
	d.W.Grad.AddInPlace(tensor.TMatMul(d.lastInput, grad))
	d.B.Grad.AddInPlace(grad.SumRows())
	return tensor.MatMulT(grad, d.W.Value)
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// Describe implements Layer.
func (d *Dense) Describe(in []int) (LayerInfo, error) {
	if len(in) != 1 || in[0] != d.In {
		return LayerInfo{}, errShape("dense", []int{d.In}, in)
	}
	return LayerInfo{
		OutShape:         []int{d.Out},
		MACs:             int64(d.In) * int64(d.Out),
		ParamCount:       int64(d.In)*int64(d.Out) + int64(d.Out),
		ActivationFloats: int64(d.Out),
	}, nil
}

// Flatten reshapes [batch, d1, d2, ...] input to [batch, d1*d2*...].
type Flatten struct {
	lastShape []int
}

// NewFlatten returns a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Kind implements Layer.
func (f *Flatten) Kind() string { return "flatten" }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.lastShape = append([]int(nil), x.Shape()...)
	return x.Reshape(x.Dim(0), -1)
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(f.lastShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// Describe implements Layer.
func (f *Flatten) Describe(in []int) (LayerInfo, error) {
	n := shapeProduct(in)
	return LayerInfo{OutShape: []int{int(n)}, ActivationFloats: n}, nil
}
