package nn

import (
	"math"

	"tinymlops/internal/tensor"
)

// ReLU is the rectified linear activation max(0, x).
type ReLU struct {
	lastInput *tensor.Tensor
}

// NewReLU returns a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Kind implements Layer.
func (r *ReLU) Kind() string { return "relu" }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	r.lastInput = x
	out := tensor.New(x.Shape()...)
	r.InferInto(out, x)
	return out
}

// InferInto implements the ForwardBatch fast path.
func (r *ReLU) InferInto(dst, x *tensor.Tensor) {
	for i, v := range x.Data {
		if v > 0 {
			dst.Data[i] = v
		} else {
			dst.Data[i] = 0
		}
	}
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(grad.Shape()...)
	for i, v := range r.lastInput.Data {
		if v > 0 {
			out.Data[i] = grad.Data[i]
		}
	}
	return out
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Describe implements Layer.
func (r *ReLU) Describe(in []int) (LayerInfo, error) {
	return LayerInfo{OutShape: append([]int(nil), in...), ActivationFloats: shapeProduct(in)}, nil
}

// Sigmoid is the logistic activation 1/(1+e^-x).
type Sigmoid struct {
	lastOutput *tensor.Tensor
}

// NewSigmoid returns a Sigmoid layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Kind implements Layer.
func (s *Sigmoid) Kind() string { return "sigmoid" }

// Forward implements Layer.
func (s *Sigmoid) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.New(x.Shape()...)
	s.InferInto(out, x)
	s.lastOutput = out
	return out
}

// InferInto implements the ForwardBatch fast path.
func (s *Sigmoid) InferInto(dst, x *tensor.Tensor) {
	for i, v := range x.Data {
		dst.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
}

// Backward implements Layer.
func (s *Sigmoid) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(grad.Shape()...)
	for i, y := range s.lastOutput.Data {
		out.Data[i] = grad.Data[i] * y * (1 - y)
	}
	return out
}

// Params implements Layer.
func (s *Sigmoid) Params() []*Param { return nil }

// Describe implements Layer.
func (s *Sigmoid) Describe(in []int) (LayerInfo, error) {
	n := shapeProduct(in)
	return LayerInfo{OutShape: append([]int(nil), in...), MACs: 4 * n, ActivationFloats: n}, nil
}

// Tanh is the hyperbolic tangent activation.
type Tanh struct {
	lastOutput *tensor.Tensor
}

// NewTanh returns a Tanh layer.
func NewTanh() *Tanh { return &Tanh{} }

// Kind implements Layer.
func (t *Tanh) Kind() string { return "tanh" }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.New(x.Shape()...)
	t.InferInto(out, x)
	t.lastOutput = out
	return out
}

// InferInto implements the ForwardBatch fast path.
func (t *Tanh) InferInto(dst, x *tensor.Tensor) {
	for i, v := range x.Data {
		dst.Data[i] = float32(math.Tanh(float64(v)))
	}
}

// Backward implements Layer.
func (t *Tanh) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(grad.Shape()...)
	for i, y := range t.lastOutput.Data {
		out.Data[i] = grad.Data[i] * (1 - y*y)
	}
	return out
}

// Params implements Layer.
func (t *Tanh) Params() []*Param { return nil }

// Describe implements Layer.
func (t *Tanh) Describe(in []int) (LayerInfo, error) {
	n := shapeProduct(in)
	return LayerInfo{OutShape: append([]int(nil), in...), MACs: 4 * n, ActivationFloats: n}, nil
}

// Softmax converts logits to probabilities row-wise. In classification
// networks prefer ending with raw logits and using SoftmaxCrossEntropy,
// which fuses this layer with the loss for numerical stability; an explicit
// Softmax layer is still useful for inference-only pipelines and for the
// prediction-poisoning defenses that perturb probability vectors.
type Softmax struct {
	lastOutput *tensor.Tensor
}

// NewSoftmax returns a Softmax layer.
func NewSoftmax() *Softmax { return &Softmax{} }

// Kind implements Layer.
func (s *Softmax) Kind() string { return "softmax" }

// Forward implements Layer.
func (s *Softmax) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := SoftmaxRows(x)
	s.lastOutput = out
	return out
}

// InferInto implements the ForwardBatch fast path.
func (s *Softmax) InferInto(dst, x *tensor.Tensor) {
	softmaxRowsInto(dst, x)
}

// Backward implements Layer.
func (s *Softmax) Backward(grad *tensor.Tensor) *tensor.Tensor {
	// dx_i = y_i * (g_i - sum_j g_j y_j), row-wise.
	rows, cols := grad.Dim(0), grad.Dim(1)
	out := tensor.New(rows, cols)
	for i := 0; i < rows; i++ {
		g := grad.Data[i*cols : (i+1)*cols]
		y := s.lastOutput.Data[i*cols : (i+1)*cols]
		var dot float32
		for j := range g {
			dot += g[j] * y[j]
		}
		o := out.Data[i*cols : (i+1)*cols]
		for j := range g {
			o[j] = y[j] * (g[j] - dot)
		}
	}
	return out
}

// Params implements Layer.
func (s *Softmax) Params() []*Param { return nil }

// Describe implements Layer.
func (s *Softmax) Describe(in []int) (LayerInfo, error) {
	n := shapeProduct(in)
	return LayerInfo{OutShape: append([]int(nil), in...), MACs: 3 * n, ActivationFloats: n}, nil
}

// SoftmaxRows returns row-wise softmax of a 2D tensor using the max-shift
// trick for numerical stability.
func SoftmaxRows(x *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(x.Dim(0), x.Dim(1))
	softmaxRowsInto(out, x)
	return out
}

// softmaxRowsInto writes row-wise softmax of x into out without allocating.
func softmaxRowsInto(out, x *tensor.Tensor) {
	rows, cols := x.Dim(0), x.Dim(1)
	for i := 0; i < rows; i++ {
		row := x.Data[i*cols : (i+1)*cols]
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		var sum float64
		o := out.Data[i*cols : (i+1)*cols]
		for j, v := range row {
			e := math.Exp(float64(v - m))
			o[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range o {
			o[j] *= inv
		}
	}
}
