package nn

import (
	"fmt"

	"tinymlops/internal/tensor"
)

// TrainConfig controls the mini-batch training loop.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	Optimizer Optimizer
	// RNG shuffles examples between epochs. Required.
	RNG *tensor.RNG
	// ExtraGrad, if non-nil, is invoked after the loss gradient has been
	// backpropagated and may add additional parameter gradients — the hook
	// watermark embedding and FedProx's proximal term use.
	ExtraGrad func(net *Network)
	// OnEpoch, if non-nil, receives (epoch, meanLoss) after each epoch.
	OnEpoch func(epoch int, loss float32)
}

// Train runs mini-batch classification training of net on (x, labels) with
// softmax cross-entropy. x is [n, features...] and labels has length n. It
// returns the mean loss of the final epoch.
func Train(net *Network, x *tensor.Tensor, labels []int, cfg TrainConfig) (float32, error) {
	n := x.Dim(0)
	if len(labels) != n {
		return 0, fmt.Errorf("nn: Train got %d labels for %d examples", len(labels), n)
	}
	if cfg.RNG == nil {
		return 0, fmt.Errorf("nn: TrainConfig.RNG is required")
	}
	if cfg.Optimizer == nil {
		return 0, fmt.Errorf("nn: TrainConfig.Optimizer is required")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	var lastLoss float32
	exampleSize := x.Size() / n
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := cfg.RNG.Perm(n)
		var epochLoss float64
		batches := 0
		for lo := 0; lo < n; lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > n {
				hi = n
			}
			bx, by := gatherBatch(x, labels, perm[lo:hi], exampleSize)
			net.ZeroGrad()
			logits := net.Forward(bx, true)
			loss, grad := SoftmaxCrossEntropy(logits, by)
			net.Backward(grad)
			if cfg.ExtraGrad != nil {
				cfg.ExtraGrad(net)
			}
			cfg.Optimizer.Step(net.Params())
			epochLoss += float64(loss)
			batches++
		}
		lastLoss = float32(epochLoss / float64(batches))
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(epoch, lastLoss)
		}
	}
	return lastLoss, nil
}

// gatherBatch copies the selected examples into a contiguous batch tensor.
func gatherBatch(x *tensor.Tensor, labels []int, idx []int, exampleSize int) (*tensor.Tensor, []int) {
	shape := append([]int{len(idx)}, x.Shape()[1:]...)
	bx := tensor.New(shape...)
	by := make([]int, len(idx))
	for i, src := range idx {
		copy(bx.Data[i*exampleSize:(i+1)*exampleSize], x.Data[src*exampleSize:(src+1)*exampleSize])
		by[i] = labels[src]
	}
	return bx, by
}

// Evaluate returns classification accuracy of net on (x, labels), running
// inference in batches to bound memory.
func Evaluate(net *Network, x *tensor.Tensor, labels []int) float64 {
	n := x.Dim(0)
	if n == 0 {
		return 0
	}
	const batch = 256
	exampleSize := x.Size() / n
	correct := 0
	scratch := NewScratch()
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		shape := append([]int{hi - lo}, x.Shape()[1:]...)
		bx := tensor.FromSlice(x.Data[lo*exampleSize:hi*exampleSize], shape...)
		pred := net.ForwardBatch(bx, scratch).ArgMaxRows()
		for i, p := range pred {
			if p == labels[lo+i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(n)
}

// MeanLoss returns the mean softmax cross-entropy of net on (x, labels)
// without updating any state.
func MeanLoss(net *Network, x *tensor.Tensor, labels []int) float32 {
	n := x.Dim(0)
	if n == 0 {
		return 0
	}
	const batch = 256
	exampleSize := x.Size() / n
	var total float64
	var count int
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		shape := append([]int{hi - lo}, x.Shape()[1:]...)
		bx := tensor.FromSlice(x.Data[lo*exampleSize:hi*exampleSize], shape...)
		loss, _ := SoftmaxCrossEntropy(net.Predict(bx), labels[lo:hi])
		total += float64(loss) * float64(hi-lo)
		count += hi - lo
	}
	return float32(total / float64(count))
}
