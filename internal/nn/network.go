package nn

import (
	"fmt"

	"tinymlops/internal/tensor"
)

// Network is a sequential stack of layers. It is the model artifact the
// whole platform manipulates: the registry stores serialized Networks, the
// quantizer derives variants from them, the federated coordinator averages
// their flattened parameters and the verifier lifts their dense layers into
// field arithmetic.
type Network struct {
	// InputShape is the per-example input shape (batch dimension excluded),
	// e.g. [16] for a 16-feature MLP or [1, 16, 16] for a 1-channel image.
	InputShape []int

	layers []Layer
}

// NewNetwork returns a network over the given per-example input shape.
func NewNetwork(inputShape []int, layers ...Layer) *Network {
	return &Network{InputShape: append([]int(nil), inputShape...), layers: layers}
}

// Add appends a layer and returns the network for chaining.
func (n *Network) Add(l Layer) *Network {
	n.layers = append(n.layers, l)
	return n
}

// Layers returns the layer list (shared, do not mutate).
func (n *Network) Layers() []Layer { return n.layers }

// Forward runs the network on a batch. train toggles training behaviour
// (dropout, batch-norm statistics).
func (n *Network) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range n.layers {
		x = l.Forward(x, train)
	}
	return x
}

// Predict is Forward in inference mode.
func (n *Network) Predict(x *tensor.Tensor) *tensor.Tensor { return n.Forward(x, false) }

// Backward propagates the loss gradient through all layers, accumulating
// parameter gradients. It returns the gradient w.r.t. the network input.
func (n *Network) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(n.layers) - 1; i >= 0; i-- {
		grad = n.layers[i].Backward(grad)
	}
	return grad
}

// Params returns every trainable parameter in layer order.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad resets all accumulated gradients.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.Grad.Zero()
	}
}

// ParamCount returns the total number of trainable scalars.
func (n *Network) ParamCount() int {
	total := 0
	for _, p := range n.Params() {
		total += p.Value.Size()
	}
	return total
}

// FlatParams copies all parameter values into one flat vector, in layer
// order. Together with SetFlatParams it gives federated learning and
// watermarking a stable vector view of the model.
func (n *Network) FlatParams() []float32 {
	out := make([]float32, 0, n.ParamCount())
	for _, p := range n.Params() {
		out = append(out, p.Value.Data...)
	}
	return out
}

// SetFlatParams writes a flat vector produced by FlatParams back into the
// parameters. It returns an error if the length does not match.
func (n *Network) SetFlatParams(v []float32) error {
	if len(v) != n.ParamCount() {
		return fmt.Errorf("nn: SetFlatParams length %d, model has %d parameters", len(v), n.ParamCount())
	}
	off := 0
	for _, p := range n.Params() {
		copy(p.Value.Data, v[off:off+p.Value.Size()])
		off += p.Value.Size()
	}
	return nil
}

// FlatGrads copies all parameter gradients into one flat vector.
func (n *Network) FlatGrads() []float32 {
	out := make([]float32, 0, n.ParamCount())
	for _, p := range n.Params() {
		out = append(out, p.Grad.Data...)
	}
	return out
}

// LayerCost is the per-layer entry of a network summary.
type LayerCost struct {
	Index int
	Kind  string
	Info  LayerInfo
}

// Summary performs a shape-inference pass from InputShape and returns
// per-layer costs. It is the bridge to the device cost model: MACs and
// activation sizes feed latency/energy/memory estimates.
func (n *Network) Summary() ([]LayerCost, error) {
	in := append([]int(nil), n.InputShape...)
	out := make([]LayerCost, 0, len(n.layers))
	for i, l := range n.layers {
		info, err := l.Describe(in)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d (%s): %w", i, l.Kind(), err)
		}
		out = append(out, LayerCost{Index: i, Kind: l.Kind(), Info: info})
		in = info.OutShape
	}
	return out, nil
}

// TotalMACs returns the per-example multiply-accumulate count, or an error
// if shape inference fails.
func (n *Network) TotalMACs() (int64, error) {
	cs, err := n.Summary()
	if err != nil {
		return 0, err
	}
	var total int64
	for _, c := range cs {
		total += c.Info.MACs
	}
	return total, nil
}

// OutputShape returns the per-example output shape.
func (n *Network) OutputShape() ([]int, error) {
	cs, err := n.Summary()
	if err != nil {
		return nil, err
	}
	if len(cs) == 0 {
		return append([]int(nil), n.InputShape...), nil
	}
	return cs[len(cs)-1].Info.OutShape, nil
}

// OpKinds returns the set of operator kinds the network uses; the
// fragmentation layer checks it against device op-support matrices.
func (n *Network) OpKinds() []string {
	seen := make(map[string]bool)
	var out []string
	for _, l := range n.layers {
		if !seen[l.Kind()] {
			seen[l.Kind()] = true
			out = append(out, l.Kind())
		}
	}
	return out
}

// Clone returns a deep copy of the network (architecture and weights) by
// round-tripping through the binary serialization. Cloning is how the
// federated simulator gives every client an independent model.
func (n *Network) Clone() *Network {
	data, err := n.MarshalBinary()
	if err != nil {
		panic(fmt.Sprintf("nn: Clone marshal: %v", err))
	}
	c, err := UnmarshalNetwork(data)
	if err != nil {
		panic(fmt.Sprintf("nn: Clone unmarshal: %v", err))
	}
	return c
}
