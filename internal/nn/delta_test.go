package nn

import (
	"bytes"
	"math"
	"testing"

	"tinymlops/internal/tensor"
)

// deltaFixtureNet builds a network covering dense, conv and batchnorm
// layers (every tensor-carrying layer kind the serializer knows).
func deltaFixtureNet(seed uint64) *Network {
	rng := tensor.NewRNG(seed)
	net := NewNetwork([]int{1, 8, 8},
		NewConv2D(1, 2, 3, 3, 1, 1, rng), NewReLU(),
		NewMaxPool2D(2, 2), NewFlatten(),
		NewDense(32, 12, rng), NewBatchNorm1D(12), NewTanh(),
		NewDense(12, 3, rng))
	// Give batch norm non-trivial running statistics: they are serialized
	// state and the delta must carry them too.
	x := tensor.Randn(rng, 1, 16, 1*8*8).Reshape(16, 1, 8, 8)
	net.Forward(x, true)
	return net
}

func marshalOrDie(t *testing.T, n *Network) []byte {
	t.Helper()
	data, err := n.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDeltaRoundTripBitExact checks apply(encode(old,new), old) == new at
// the artifact-byte level for sparse (head-only) and dense (full retrain)
// updates across dense/conv/batchnorm layers.
func TestDeltaRoundTripBitExact(t *testing.T) {
	old := deltaFixtureNet(1)

	t.Run("sparse head-only update", func(t *testing.T) {
		upd := old.Clone()
		head := upd.Layers()[len(upd.Layers())-1].(*Dense)
		for i := range head.W.Value.Data {
			head.W.Value.Data[i] += 0.25
		}
		delta, err := EncodeDelta(old, upd)
		if err != nil {
			t.Fatal(err)
		}
		applied, err := ApplyDelta(old, delta)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(marshalOrDie(t, applied), marshalOrDie(t, upd)) {
			t.Fatal("applied delta does not reproduce the target artifact")
		}
		cost, err := CostOfDelta(delta, 32)
		if err != nil {
			t.Fatal(err)
		}
		if cost.ChangedParams != head.W.Value.Size() {
			t.Fatalf("changed params = %d, head has %d", cost.ChangedParams, head.W.Value.Size())
		}
		if cost.ShipBytes >= 4*cost.TotalParams {
			t.Fatalf("sparse delta ships %d bytes, full artifact is %d", cost.ShipBytes, 4*cost.TotalParams)
		}
	})

	t.Run("dense full update with NaN and -0", func(t *testing.T) {
		upd := deltaFixtureNet(2)
		// Forwarding with different data gives different running stats and
		// weights everywhere; also plant tricky bit patterns.
		d := upd.Layers()[4].(*Dense)
		d.W.Value.Data[0] = float32(math.NaN())
		d.W.Value.Data[1] = float32(math.Copysign(0, -1))
		delta, err := EncodeDelta(old, upd)
		if err != nil {
			t.Fatal(err)
		}
		applied, err := ApplyDelta(old, delta)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(marshalOrDie(t, applied), marshalOrDie(t, upd)) {
			t.Fatal("dense delta does not reproduce the target artifact bit-exactly")
		}
	})

	t.Run("identity update is near-free", func(t *testing.T) {
		delta, err := EncodeDelta(old, old.Clone())
		if err != nil {
			t.Fatal(err)
		}
		cost, err := CostOfDelta(delta, 32)
		if err != nil {
			t.Fatal(err)
		}
		if cost.ChangedParams != 0 || cost.ShipBytes > 128 {
			t.Fatalf("identity delta cost = %+v", cost)
		}
	})
}

// TestDeltaTopologyMismatch checks that encoding and applying across
// different topologies fail loudly instead of corrupting weights.
func TestDeltaTopologyMismatch(t *testing.T) {
	rng := tensor.NewRNG(3)
	a := NewNetwork([]int{4}, NewDense(4, 8, rng), NewReLU(), NewDense(8, 2, rng))
	b := NewNetwork([]int{4}, NewDense(4, 9, rng), NewReLU(), NewDense(9, 2, rng))
	if _, err := EncodeDelta(a, b); err == nil {
		t.Fatal("EncodeDelta accepted mismatched topologies")
	}
	aa := a.Clone()
	aa.Layers()[0].(*Dense).W.Value.Data[0] += 1
	delta, err := EncodeDelta(a, aa)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ApplyDelta(b, delta); err == nil {
		t.Fatal("ApplyDelta patched a model of the wrong topology")
	}
	// Truncated payloads are rejected.
	if _, err := ApplyDelta(a, delta[:len(delta)-3]); err == nil {
		t.Fatal("ApplyDelta accepted a truncated delta")
	}
	if _, err := ApplyDelta(a, []byte("not a delta")); err == nil {
		t.Fatal("ApplyDelta accepted garbage")
	}
}

// TestDeltaPackedCostScalesWithBits pins the packed-size model: int8 deltas
// ship a quarter of the float32 weight payload (indices excluded).
func TestDeltaPackedCostScalesWithBits(t *testing.T) {
	old := deltaFixtureNet(4)
	upd := old.Clone()
	head := upd.Layers()[len(upd.Layers())-1].(*Dense)
	for i := range head.W.Value.Data {
		head.W.Value.Data[i] *= 1.5
	}
	delta, err := EncodeDelta(old, upd)
	if err != nil {
		t.Fatal(err)
	}
	c32, err := CostOfDelta(delta, 32)
	if err != nil {
		t.Fatal(err)
	}
	c8, err := CostOfDelta(delta, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c8.FlashBytes*4 != c32.FlashBytes {
		t.Fatalf("flash bytes: int8=%d float32=%d", c8.FlashBytes, c32.FlashBytes)
	}
	if c8.ShipBytes >= c32.ShipBytes {
		t.Fatalf("int8 delta (%d B) not smaller than float32 delta (%d B)", c8.ShipBytes, c32.ShipBytes)
	}
}
