package device

import (
	"fmt"
	"time"
)

// Class labels a family of edge hardware.
type Class int

// Device classes, ordered roughly by compute capability.
const (
	ClassM0         Class = iota // FPU-less microcontroller
	ClassM4                      // MCU with FPU and DSP extensions
	ClassM7                      // high-end MCU
	ClassNPU                     // MCU with an int8 neural accelerator
	ClassMobile                  // smartphone-class SoC
	ClassEdgeServer              // wall-powered edge gateway
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassM0:
		return "cortex-m0"
	case ClassM4:
		return "cortex-m4"
	case ClassM7:
		return "cortex-m7"
	case ClassNPU:
		return "mcu-npu"
	case ClassMobile:
		return "mobile"
	case ClassEdgeServer:
		return "edge-server"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Capabilities is the static hardware description of a device type.
type Capabilities struct {
	Name  string
	Class Class

	// ClockHz is the core clock.
	ClockHz float64
	// MACsPerCycle maps a weight bit width (32, 8, 4, 2, 1) to the
	// multiply-accumulates the hardware retires per cycle at that width.
	// A missing entry means no native support: execution falls back to the
	// float32 rate multiplied by EmulationPenalty (unpacking overhead) —
	// the §III-A observation that low precision buys nothing without
	// hardware support.
	MACsPerCycle map[int]float64
	// EmulationPenalty (>1) divides the fp32 rate when emulating an
	// unsupported bit width.
	EmulationPenalty float64

	// FlashBytes bounds model storage; RAMBytes bounds working memory.
	FlashBytes int64
	RAMBytes   int64

	// EnergyPerMACJoule is the marginal energy per multiply-accumulate.
	EnergyPerMACJoule float64
	// EnergyPerTxByteJoule is the radio energy per transmitted byte.
	EnergyPerTxByteJoule float64
	// BatteryJoule is the full-charge battery capacity (0 = wall powered).
	BatteryJoule float64

	// SupportedOps lists operator kinds with vendor kernels on this
	// target. Models using other ops cannot be deployed natively (§IV) —
	// though they may still run inside the portable procvm sandbox.
	SupportedOps []string
}

// SupportsOp reports whether the op kind has a native kernel.
func (c *Capabilities) SupportsOp(kind string) bool {
	for _, k := range c.SupportedOps {
		if k == kind {
			return true
		}
	}
	return false
}

// SupportsBits reports whether the bit width has native hardware support.
func (c *Capabilities) SupportsBits(bits int) bool {
	_, ok := c.MACsPerCycle[bits]
	return ok
}

// InferenceLatency estimates the wall time of one inference of macs
// multiply-accumulates at the given weight bit width, honoring hardware
// support: unsupported widths pay the emulation penalty on the fp32 rate.
func (c *Capabilities) InferenceLatency(macs int64, bits int) time.Duration {
	rate, ok := c.MACsPerCycle[bits]
	if !ok {
		rate = c.MACsPerCycle[32] / c.EmulationPenalty
	}
	if rate <= 0 {
		rate = 1e-3
	}
	cycles := float64(macs) / rate
	seconds := cycles / c.ClockHz
	return time.Duration(seconds * float64(time.Second))
}

// InferenceEnergy estimates the energy of one inference in joules.
func (c *Capabilities) InferenceEnergy(macs int64) float64 {
	return float64(macs) * c.EnergyPerMACJoule
}

// WallPowered reports whether the device has no battery constraint.
func (c *Capabilities) WallPowered() bool { return c.BatteryJoule == 0 }

// coreOps are the operator kinds every profile supports.
var coreOps = []string{"dense", "relu", "flatten", "softmax"}

func withOps(extra ...string) []string {
	return append(append([]string(nil), coreOps...), extra...)
}

// StandardProfiles returns the six reference device profiles used across
// the experiments. Throughput, memory and energy figures are order-of-
// magnitude representative of each class (the experiments depend on the
// relative ordering, not the absolute values).
func StandardProfiles() []Capabilities {
	return []Capabilities{
		{
			Name: "m0-sensor", Class: ClassM0,
			ClockHz: 48e6,
			// No FPU: fp32 in software is slow; int8 runs at 0.5 MAC/cycle.
			MACsPerCycle:     map[int]float64{32: 0.05, 8: 0.5, 1: 2},
			EmulationPenalty: 3,
			FlashBytes:       256 << 10, RAMBytes: 32 << 10,
			EnergyPerMACJoule: 60e-12, EnergyPerTxByteJoule: 2e-6,
			BatteryJoule: 1200, // coin cell
			SupportedOps: withOps("sigmoid"),
		},
		{
			Name: "m4-wearable", Class: ClassM4,
			ClockHz:          120e6,
			MACsPerCycle:     map[int]float64{32: 0.5, 8: 2},
			EmulationPenalty: 2,
			FlashBytes:       1 << 20, RAMBytes: 256 << 10,
			EnergyPerMACJoule: 25e-12, EnergyPerTxByteJoule: 1.5e-6,
			BatteryJoule: 5000,
			SupportedOps: withOps("conv2d", "maxpool2d", "sigmoid", "tanh"),
		},
		{
			Name: "m7-camera", Class: ClassM7,
			ClockHz:          480e6,
			MACsPerCycle:     map[int]float64{32: 1, 8: 4},
			EmulationPenalty: 2,
			FlashBytes:       2 << 20, RAMBytes: 512 << 10,
			EnergyPerMACJoule: 18e-12, EnergyPerTxByteJoule: 1.2e-6,
			BatteryJoule: 20000,
			SupportedOps: withOps("conv2d", "maxpool2d", "batchnorm1d", "sigmoid", "tanh"),
		},
		{
			Name: "npu-board", Class: ClassNPU,
			ClockHz: 240e6,
			// The NPU retires 64 int8 MACs/cycle but has no fp32 pipeline
			// beyond a slow fallback and no sub-int8 modes.
			MACsPerCycle:     map[int]float64{32: 0.5, 8: 64, 4: 128},
			EmulationPenalty: 4,
			FlashBytes:       4 << 20, RAMBytes: 1 << 20,
			EnergyPerMACJoule: 4e-12, EnergyPerTxByteJoule: 1.2e-6,
			BatteryJoule: 20000,
			SupportedOps: withOps("conv2d", "maxpool2d"),
		},
		{
			Name: "phone", Class: ClassMobile,
			ClockHz:          2.4e9,
			MACsPerCycle:     map[int]float64{32: 8, 8: 32, 4: 64},
			EmulationPenalty: 1.5,
			FlashBytes:       32 << 30, RAMBytes: 4 << 30,
			EnergyPerMACJoule: 8e-12, EnergyPerTxByteJoule: 0.6e-6,
			BatteryJoule: 40000,
			SupportedOps: withOps("conv2d", "maxpool2d", "batchnorm1d", "dropout", "sigmoid", "tanh"),
		},
		{
			Name: "edge-gateway", Class: ClassEdgeServer,
			ClockHz:          3.0e9,
			MACsPerCycle:     map[int]float64{32: 64, 8: 256, 4: 512, 2: 512, 1: 1024},
			EmulationPenalty: 1.2,
			FlashBytes:       512 << 30, RAMBytes: 16 << 30,
			EnergyPerMACJoule: 2e-12, EnergyPerTxByteJoule: 0.1e-6,
			BatteryJoule: 0, // wall powered
			SupportedOps: withOps("conv2d", "maxpool2d", "batchnorm1d", "dropout", "sigmoid", "tanh"),
		},
	}
}

// ProfileByName returns the standard profile with the given name.
func ProfileByName(name string) (Capabilities, error) {
	for _, p := range StandardProfiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Capabilities{}, fmt.Errorf("device: unknown profile %q", name)
}
