package device

import "tinymlops/internal/tensor"

// seeder hands out independent RNGs derived from one root seed, so fleet
// construction is deterministic regardless of device count or order of use.
type seeder struct {
	root *tensor.RNG
}

func newSeeder(seed uint64) *seeder {
	return &seeder{root: tensor.NewRNG(seed)}
}

func (s *seeder) next() *tensor.RNG { return s.root.Split() }
