// Package device simulates the fragmented edge-hardware landscape of §IV:
// heterogeneous device classes (Cortex-M-class MCUs, NPU-equipped boards,
// smartphones, edge servers) with distinct compute throughput per bit
// width, memory ceilings, energy budgets, battery/charger dynamics and
// network connectivity.
//
// The paper's platform decisions — which model variant to push to which
// device, when to upload telemetry, when a federated client may train,
// where to split a model between edge and cloud — consume exactly the
// scalar capabilities modeled here, which is what makes a simulator a
// faithful substitute for physical hardware in this reproduction (see
// DESIGN.md §1).
//
// Every Device method is safe for concurrent use, and Fleet shards its ID
// index across RWMutex-guarded buckets, because the operational premise of
// the paper is scale: internal/engine drives thousands of devices per
// round from a bounded worker pool, and the device layer must not be the
// serialization point.
package device
