package device

import (
	"errors"
	"testing"

	"tinymlops/internal/tensor"
)

func chunkDevice(t *testing.T, profile string) *Device {
	t.Helper()
	caps, err := ProfileByName(profile)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDevice("chunk-0", caps, tensor.NewRNG(1))
	d.SetNet(WiFi)
	return d
}

func TestInstallChunkExactlyOnceAccounting(t *testing.T) {
	d := chunkDevice(t, "m4-wearable")
	const total, flash = int64(1000), int64(400)
	var dl int64
	for dl < total {
		w, _, err := d.InstallChunk("full:v1", 256, total, flash)
		if err != nil {
			t.Fatal(err)
		}
		dl += w
	}
	c := d.Snapshot()
	if c.RxBytes != total || c.FlashedBytes != flash {
		t.Fatalf("counters rx=%d fl=%d, want exactly %d/%d", c.RxBytes, c.FlashedBytes, total, flash)
	}
	if _, _, _, _, ok := d.StagingDownload(); ok {
		t.Fatal("staging slot survived a completed chunked install")
	}
}

func TestInstallChunkPersistsSlotBetweenChunks(t *testing.T) {
	d := chunkDevice(t, "m4-wearable")
	if _, _, err := d.InstallChunk("full:v1", 256, 1000, 1000); err != nil {
		t.Fatal(err)
	}
	tok, done, dlTotal, flTotal, ok := d.StagingDownload()
	if !ok || tok != "full:v1" || done != 256 || dlTotal != 1000 || flTotal != 1000 {
		t.Fatalf("slot = (%q %d %d %d %v), want healthy partial at 256/1000", tok, done, dlTotal, flTotal, ok)
	}
	// A different image discards the stale slot and starts from zero.
	if _, _, err := d.InstallChunk("full:v2", 256, 2000, 2000); err != nil {
		t.Fatal(err)
	}
	if tok, done, _, _, _ := d.StagingDownload(); tok != "full:v2" || done != 256 {
		t.Fatalf("slot = (%q %d), want fresh v2 at 256", tok, done)
	}
}

func TestInstallChunkCrashResumesFromExactByte(t *testing.T) {
	d := chunkDevice(t, "m4-wearable")
	d.SetInstallInterrupter(func(string, int64) float64 { return 0.5 })
	w, _, err := d.InstallChunk("full:v1", 400, 400, 400)
	if !errors.Is(err, ErrInstallInterrupted) {
		t.Fatalf("err = %v, want ErrInstallInterrupted", err)
	}
	if w != 200 {
		t.Fatalf("crash wrote %d download bytes, want 200", w)
	}
	d.SetInstallInterrupter(nil)
	// Resume: the remaining 200 bytes finish the image.
	w, _, err = d.InstallChunk("full:v1", 200, 400, 400)
	if err != nil || w != 200 {
		t.Fatalf("resume wrote %d (%v), want 200", w, err)
	}
	c := d.Snapshot()
	if c.RxBytes != 400 || c.FlashedBytes != 400 {
		t.Fatalf("counters rx=%d fl=%d after crash+resume, want exactly 400/400", c.RxBytes, c.FlashedBytes)
	}
}

func TestInstallChunkFlashProportionality(t *testing.T) {
	// A delta downloads more than it flashes; the per-chunk flash share
	// must telescope to exactly flashTotal with no rounding drift.
	d := chunkDevice(t, "m4-wearable")
	const total, flash = int64(997), int64(311) // coprime: worst case for rounding
	var dl int64
	for dl < total {
		w, _, err := d.InstallChunk("delta:a>b", 100, total, flash)
		if err != nil {
			t.Fatal(err)
		}
		dl += w
	}
	if c := d.Snapshot(); c.FlashedBytes != flash {
		t.Fatalf("flashed %d, want exactly %d", c.FlashedBytes, flash)
	}
}

func TestInstallChunkRejects(t *testing.T) {
	d := chunkDevice(t, "m4-wearable")
	cases := []struct {
		name                   string
		token                  string
		span, dlTotal, flTotal int64
	}{
		{"empty-token", "", 10, 100, 100},
		{"zero-total", "t", 10, 0, 100},
		{"negative-span", "t", -1, 100, 100},
		{"negative-flash", "t", 10, 100, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := d.InstallChunk(tc.token, tc.span, tc.dlTotal, tc.flTotal); err == nil {
				t.Fatal("invalid chunk install accepted")
			}
		})
	}
}

func TestInstallChunkOfflineAndBattery(t *testing.T) {
	d := chunkDevice(t, "m4-wearable")
	d.SetNet(Offline)
	if _, _, err := d.InstallChunk("t", 10, 100, 100); !errors.Is(err, ErrOffline) {
		t.Fatalf("offline err = %v", err)
	}
	d.SetNet(WiFi)
	d.SetBatteryLevel(0)
	if _, _, err := d.InstallChunk("t", 10, 100, 100); !errors.Is(err, ErrBatteryDepleted) {
		t.Fatalf("dead battery err = %v", err)
	}
}

func TestServeChargesTxNotBattery(t *testing.T) {
	d := chunkDevice(t, "m4-wearable")
	before := d.BatteryLevel()
	if _, err := d.Serve(1 << 16); err != nil {
		t.Fatal(err)
	}
	if c := d.Snapshot(); c.TxBytes != 1<<16 {
		t.Fatalf("TxBytes = %d", c.TxBytes)
	}
	if d.BatteryLevel() != before {
		t.Fatal("swarm seeding drained the battery; serving must be charger-gated")
	}
	d.SetNet(Offline)
	if _, err := d.Serve(1); !errors.Is(err, ErrOffline) {
		t.Fatalf("offline serve err = %v", err)
	}
}
