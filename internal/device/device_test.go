package device

import (
	"errors"
	"sync"
	"testing"
	"time"

	"tinymlops/internal/tensor"
)

func TestStandardProfilesDistinctAndOrdered(t *testing.T) {
	profiles := StandardProfiles()
	if len(profiles) != 6 {
		t.Fatalf("got %d profiles", len(profiles))
	}
	seen := make(map[string]bool)
	for _, p := range profiles {
		if seen[p.Name] {
			t.Fatalf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		if p.ClockHz <= 0 || p.FlashBytes <= 0 || p.RAMBytes <= 0 {
			t.Fatalf("profile %q has nonsensical caps", p.Name)
		}
		if _, ok := p.MACsPerCycle[32]; !ok {
			t.Fatalf("profile %q lacks an fp32 rate", p.Name)
		}
	}
	// Best-case compute capability (over all supported bit widths) should
	// rise from M0 to edge server; fp32 alone need not be monotone — the
	// NPU board pairs a weak CPU with a strong int8 accelerator.
	var prev float64
	for _, p := range profiles {
		var best float64
		for _, r := range p.MACsPerCycle {
			if r > best {
				best = r
			}
		}
		rate := best * p.ClockHz
		if rate < prev {
			t.Fatalf("profile %q is slower (best-case) than its predecessor", p.Name)
		}
		prev = rate
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("phone")
	if err != nil || p.Class != ClassMobile {
		t.Fatalf("ProfileByName(phone) = %v, %v", p.Class, err)
	}
	if _, err := ProfileByName("toaster"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestInferenceLatencyHWSupportMatters(t *testing.T) {
	npu, _ := ProfileByName("npu-board")
	const macs = 1_000_000
	fp32 := npu.InferenceLatency(macs, 32)
	int8 := npu.InferenceLatency(macs, 8)
	// NPU: int8 is 128× the fp32 rate here.
	if int8 >= fp32 {
		t.Fatalf("int8 (%v) should be much faster than fp32 (%v) on the NPU", int8, fp32)
	}
	// Ternary has no native support: pays emulation penalty over fp32.
	tern := npu.InferenceLatency(macs, 2)
	if tern <= fp32 {
		t.Fatalf("unsupported width (%v) should be slower than fp32 (%v)", tern, fp32)
	}
}

func TestSupportsBitsAndOps(t *testing.T) {
	m0, _ := ProfileByName("m0-sensor")
	if !m0.SupportsBits(8) || m0.SupportsBits(4) {
		t.Fatalf("m0 bit support wrong: %v", m0.MACsPerCycle)
	}
	if m0.SupportsOp("conv2d") {
		t.Fatal("m0 should not support conv2d")
	}
	if !m0.SupportsOp("dense") {
		t.Fatal("m0 must support dense")
	}
}

func TestDeviceBatteryDrainsAndCharges(t *testing.T) {
	caps, _ := ProfileByName("m0-sensor")
	d := NewDevice("d0", caps, tensor.NewRNG(1))
	if d.BatteryLevel() != 1 {
		t.Fatalf("fresh battery level %v", d.BatteryLevel())
	}
	// Drain with a huge inference load.
	macs := int64(caps.BatteryJoule / caps.EnergyPerMACJoule / 2)
	if _, err := d.RunInference(macs, 8); err != nil {
		t.Fatal(err)
	}
	if lv := d.BatteryLevel(); lv > 0.51 || lv < 0.49 {
		t.Fatalf("battery after half drain = %v", lv)
	}
	// Deplete and verify the error path.
	if _, err := d.RunInference(macs*2, 8); !errors.Is(err, ErrBatteryDepleted) {
		t.Fatalf("expected battery error, got %v", err)
	}
	// Charging tick restores charge.
	d.SetBehavior(1, 1, 0) // always charging, always wifi
	before := d.BatteryLevel()
	d.Tick()
	if d.BatteryLevel() <= before {
		t.Fatal("charging tick did not restore battery")
	}
}

func TestWallPoweredDeviceNeverDrains(t *testing.T) {
	caps, _ := ProfileByName("edge-gateway")
	d := NewDevice("gw", caps, tensor.NewRNG(2))
	if _, err := d.RunInference(1e12, 32); err != nil {
		t.Fatal(err)
	}
	if d.BatteryLevel() != 1 || !d.Charging() || d.Net() != WiFi {
		t.Fatal("wall-powered device must be always-on")
	}
}

func TestCheckFit(t *testing.T) {
	caps, _ := ProfileByName("m4-wearable")
	d := NewDevice("w0", caps, tensor.NewRNG(3))
	if err := d.CheckFit(100<<10, 50<<10); err != nil {
		t.Fatalf("small model should fit: %v", err)
	}
	if err := d.CheckFit(10<<20, 1<<10); !errors.Is(err, ErrModelTooLarge) {
		t.Fatalf("want ErrModelTooLarge, got %v", err)
	}
	if err := d.CheckFit(1<<10, 10<<20); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
}

func TestDownloadUploadRequireConnectivity(t *testing.T) {
	caps, _ := ProfileByName("phone")
	d := NewDevice("p0", caps, tensor.NewRNG(4))
	// Fresh device is offline.
	if _, err := d.Download(1000); err == nil {
		t.Fatal("offline download should fail")
	}
	d.SetBehavior(0, 1, 0) // always connected, wifi
	d.Tick()
	dur, err := d.Download(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if dur <= 0 {
		t.Fatalf("download duration = %v", dur)
	}
	if _, err := d.Upload(1 << 10); err != nil {
		t.Fatal(err)
	}
	c := d.Snapshot()
	if c.RxBytes != 1<<20 || c.TxBytes != 1<<10 {
		t.Fatalf("counters rx=%d tx=%d", c.RxBytes, c.TxBytes)
	}
}

func TestCountersAccumulate(t *testing.T) {
	caps, _ := ProfileByName("m7-camera")
	d := NewDevice("c0", caps, tensor.NewRNG(5))
	for i := 0; i < 10; i++ {
		if _, err := d.RunInference(1000, 8); err != nil {
			t.Fatal(err)
		}
	}
	d.DenyQuery()
	c := d.Snapshot()
	if c.Inferences != 10 || c.MACs != 10000 || c.DeniedQueries != 1 {
		t.Fatalf("counters = %+v", c)
	}
	if c.EnergyJoule <= 0 || c.BusyTime <= 0 {
		t.Fatalf("energy/time not accounted: %+v", c)
	}
}

func TestDeviceConcurrentSafety(t *testing.T) {
	caps, _ := ProfileByName("phone")
	d := NewDevice("p1", caps, tensor.NewRNG(6))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				d.RunInference(100, 8) //nolint:errcheck
				d.Tick()
				d.BatteryLevel()
			}
		}()
	}
	wg.Wait()
	if got := d.Snapshot().Inferences; got != 800 {
		t.Fatalf("lost inferences under concurrency: %d", got)
	}
}

func TestFleetAddGetAndDuplicate(t *testing.T) {
	f := NewFleet()
	caps, _ := ProfileByName("phone")
	d := NewDevice("a", caps, tensor.NewRNG(7))
	if err := f.Add(d); err != nil {
		t.Fatal(err)
	}
	if err := f.Add(NewDevice("a", caps, tensor.NewRNG(8))); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	got, ok := f.Get("a")
	if !ok || got != d {
		t.Fatal("Get failed")
	}
	if _, ok := f.Get("missing"); ok {
		t.Fatal("Get returned missing device")
	}
}

func TestNewStandardFleetDeterministic(t *testing.T) {
	f1, err := NewStandardFleet(FleetSpec{CountPerProfile: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if f1.Size() != 12 {
		t.Fatalf("fleet size %d, want 12", f1.Size())
	}
	f2, _ := NewStandardFleet(FleetSpec{CountPerProfile: 2, Seed: 42})
	// Same seed → same behavioral trajectories.
	for i := 0; i < 50; i++ {
		f1.Tick()
		f2.Tick()
	}
	d1 := f1.Devices()
	d2 := f2.Devices()
	for i := range d1 {
		if d1[i].Net() != d2[i].Net() || d1[i].Charging() != d2[i].Charging() {
			t.Fatalf("fleet not deterministic at device %d", i)
		}
	}
}

func TestFleetEligible(t *testing.T) {
	f, _ := NewStandardFleet(FleetSpec{CountPerProfile: 3, Seed: 1})
	// Force a subset into the eligible state.
	for i, d := range f.Devices() {
		if i%2 == 0 {
			d.SetBehavior(1, 1, 0)
		} else {
			d.SetBehavior(0, 0, 1)
		}
	}
	f.Tick()
	elig := f.Eligible()
	if len(elig) == 0 {
		t.Fatal("no eligible devices after forcing charger+wifi")
	}
	for _, d := range elig {
		if !d.Charging() || d.Net() != WiFi {
			t.Fatalf("ineligible device %s returned", d.ID)
		}
	}
}

func TestFleetByClass(t *testing.T) {
	f, _ := NewStandardFleet(FleetSpec{CountPerProfile: 2, Seed: 3})
	groups := f.ByClass()
	if len(groups) != 6 {
		t.Fatalf("got %d classes", len(groups))
	}
	for c, ids := range groups {
		if len(ids) != 2 {
			t.Fatalf("class %v has %d devices", c, len(ids))
		}
	}
}

func TestNetStateStringsAndBandwidth(t *testing.T) {
	if Offline.String() != "offline" || Cellular.String() != "cellular" || WiFi.String() != "wifi" {
		t.Fatal("NetState strings wrong")
	}
	if Offline.Bandwidth() != 0 {
		t.Fatal("offline bandwidth must be 0")
	}
	if WiFi.Bandwidth() <= Cellular.Bandwidth() {
		t.Fatal("wifi must be faster than cellular")
	}
}

func TestClassStrings(t *testing.T) {
	for c, want := range map[Class]string{
		ClassM0: "cortex-m0", ClassM4: "cortex-m4", ClassM7: "cortex-m7",
		ClassNPU: "mcu-npu", ClassMobile: "mobile", ClassEdgeServer: "edge-server",
	} {
		if c.String() != want {
			t.Fatalf("%d.String() = %q", c, c.String())
		}
	}
}

func TestInferenceLatencyPositiveAndScales(t *testing.T) {
	m4, _ := ProfileByName("m4-wearable")
	l1 := m4.InferenceLatency(1_000_000, 32)
	l2 := m4.InferenceLatency(2_000_000, 32)
	if l1 <= 0 {
		t.Fatal("latency must be positive")
	}
	ratio := float64(l2) / float64(l1)
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("latency should scale linearly in MACs, ratio=%v", ratio)
	}
	if l1 < time.Microsecond {
		t.Fatalf("1M MACs on an M4 should take milliseconds, got %v", l1)
	}
}

// TestFleetShardedConcurrentAccess hammers the sharded fleet index from
// concurrent adders, readers and tickers; the race detector plus the final
// insertion-order check guard the sharding refactor.
func TestFleetShardedConcurrentAccess(t *testing.T) {
	f := NewFleet()
	caps, _ := ProfileByName("phone")
	const n = 200
	ids := make([]string, n)
	for i := range ids {
		ids[i] = "phone-" + string(rune('a'+i/26%26)) + string(rune('a'+i%26)) + string(rune('0'+i/676))
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := f.Add(NewDevice(ids[i], caps, tensor.NewRNG(uint64(i)))); err != nil {
				t.Error(err)
			}
		}(i)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				f.Get(ids[k%n])
				if g == 0 {
					f.Size()
					f.Devices()
				}
			}
		}(g)
	}
	wg.Wait()
	if f.Size() != n {
		t.Fatalf("size %d after concurrent adds", f.Size())
	}
	for _, id := range ids {
		if _, ok := f.Get(id); !ok {
			t.Fatalf("device %s lost", id)
		}
	}
	if err := f.Add(NewDevice(ids[0], caps, tensor.NewRNG(1))); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if len(f.Devices()) != n {
		t.Fatalf("Devices() returned %d entries", len(f.Devices()))
	}
}

func TestSetNetAndBatteryOverrides(t *testing.T) {
	caps, _ := ProfileByName("phone")
	d := NewDevice("p1", caps, tensor.NewRNG(7))
	d.SetNet(WiFi)
	if d.Net() != WiFi {
		t.Fatalf("net after SetNet(WiFi) = %v", d.Net())
	}
	d.SetNet(Offline)
	if _, err := d.Download(10); !errors.Is(err, ErrOffline) {
		t.Fatalf("want ErrOffline, got %v", err)
	}
	d.SetBatteryLevel(0)
	if d.BatteryLevel() != 0 {
		t.Fatalf("battery after death = %v", d.BatteryLevel())
	}
	d.SetBatteryLevel(2) // clamped
	if d.BatteryLevel() != 1 {
		t.Fatalf("battery after clamp = %v", d.BatteryLevel())
	}
	// Wall-powered devices ignore battery overrides.
	gw := NewDevice("gw1", mustProfile(t, "edge-gateway"), tensor.NewRNG(8))
	gw.SetBatteryLevel(0)
	if gw.BatteryLevel() != 1 {
		t.Fatal("wall-powered battery must stay full")
	}
}

func mustProfile(t *testing.T, name string) Capabilities {
	t.Helper()
	p, err := ProfileByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestInstallInterruptedResumesNotRestarts is the device-level recovery
// contract: a mid-flash crash leaves a half-written staging slot, and the
// retry programs only the remainder — total flashed bytes across attempts
// equal exactly the image size, never more.
func TestInstallInterruptedResumesNotRestarts(t *testing.T) {
	d := NewDevice("gw2", mustProfile(t, "edge-gateway"), tensor.NewRNG(9))
	size := int64(1 << 20)

	// First attempt crashes at 40% of the flash.
	d.SetInstallInterrupter(func(token string, rem int64) float64 { return 0.4 })
	_, err := d.InstallResumable("img-v2", size, size)
	if !errors.Is(err, ErrInstallInterrupted) {
		t.Fatalf("want ErrInstallInterrupted, got %v", err)
	}
	token, flashed, total, ok := d.Staging()
	if !ok || token != "img-v2" || total != size {
		t.Fatalf("staging = %q %d/%d ok=%v", token, flashed, total, ok)
	}
	want40 := int64(0.4 * float64(size))
	if flashed != want40 {
		t.Fatalf("flashed %d, want %d", flashed, want40)
	}

	// Second attempt completes; it must flash only the remainder.
	d.SetInstallInterrupter(nil)
	if _, err := d.InstallResumable("img-v2", size, size); err != nil {
		t.Fatal(err)
	}
	if _, _, _, ok := d.Staging(); ok {
		t.Fatal("staging must clear on completion")
	}
	c := d.Snapshot()
	if c.FlashedBytes != size {
		t.Fatalf("total flashed %d across attempts, want exactly %d (resume, not restart)", c.FlashedBytes, size)
	}
	if c.RxBytes != size {
		t.Fatalf("total downloaded %d, want exactly %d (streamed install resumes the transfer too)", c.RxBytes, size)
	}
}

func TestInstallDifferentTokenDiscardsStaleStaging(t *testing.T) {
	d := NewDevice("gw3", mustProfile(t, "edge-gateway"), tensor.NewRNG(10))
	d.SetInstallInterrupter(func(string, int64) float64 { return 0.5 })
	if _, err := d.InstallResumable("img-a", 1000, 1000); !errors.Is(err, ErrInstallInterrupted) {
		t.Fatalf("want interruption, got %v", err)
	}
	d.SetInstallInterrupter(nil)
	// A new target image must not inherit img-a's progress.
	if _, err := d.InstallResumable("img-b", 2000, 2000); err != nil {
		t.Fatal(err)
	}
	c := d.Snapshot()
	if c.FlashedBytes != 500+2000 {
		t.Fatalf("flashed %d, want %d (full img-b after discarding img-a)", c.FlashedBytes, 2500)
	}
	if _, _, _, ok := d.Staging(); ok {
		t.Fatal("no staging should remain")
	}
}

func TestInstallLegacyPathUnchanged(t *testing.T) {
	d := NewDevice("gw4", mustProfile(t, "edge-gateway"), tensor.NewRNG(11))
	dur, err := d.Install(4096, 4096)
	if err != nil || dur <= 0 {
		t.Fatalf("Install = %v, %v", dur, err)
	}
	c := d.Snapshot()
	if c.RxBytes != 4096 || c.FlashedBytes != 4096 {
		t.Fatalf("counters rx=%d flashed=%d", c.RxBytes, c.FlashedBytes)
	}
	// An interrupted tokenless install leaves no recoverable state.
	d.SetInstallInterrupter(func(string, int64) float64 { return 0.25 })
	if _, err := d.Install(1000, 1000); !errors.Is(err, ErrInstallInterrupted) {
		t.Fatalf("want interruption, got %v", err)
	}
	if _, _, _, ok := d.Staging(); ok {
		t.Fatal("tokenless install must not stage")
	}
}

// TestTokenlessInstallInvalidatesStaging: any write to the inactive slot
// that is not resuming the recorded image — including a legacy tokenless
// install — must discard the staged progress, or a later "resume" would
// complete a slot whose contents were clobbered in between.
func TestTokenlessInstallInvalidatesStaging(t *testing.T) {
	d := NewDevice("gw5", mustProfile(t, "edge-gateway"), tensor.NewRNG(12))
	d.SetInstallInterrupter(func(string, int64) float64 { return 0.5 })
	if _, err := d.InstallResumable("img-x", 1000, 1000); !errors.Is(err, ErrInstallInterrupted) {
		t.Fatalf("want interruption, got %v", err)
	}
	d.SetInstallInterrupter(nil)
	// A tokenless install writes over the slot.
	if _, err := d.Install(100, 100); err != nil {
		t.Fatal(err)
	}
	if _, _, _, ok := d.Staging(); ok {
		t.Fatal("staging survived an intervening tokenless install")
	}
	// The old image cannot resume: it restarts from byte zero.
	before := d.Snapshot().FlashedBytes
	if _, err := d.InstallResumable("img-x", 1000, 1000); err != nil {
		t.Fatal(err)
	}
	if got := d.Snapshot().FlashedBytes - before; got != 1000 {
		t.Fatalf("flashed %d after invalidation, want a full 1000", got)
	}
}
