package device

import (
	"fmt"
	"sync"
	"time"

	"tinymlops/internal/tensor"
)

// NetState is a device's current connectivity.
type NetState int

// Connectivity states.
const (
	Offline NetState = iota
	Cellular
	WiFi
)

// String implements fmt.Stringer.
func (n NetState) String() string {
	switch n {
	case Offline:
		return "offline"
	case Cellular:
		return "cellular"
	case WiFi:
		return "wifi"
	default:
		return fmt.Sprintf("net(%d)", int(n))
	}
}

// Bandwidth returns the downlink bandwidth in bytes/second for the state.
func (n NetState) Bandwidth() float64 {
	switch n {
	case Cellular:
		return 5e6 / 8 * 4 // ≈2.5 MB/s
	case WiFi:
		return 20e6 / 8 * 8 // ≈20 MB/s
	default:
		return 0
	}
}

// Counters accumulates what a device has done; the observability layer
// reads them as telemetry.
type Counters struct {
	Inferences    int64
	MACs          int64
	BusyTime      time.Duration
	EnergyJoule   float64
	TxBytes       int64
	RxBytes       int64
	FlashedBytes  int64
	DeniedQueries int64
}

// staging is the inactive-slot (B-slot) image write in progress: an OTA
// install streams radio bytes into flash, and a mid-flash crash leaves the
// slot half-written. The active slot is untouched, so the device keeps
// running its old image; a retry of the same image resumes from flashDone
// instead of starting over. Flash is persistent — staged bytes survive the
// crash — which is exactly what makes the recovery cheap.
type staging struct {
	token         string // identifies the image being written
	downloadDone  int64
	flashDone     int64
	downloadTotal int64
	flashTotal    int64
}

// Device is one simulated edge node: static capabilities plus mutable
// runtime state (battery, charger, connectivity) and usage counters.
// All methods are safe for concurrent use; the fleet simulator drives many
// devices from a worker pool.
type Device struct {
	ID   string
	Caps Capabilities

	mu       sync.Mutex
	battery  float64 // joules remaining; ignored when wall powered
	charging bool
	net      NetState
	counters Counters

	// Behavioral probabilities per simulation tick.
	pCharge  float64 // probability of being on a charger
	pWiFi    float64 // probability of WiFi when connected
	pOffline float64 // probability of having no connectivity

	// staging is the half-written inactive slot, nil when no install is
	// in flight. interrupt, when set, is consulted once per install
	// attempt and may crash it partway (see SetInstallInterrupter).
	staging   *staging
	interrupt func(token string, remainingFlash int64) float64

	rng *tensor.RNG
}

// NewDevice returns a device with a full battery, offline, not charging.
func NewDevice(id string, caps Capabilities, rng *tensor.RNG) *Device {
	return &Device{
		ID: id, Caps: caps,
		battery:  caps.BatteryJoule,
		net:      Offline,
		pCharge:  0.3,
		pWiFi:    0.5,
		pOffline: 0.2,
		rng:      rng,
	}
}

// SetBehavior configures the per-tick probabilities of being on a charger,
// on WiFi (when connected), and offline.
func (d *Device) SetBehavior(pCharge, pWiFi, pOffline float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pCharge, d.pWiFi, d.pOffline = pCharge, pWiFi, pOffline
}

// SetNet overrides the connectivity state deterministically — the fault
// plane owns the weather during a chaos run, where Tick's probabilistic
// flips would break worker-count reproducibility. Wall-powered devices
// still report WiFi from Net regardless.
func (d *Device) SetNet(n NetState) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.net = n
}

// SetBatteryLevel sets the battery to the given fraction of capacity,
// clamped to [0,1]. Fraction 0 models sudden battery death; restoring to 1
// models a swap or a full recharge between rounds. No-op on wall power.
func (d *Device) SetBatteryLevel(frac float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.Caps.WallPowered() {
		return
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	d.battery = frac * d.Caps.BatteryJoule
}

// SetInstallInterrupter registers fn, consulted once per install attempt
// with the install token and the flash bytes remaining in that attempt. A
// return in (0,1) crashes the attempt after that fraction of the remaining
// work (a power loss mid-flash); anything else lets it complete. nil
// removes the hook. The fault plane supplies deterministic decisions here.
func (d *Device) SetInstallInterrupter(fn func(token string, remainingFlash int64) float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.interrupt = fn
}

// Staging reports the half-written inactive slot left by an interrupted
// install: the image token, the bytes already programmed, and the image
// size. ok is false when no install is in flight — the converged state the
// fleet auditor demands of every device.
func (d *Device) Staging() (token string, flashed, total int64, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.staging == nil {
		return "", 0, 0, false
	}
	return d.staging.token, d.staging.flashDone, d.staging.flashTotal, true
}

// BatteryLevel returns the battery fraction in [0,1]; wall-powered devices
// report 1.
func (d *Device) BatteryLevel() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.batteryLevelLocked()
}

func (d *Device) batteryLevelLocked() float64 {
	if d.Caps.WallPowered() {
		return 1
	}
	lv := d.battery / d.Caps.BatteryJoule
	if lv < 0 {
		return 0
	}
	return lv
}

// Charging reports whether the device is on a charger (wall-powered
// devices always are).
func (d *Device) Charging() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.charging || d.Caps.WallPowered()
}

// Net returns the current connectivity state.
func (d *Device) Net() NetState {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.Caps.WallPowered() {
		return WiFi
	}
	return d.net
}

// Snapshot returns a copy of the usage counters.
func (d *Device) Snapshot() Counters {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.counters
}

// Tick advances the device's behavioral state by one simulation step:
// charger and connectivity flip according to the configured probabilities,
// and a charging battery regains 1% capacity.
func (d *Device) Tick() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.Caps.WallPowered() {
		return
	}
	d.charging = d.rng.Float64() < d.pCharge
	switch {
	case d.rng.Float64() < d.pOffline:
		d.net = Offline
	case d.rng.Float64() < d.pWiFi:
		d.net = WiFi
	default:
		d.net = Cellular
	}
	if d.charging {
		d.battery += 0.01 * d.Caps.BatteryJoule
		if d.battery > d.Caps.BatteryJoule {
			d.battery = d.Caps.BatteryJoule
		}
	}
}

// ErrModelTooLarge is returned when an artifact exceeds device storage.
var ErrModelTooLarge = fmt.Errorf("device: model exceeds flash capacity")

// ErrOutOfMemory is returned when the working set exceeds device RAM.
var ErrOutOfMemory = fmt.Errorf("device: working set exceeds RAM")

// ErrBatteryDepleted is returned when an operation needs more energy than
// the battery holds.
var ErrBatteryDepleted = fmt.Errorf("device: battery depleted")

// ErrOffline is returned by transfer operations when the device has no
// connectivity. A transient condition — retry policies treat it as such.
var ErrOffline = fmt.Errorf("device: offline")

// ErrInstallInterrupted is returned when an install crashes mid-flash
// (power loss, watchdog reset). The inactive slot is left half-written and
// recoverable: retrying the same image token resumes from where the flash
// stopped, see InstallResumable.
var ErrInstallInterrupted = fmt.Errorf("device: install interrupted mid-flash")

// CheckFit verifies that a model of modelBytes storage and ramBytes
// working set fits the device.
func (d *Device) CheckFit(modelBytes, ramBytes int64) error {
	if modelBytes > d.Caps.FlashBytes {
		return fmt.Errorf("%w: %d > %d bytes", ErrModelTooLarge, modelBytes, d.Caps.FlashBytes)
	}
	if ramBytes > d.Caps.RAMBytes {
		return fmt.Errorf("%w: %d > %d bytes", ErrOutOfMemory, ramBytes, d.Caps.RAMBytes)
	}
	return nil
}

// RunInference simulates executing one inference of macs multiply-
// accumulates at the given weight bit width. It returns the modeled
// latency, charges the energy to the battery and updates counters.
func (d *Device) RunInference(macs int64, bits int) (time.Duration, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	energy := d.Caps.InferenceEnergy(macs)
	if !d.Caps.WallPowered() && d.battery < energy {
		return 0, fmt.Errorf("%w on %s", ErrBatteryDepleted, d.ID)
	}
	lat := d.Caps.InferenceLatency(macs, bits)
	if !d.Caps.WallPowered() {
		d.battery -= energy
	}
	d.counters.Inferences++
	d.counters.MACs += macs
	d.counters.BusyTime += lat
	d.counters.EnergyJoule += energy
	return lat, nil
}

// DenyQuery records a query rejected by policy (metering exhaustion).
func (d *Device) DenyQuery() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.counters.DeniedQueries++
}

// linkBandwidthLocked returns the current downlink/uplink bandwidth in
// bytes/second, honoring the wall-powered → WiFi override, or an error
// when the device is offline. Caller holds d.mu.
func (d *Device) linkBandwidthLocked() (float64, error) {
	st := d.net
	if d.Caps.WallPowered() {
		st = WiFi
	}
	bw := st.Bandwidth()
	if bw == 0 {
		return 0, fmt.Errorf("%w: %s", ErrOffline, d.ID)
	}
	return bw, nil
}

// Download simulates receiving size bytes over the current link, returning
// the transfer time. Offline devices return an error.
func (d *Device) Download(size int64) (time.Duration, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	bw, err := d.linkBandwidthLocked()
	if err != nil {
		return 0, err
	}
	d.counters.RxBytes += size
	return time.Duration(float64(size) / bw * float64(time.Second)), nil
}

// Flash write cost model shared by every profile: internal NOR flash
// programs at roughly 256 KiB/s and costs about 2 µJ per byte — both
// dwarfed by radio costs for full images but decisive for delta patches,
// which rewrite only the touched weights.
const (
	flashWriteBytesPerSec    = 256 << 10
	flashWriteEnergyPerByteJ = 2e-6
)

// Install simulates one OTA model installation: downloadBytes arrive over
// the current link (a full image or a delta patch) and flashBytes are
// reprogrammed into model storage. It returns the combined transfer+flash
// time, charges the flash-write energy to the battery, and updates the
// RxBytes/FlashedBytes counters. Like Download, it does not model receive
// radio energy (the cost model charges the transmit side only, see
// EnergyPerTxByteJoule). Offline devices return an error. Equivalent to
// InstallResumable with an empty token: an interrupted attempt leaves no
// recoverable staging state.
func (d *Device) Install(downloadBytes, flashBytes int64) (time.Duration, error) {
	return d.InstallResumable("", downloadBytes, flashBytes)
}

// InstallResumable is Install with crash recovery: the transfer streams
// radio bytes straight into the inactive flash slot, so progress is a
// single fraction of (download, flash) and staged bytes survive a
// mid-flash crash. When a prior attempt at the same token (same image,
// same sizes) was interrupted, only the remaining bytes are downloaded and
// programmed — the retry provably does not start over. A different token
// discards the stale half-written slot first. On an injected interruption
// (see SetInstallInterrupter) the call charges exactly the portion done,
// records the staging state under a non-empty token, and returns an error
// wrapping ErrInstallInterrupted.
func (d *Device) InstallResumable(token string, downloadBytes, flashBytes int64) (time.Duration, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	bw, err := d.linkBandwidthLocked()
	if err != nil {
		return 0, err
	}
	var doneDl, doneFl int64
	if token != "" && d.staging != nil && d.staging.token == token &&
		d.staging.downloadTotal == downloadBytes && d.staging.flashTotal == flashBytes {
		doneDl, doneFl = d.staging.downloadDone, d.staging.flashDone
	} else {
		// Any install that is not resuming the recorded image writes over
		// the inactive slot, so the staged progress — tokened or not — is
		// no longer trustworthy and must be discarded.
		d.staging = nil
	}
	remDl, remFl := downloadBytes-doneDl, flashBytes-doneFl

	// A battery that cannot pay for the remaining flash fails before any
	// byte moves — and before the crash injector is consulted, so fault
	// accounting never counts a "mid-flash crash" on an attempt that
	// actually died of battery death with nothing written.
	if !d.Caps.WallPowered() && d.battery < float64(remFl)*flashWriteEnergyPerByteJ {
		return 0, fmt.Errorf("%w on %s", ErrBatteryDepleted, d.ID)
	}

	frac, crashed := 1.0, false
	if d.interrupt != nil {
		if f := d.interrupt(token, remFl); f > 0 && f < 1 {
			frac, crashed = f, true
		}
	}
	dlNow := int64(float64(remDl) * frac)
	flNow := int64(float64(remFl) * frac)

	flashEnergy := float64(flNow) * flashWriteEnergyPerByteJ
	if !d.Caps.WallPowered() {
		d.battery -= flashEnergy
	}
	d.counters.RxBytes += dlNow
	d.counters.FlashedBytes += flNow
	d.counters.EnergyJoule += flashEnergy
	dl := time.Duration(float64(dlNow) / bw * float64(time.Second))
	fl := time.Duration(float64(flNow) / flashWriteBytesPerSec * float64(time.Second))
	if crashed {
		if token != "" {
			d.staging = &staging{
				token:         token,
				downloadDone:  doneDl + dlNow,
				flashDone:     doneFl + flNow,
				downloadTotal: downloadBytes,
				flashTotal:    flashBytes,
			}
		}
		return dl + fl, fmt.Errorf("%w: %s %q at %d/%d bytes",
			ErrInstallInterrupted, d.ID, token, doneFl+flNow, flashBytes)
	}
	d.staging = nil // the staged image is complete and becomes installable
	return dl + fl, nil
}

// InstallChunk advances the resumable install named by token by up to span
// download bytes, flashing the proportional share of flashTotal — the
// swarm-transfer primitive. The staging slot is shared with
// InstallResumable: a half-written slot for the same (token, totals) is
// resumed from its exact byte, anything else is discarded first, and the
// slot persists between chunks (a healthy partial, not a crash) until the
// final chunk completes the image. The crash injector is consulted once
// per call with the chunk's flash share, so a swarm transfer interrupted
// mid-chunk records exactly the bytes it moved and a retry resumes from
// there — each byte is downloaded and flashed exactly once, from whichever
// source finishes it. Returns the download bytes actually written (the
// caller charges the serving side for precisely that many).
func (d *Device) InstallChunk(token string, span, downloadTotal, flashTotal int64) (written int64, dur time.Duration, err error) {
	if token == "" {
		return 0, 0, fmt.Errorf("device: install chunk needs a token")
	}
	if downloadTotal <= 0 || flashTotal < 0 || span < 0 {
		return 0, 0, fmt.Errorf("device: install chunk sizes out of range (span %d of %d/%d)", span, downloadTotal, flashTotal)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	bw, err := d.linkBandwidthLocked()
	if err != nil {
		return 0, 0, err
	}
	var doneDl, doneFl int64
	if d.staging != nil && d.staging.token == token &&
		d.staging.downloadTotal == downloadTotal && d.staging.flashTotal == flashTotal {
		doneDl, doneFl = d.staging.downloadDone, d.staging.flashDone
	} else {
		d.staging = nil // a different image invalidates the staged slot
	}
	if doneDl+span > downloadTotal {
		span = downloadTotal - doneDl
	}
	// The chunk's flash share is the integer-proportional slice of
	// flashTotal its download span covers; the final chunk lands exactly on
	// flashTotal, so no rounding drift accumulates across chunks.
	flEnd := flashTotal * (doneDl + span) / downloadTotal
	remFl := flEnd - doneFl

	// Battery check before the crash draw, same as InstallResumable: an
	// attempt that dies of battery death wrote nothing and must not be
	// miscounted as a mid-flash crash.
	if !d.Caps.WallPowered() && d.battery < float64(remFl)*flashWriteEnergyPerByteJ {
		return 0, 0, fmt.Errorf("%w on %s", ErrBatteryDepleted, d.ID)
	}

	frac, crashed := 1.0, false
	if d.interrupt != nil {
		if f := d.interrupt(token, remFl); f > 0 && f < 1 {
			frac, crashed = f, true
		}
	}
	dlNow := int64(float64(span) * frac)
	flNow := int64(float64(remFl) * frac)

	flashEnergy := float64(flNow) * flashWriteEnergyPerByteJ
	if !d.Caps.WallPowered() {
		d.battery -= flashEnergy
	}
	d.counters.RxBytes += dlNow
	d.counters.FlashedBytes += flNow
	d.counters.EnergyJoule += flashEnergy
	dur = time.Duration(float64(dlNow)/bw*float64(time.Second)) +
		time.Duration(float64(flNow)/flashWriteBytesPerSec*float64(time.Second))
	if doneDl+dlNow >= downloadTotal && !crashed {
		d.staging = nil // final chunk: the staged image is complete
		return dlNow, dur, nil
	}
	d.staging = &staging{
		token:         token,
		downloadDone:  doneDl + dlNow,
		flashDone:     doneFl + flNow,
		downloadTotal: downloadTotal,
		flashTotal:    flashTotal,
	}
	if crashed {
		return dlNow, dur, fmt.Errorf("%w: %s %q at %d/%d bytes",
			ErrInstallInterrupted, d.ID, token, doneFl+flNow, flashTotal)
	}
	return dlNow, dur, nil
}

// StagingDownload reports the half-written slot's download progress — the
// byte a resumed chunked transfer must continue from. ok is false when no
// install is in flight.
func (d *Device) StagingDownload() (token string, downloaded, downloadTotal, flashTotal int64, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.staging == nil {
		return "", 0, 0, 0, false
	}
	return d.staging.token, d.staging.downloadDone, d.staging.downloadTotal, d.staging.flashTotal, true
}

// Serve simulates seeding size bytes to a swarm neighbor over the current
// link: it charges transmit radio energy to the counters and returns the
// transfer time. Unlike Upload it does not drain the battery — swarm
// seeding is charger-gated in the simulated firmware (a device only
// volunteers bytes it can afford), and battery draw from concurrently
// serving neighbors would make fleet state depend on scheduling order,
// which the worker-count determinism invariant forbids. Offline devices
// return an error.
func (d *Device) Serve(size int64) (time.Duration, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	bw, err := d.linkBandwidthLocked()
	if err != nil {
		return 0, err
	}
	energy := float64(size) * d.Caps.EnergyPerTxByteJoule
	d.counters.TxBytes += size
	d.counters.EnergyJoule += energy
	return time.Duration(float64(size) / bw * float64(time.Second)), nil
}

// Upload simulates sending size bytes over the current link, charging
// radio energy and returning the transfer time.
func (d *Device) Upload(size int64) (time.Duration, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	bw, err := d.linkBandwidthLocked()
	if err != nil {
		return 0, err
	}
	energy := float64(size) * d.Caps.EnergyPerTxByteJoule
	if !d.Caps.WallPowered() {
		if d.battery < energy {
			return 0, fmt.Errorf("%w on %s", ErrBatteryDepleted, d.ID)
		}
		d.battery -= energy
	}
	d.counters.TxBytes += size
	d.counters.EnergyJoule += energy
	return time.Duration(float64(size) / bw * float64(time.Second)), nil
}
