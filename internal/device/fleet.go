package device

import (
	"fmt"
	"sort"
	"sync"
)

// Fleet is a collection of simulated devices addressed by ID.
type Fleet struct {
	mu      sync.RWMutex
	devices map[string]*Device
	order   []string
}

// NewFleet returns an empty fleet.
func NewFleet() *Fleet {
	return &Fleet{devices: make(map[string]*Device)}
}

// Add registers a device; it returns an error on duplicate IDs.
func (f *Fleet) Add(d *Device) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, exists := f.devices[d.ID]; exists {
		return fmt.Errorf("device: duplicate device id %q", d.ID)
	}
	f.devices[d.ID] = d
	f.order = append(f.order, d.ID)
	return nil
}

// Get returns the device with the given ID.
func (f *Fleet) Get(id string) (*Device, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	d, ok := f.devices[id]
	return d, ok
}

// Size returns the number of devices.
func (f *Fleet) Size() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.devices)
}

// Devices returns the devices in insertion order.
func (f *Fleet) Devices() []*Device {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]*Device, 0, len(f.order))
	for _, id := range f.order {
		out = append(out, f.devices[id])
	}
	return out
}

// Tick advances every device's behavioral state by one step.
func (f *Fleet) Tick() {
	for _, d := range f.Devices() {
		d.Tick()
	}
}

// Eligible returns devices that currently satisfy the federated-client
// gate of §III-D: on a charger and on WiFi (so training neither drains the
// battery nor burns metered bandwidth).
func (f *Fleet) Eligible() []*Device {
	var out []*Device
	for _, d := range f.Devices() {
		if d.Charging() && d.Net() == WiFi {
			out = append(out, d)
		}
	}
	return out
}

// ByClass groups device IDs by hardware class, each group sorted by ID.
func (f *Fleet) ByClass() map[Class][]string {
	out := make(map[Class][]string)
	for _, d := range f.Devices() {
		out[d.Caps.Class] = append(out[d.Caps.Class], d.ID)
	}
	for c := range out {
		sort.Strings(out[c])
	}
	return out
}

// FleetSpec configures NewStandardFleet.
type FleetSpec struct {
	// CountPerProfile is the number of devices per standard profile.
	CountPerProfile int
	// Seed derives each device's behavioral RNG.
	Seed uint64
}

// NewStandardFleet builds a heterogeneous fleet with CountPerProfile
// devices of each standard profile, deterministically from the seed.
func NewStandardFleet(spec FleetSpec) (*Fleet, error) {
	if spec.CountPerProfile < 1 {
		spec.CountPerProfile = 1
	}
	f := NewFleet()
	root := newSeeder(spec.Seed)
	for _, p := range StandardProfiles() {
		for i := 0; i < spec.CountPerProfile; i++ {
			id := fmt.Sprintf("%s-%02d", p.Name, i)
			d := NewDevice(id, p, root.next())
			if err := f.Add(d); err != nil {
				return nil, err
			}
		}
	}
	return f, nil
}
