package device

import (
	"fmt"
	"sort"
	"sync"
)

// fleetShards is the number of ID-hash shards a Fleet spreads its index
// over. Lookups during a parallel round (one Get per device work item)
// then contend on 1/fleetShards of the lock traffic a single map would see.
const fleetShards = 32

// fleetShard is one RWMutex-guarded slice of the ID index.
type fleetShard struct {
	mu      sync.RWMutex
	devices map[string]*Device
}

// Fleet is a collection of simulated devices addressed by ID. The ID index
// is sharded so concurrent lookups from a fleet-round worker pool scale;
// insertion order is kept separately for deterministic iteration. All
// methods are safe for concurrent use.
type Fleet struct {
	shards [fleetShards]fleetShard

	ordMu sync.RWMutex
	order []*Device
}

// NewFleet returns an empty fleet.
func NewFleet() *Fleet {
	f := &Fleet{}
	for i := range f.shards {
		f.shards[i].devices = make(map[string]*Device)
	}
	return f
}

// shardFor hashes an ID (FNV-1a) onto its shard.
func (f *Fleet) shardFor(id string) *fleetShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return &f.shards[h%fleetShards]
}

// Add registers a device; it returns an error on duplicate IDs.
func (f *Fleet) Add(d *Device) error {
	s := f.shardFor(d.ID)
	s.mu.Lock()
	if _, exists := s.devices[d.ID]; exists {
		s.mu.Unlock()
		return fmt.Errorf("device: duplicate device id %q", d.ID)
	}
	s.devices[d.ID] = d
	s.mu.Unlock()

	f.ordMu.Lock()
	f.order = append(f.order, d)
	f.ordMu.Unlock()
	return nil
}

// Get returns the device with the given ID.
func (f *Fleet) Get(id string) (*Device, bool) {
	s := f.shardFor(id)
	s.mu.RLock()
	d, ok := s.devices[id]
	s.mu.RUnlock()
	return d, ok
}

// Size returns the number of devices.
func (f *Fleet) Size() int {
	f.ordMu.RLock()
	defer f.ordMu.RUnlock()
	return len(f.order)
}

// Devices returns the devices in insertion order.
func (f *Fleet) Devices() []*Device {
	f.ordMu.RLock()
	defer f.ordMu.RUnlock()
	return append([]*Device(nil), f.order...)
}

// Tick advances every device's behavioral state by one step, serially.
// engine.FleetRunner.Tick is the parallel equivalent.
func (f *Fleet) Tick() {
	for _, d := range f.Devices() {
		d.Tick()
	}
}

// Eligible returns devices that currently satisfy the federated-client
// gate of §III-D: on a charger and on WiFi (so training neither drains the
// battery nor burns metered bandwidth).
func (f *Fleet) Eligible() []*Device {
	var out []*Device
	for _, d := range f.Devices() {
		if d.Charging() && d.Net() == WiFi {
			out = append(out, d)
		}
	}
	return out
}

// ByClass groups device IDs by hardware class, each group sorted by ID.
func (f *Fleet) ByClass() map[Class][]string {
	out := make(map[Class][]string)
	for _, d := range f.Devices() {
		out[d.Caps.Class] = append(out[d.Caps.Class], d.ID)
	}
	for c := range out {
		sort.Strings(out[c])
	}
	return out
}

// FleetSpec configures NewStandardFleet.
type FleetSpec struct {
	// CountPerProfile is the number of devices per standard profile.
	CountPerProfile int
	// Seed derives each device's behavioral RNG.
	Seed uint64
}

// NewStandardFleet builds a heterogeneous fleet with CountPerProfile
// devices of each standard profile, deterministically from the seed.
func NewStandardFleet(spec FleetSpec) (*Fleet, error) {
	if spec.CountPerProfile < 1 {
		spec.CountPerProfile = 1
	}
	f := NewFleet()
	root := newSeeder(spec.Seed)
	for _, p := range StandardProfiles() {
		for i := 0; i < spec.CountPerProfile; i++ {
			id := fmt.Sprintf("%s-%02d", p.Name, i)
			d := NewDevice(id, p, root.next())
			if err := f.Add(d); err != nil {
				return nil, err
			}
		}
	}
	return f, nil
}
