package benchsuite

import (
	"fmt"
	"sync"
	"testing"

	"tinymlops/internal/benchfmt"
	"tinymlops/internal/compat"
	"tinymlops/internal/core"
	"tinymlops/internal/dataset"
	"tinymlops/internal/device"
	"tinymlops/internal/enclave"
	"tinymlops/internal/engine"
	"tinymlops/internal/fed"
	"tinymlops/internal/market"
	"tinymlops/internal/nn"
	"tinymlops/internal/offload"
	"tinymlops/internal/procvm"
	"tinymlops/internal/quant"
	"tinymlops/internal/registry"
	"tinymlops/internal/rollout"
	"tinymlops/internal/tensor"
	"tinymlops/internal/verify"
)

// Case is one named benchmark the trajectory tracks.
type Case struct {
	Name  string
	Bench func(b *testing.B)
}

// runRounds is how many times Run repeats each case. Cases run
// round-robin and keep their fastest round: on a shared box, scheduler
// and frequency noise only ever slow a run down, so the per-case minimum
// is the low-variance estimator — one-shot sequential timing can drift
// 2× between cases and would make both the committed baselines and the
// CI regression gate flap. Interleaving the rounds also spreads any
// transient load across all cases instead of sinking one.
const runRounds = 3

// Run executes the cases via testing.Benchmark under tensor.EnterPool and
// returns one benchfmt entry per case (its best of runRounds interleaved
// rounds by ns/op).
func Run(cases []Case) []benchfmt.Entry {
	exit := tensor.EnterPool()
	defer exit()
	entries := make([]benchfmt.Entry, len(cases))
	for round := 0; round < runRounds; round++ {
		for i, c := range cases {
			e := benchfmt.FromBenchmarkResult(c.Name, testing.Benchmark(c.Bench))
			if round == 0 || e.NsPerOp < entries[i].NsPerOp {
				entries[i] = e
			}
		}
	}
	return entries
}

// Report runs the cases and wraps the results as an area report.
func Report(area string, cases []Case) *benchfmt.Report {
	return benchfmt.NewReport(area, Run(cases))
}

// servingFixture mirrors the root BenchmarkInferBatch* fixture: same
// topology, same seed, same batch, so the committed trajectory and the
// ad-hoc `go test -bench` numbers describe the same workload.
func servingFixture() (*nn.Network, *tensor.Tensor) {
	rng := tensor.NewRNG(32)
	net := nn.NewNetwork([]int{64},
		nn.NewDense(64, 128, rng), nn.NewReLU(), nn.NewDense(128, 10, rng))
	return net, tensor.Randn(rng, 1, 16, 64)
}

// settleK/settleN mirror the root settlement benchmarks' proved-layer
// shape: one quantized input row against a k×n weight matrix.
const settleK, settleN = 256, 64

func settleOperands(rng *tensor.RNG) (a, wq []int32) {
	a = make([]int32, settleK)
	wq = make([]int32, settleK*settleN)
	for i := range a {
		a[i] = int32(rng.Intn(255) - 127)
	}
	for i := range wq {
		wq[i] = int32(rng.Intn(255) - 127)
	}
	return a, wq
}

// Serving returns the serving-area suite: the three precision variants of
// the batched inference hot loop plus the settlement prove/verify path.
func Serving() []Case {
	quantCase := func(scheme quant.Scheme) func(b *testing.B) {
		return func(b *testing.B) {
			net, in := servingFixture()
			qm, err := quant.NewQModel(net, scheme)
			if err != nil {
				b.Fatal(err)
			}
			scratch := quant.NewQScratch()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				qm.ForwardBatch(in, scratch)
			}
		}
	}
	return []Case{
		{Name: "InferBatchFloat32", Bench: func(b *testing.B) {
			net, in := servingFixture()
			scratch := nn.NewScratch()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.ForwardBatch(in, scratch)
			}
		}},
		{Name: "InferBatchInt8", Bench: quantCase(quant.Int8)},
		{Name: "InferBatchInt4", Bench: quantCase(quant.Int4)},
		{Name: "ProveMatMul", Bench: func(b *testing.B) {
			a, wq := settleOperands(tensor.NewRNG(50))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := verify.ProveMatMul(a, 1, settleK, wq, settleN); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{Name: "VerifyMatMul", Bench: func(b *testing.B) {
			a, wq := settleOperands(tensor.NewRNG(51))
			c, proof, _, err := verify.ProveMatMul(a, 1, settleK, wq, settleN)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ok, _, verr := verify.VerifyMatMul(a, 1, settleK, wq, settleN, c, proof)
				if verr != nil || !ok {
					b.Fatalf("verify failed: %v %v", ok, verr)
				}
			}
		}},
		{Name: "BatchVerifySettlement16", Bench: func(b *testing.B) {
			const window = 16
			rng := tensor.NewRNG(52)
			_, wq := settleOperands(rng)
			bv := verify.NewBatchVerifier(engine.Default())
			if err := bv.Prepare("bench-class", wq, settleK, settleN); err != nil {
				b.Fatal(err)
			}
			items := make([]verify.BatchItem, window)
			for i := range items {
				a := make([]int32, settleK)
				for j := range a {
					a[j] = int32(rng.Intn(255) - 127)
				}
				c, proof, _, err := verify.ProveMatMul(a, 1, settleK, wq, settleN)
				if err != nil {
					b.Fatal(err)
				}
				items[i] = verify.BatchItem{ClassID: "bench-class", A: a, M: 1, C: c, Proof: proof}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, _, err := bv.VerifyBatch(items)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					if !r.OK {
						b.Fatalf("batch rejected an honest proof: %v", r.Err)
					}
				}
			}
		}},
	}
}

// offloadModel mirrors the offload package's benchmark model.
func offloadModel(rng *tensor.RNG) *nn.Network {
	return nn.NewNetwork([]int{32},
		nn.NewDense(32, 128, rng), nn.NewReLU(),
		nn.NewDense(128, 128, rng), nn.NewReLU(),
		nn.NewDense(128, 64, rng), nn.NewTanh(),
		nn.NewDense(64, 8, rng))
}

func offloadSession(b *testing.B, cut int, cloud *offload.CloudTier, model *nn.Network, id string) *offload.Session {
	caps, _ := device.ProfileByName("phone")
	dev := device.NewDevice(id, caps, tensor.NewRNG(1))
	dev.SetNet(device.WiFi)
	plan := market.SplitPlan{Cut: cut}
	s, err := offload.NewSession(offload.SessionConfig{
		Tenant: id, VersionID: "bench", Device: dev, Model: model.Clone(),
		Cloud: cloud, Plan: &plan, Replan: offload.ReplanConfig{Disabled: true},
	})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func offloadInput() []float32 {
	rng := tensor.NewRNG(4)
	x := make([]float32, 32)
	for i := range x {
		x[i] = rng.NormFloat32()
	}
	return x
}

// Offload returns the offload-area suite: monolithic on-device execution,
// a batch-1 split round trip, and 16 concurrent sessions coalescing
// through one cloud tier.
func Offload() []Case {
	return []Case{
		{Name: "OffloadMonolithic", Bench: func(b *testing.B) {
			model := offloadModel(tensor.NewRNG(2))
			cloud := offload.NewCloud(offload.CloudConfig{})
			if err := cloud.Register("bench", model, 32); err != nil {
				b.Fatal(err)
			}
			cloud.Start()
			defer cloud.Close()
			s := offloadSession(b, len(model.Layers()), cloud, model, "mono")
			x := offloadInput()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Exec(x); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{Name: "OffloadSplit", Bench: func(b *testing.B) {
			model := offloadModel(tensor.NewRNG(2))
			cloud := offload.NewCloud(offload.CloudConfig{})
			if err := cloud.Register("bench", model, 32); err != nil {
				b.Fatal(err)
			}
			cloud.Start()
			defer cloud.Close()
			s := offloadSession(b, 2, cloud, model, "split")
			x := offloadInput()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Exec(x); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{Name: "OffloadBatchedCloud16", Bench: func(b *testing.B) {
			model := offloadModel(tensor.NewRNG(2))
			cloud := offload.NewCloud(offload.CloudConfig{MaxBatch: 32, QueueCap: 1024, Dispatchers: 2})
			if err := cloud.Register("bench", model, 32); err != nil {
				b.Fatal(err)
			}
			cloud.Start()
			defer cloud.Close()
			const sessions = 16
			ss := make([]*offload.Session, sessions)
			for i := range ss {
				ss[i] = offloadSession(b, 2, cloud, model, fmt.Sprintf("batch-%02d", i))
			}
			x := offloadInput()
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N/sessions + 1
			for i := 0; i < sessions; i++ {
				wg.Add(1)
				go func(s *offload.Session) {
					defer wg.Done()
					for q := 0; q < per; q++ {
						if _, err := s.Exec(x); err != nil {
							b.Error(err)
							return
						}
					}
				}(ss[i])
			}
			wg.Wait()
		}},
	}
}

// fedClients/fedAggregators shape the fed suite's fleet: 1600 clients in
// 100 cohorts gives the hierarchical round a 16× cloud fan-in over flat.
// The root bench_test.go benchmarks mirror this fixture exactly.
const fedClients, fedAggregators = 1600, 100

// FedFixture builds the fed-area fleet: fedClients two-example shards cut
// from one blob pool, a small linear global, and a test split. Shared by
// the committed trajectory and the root `go test -bench` benchmarks.
func FedFixture() (*nn.Network, []*fed.Client, *dataset.Dataset) {
	rng := tensor.NewRNG(90)
	pool, test := dataset.Blobs(rng, 3600, 4, 3, 4).Split(0.9, rng)
	clients := make([]*fed.Client, fedClients)
	for i := range clients {
		lo := (2 * i) % (pool.Len() - 2)
		clients[i] = &fed.Client{
			ID:   fmt.Sprintf("bench-%05d", i),
			Data: pool.Subset([]int{lo, lo + 1}),
		}
	}
	global := nn.NewNetwork([]int{4}, nn.NewDense(4, 3, rng))
	return global, clients, test
}

// FedRound runs one benchmarked round and reports the cloud-tier uplink as
// a tracked metric. hier selects the two-tier masked topology; flat is the
// single-tier reference whose cloud uplink is the whole fleet's traffic.
func FedRound(b *testing.B, hier bool) {
	cfg := fed.Config{
		Rounds: 1, LocalEpochs: 1, LocalBatch: 4, LR: 0.1, Seed: 92,
		Engine: engine.Default(),
	}
	var cloudUplink int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		global, clients, test := FedFixture()
		b.StartTimer()
		var s fed.RoundStats
		var err error
		if hier {
			hc, herr := fed.NewHierCoordinator(global, clients, test.X, test.Y, fed.HierConfig{
				Config: cfg, Aggregators: fedAggregators, SecureAgg: true,
			})
			if herr != nil {
				b.Fatal(herr)
			}
			s, err = hc.RunRound()
		} else {
			co, cerr := fed.NewCoordinator(global, clients, test.X, test.Y, cfg)
			if cerr != nil {
				b.Fatal(cerr)
			}
			s, err = co.RunRound()
		}
		if err != nil {
			b.Fatal(err)
		}
		cloudUplink += s.CloudUplinkBytes
	}
	b.ReportMetric(float64(cloudUplink)/float64(b.N), "cloud-uplink-B/op")
}

// Fed returns the fed-area suite: one flat reference round and one
// hierarchical masked round over the same 1600-client fleet. The tracked
// cloud-uplink-B/op metric is the tentpole's headline — the hierarchical
// round's cloud tier hears 100 compact partials instead of 1600 updates.
func Fed() []Case {
	return []Case{
		{Name: "FlatRound", Bench: func(b *testing.B) { FedRound(b, false) }},
		{Name: "HierRound100Aggregators", Bench: func(b *testing.B) { FedRound(b, true) }},
	}
}

// swarmCanary is the fixed canary head-count for the swarm suite: every
// fleet size seeds the same 16 devices from the registry, so the
// registry-egress-B/device metric falls as the fleet grows — the swarm's
// headline economics.
const swarmCanary = 16

// swarmWaves is the fixed-canary progression: 16 devices regardless of
// fleet size, then half the fleet, then everyone.
func swarmWaves(n int) []rollout.Wave {
	return []rollout.Wave{
		{Name: "canary", Fraction: float64(swarmCanary) / float64(n)},
		{Name: "cohort", Fraction: 0.5},
		{Name: "fleet", Fraction: 1.0},
	}
}

// swarmFleetSize is the actual device count for a requested n (the
// standard fleet rounds up to a multiple of its six profiles).
func swarmFleetSize(n int) int {
	return ((n + 5) / 6) * 6
}

// SwarmFixture builds the swarm-area fleet: n devices (rounded up to the
// six standard profiles) running a published v1 with a head-only
// fine-tuned v2 ready to roll out. Shared by the committed trajectory and
// the root `go test -bench` benchmarks.
func SwarmFixture(b *testing.B, n int) (*core.Platform, *registry.ModelVersion, *dataset.Dataset) {
	b.Helper()
	fleet, err := device.NewStandardFleet(device.FleetSpec{CountPerProfile: (n + 5) / 6, Seed: 70})
	if err != nil {
		b.Fatal(err)
	}
	devs := fleet.Devices()
	for _, d := range devs {
		d.SetBehavior(1, 1, 0)
	}
	fleet.Tick()
	p, err := core.New(fleet, core.Config{
		VendorKey: []byte("bench-swarm-key-0123456789abcdef"), Seed: 70, MinCohort: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := tensor.NewRNG(71)
	ds := dataset.Blobs(rng, 240, 4, 3, 5)
	net := nn.NewNetwork([]int{4}, nn.NewDense(4, 8, rng), nn.NewReLU(), nn.NewDense(8, 3, rng))
	if _, err := nn.Train(net, ds.X, ds.Y, nn.TrainConfig{
		Epochs: 4, BatchSize: 32, Optimizer: nn.NewSGD(0.1), RNG: rng,
	}); err != nil {
		b.Fatal(err)
	}
	// Base-only publish: the suite measures distribution, not variant
	// derivation.
	if _, err := p.Publish("swarm-bench", net, ds, registry.OptimizationSpec{}); err != nil {
		b.Fatal(err)
	}
	ids := make([]string, len(devs))
	for i, d := range devs {
		ids[i] = d.ID
	}
	if _, err := p.DeployMany(ids, "swarm-bench", core.DeployConfig{
		PrepaidQueries: 1 << 20, Calibration: ds,
	}); err != nil {
		b.Fatal(err)
	}
	v2net := net.Clone()
	head := v2net.Layers()[2].(*nn.Dense)
	for i := range head.W.Value.Data {
		head.W.Value.Data[i] += 0.01 * float32(i%5+1)
	}
	v2s, err := p.Publish("swarm-bench", v2net, ds, registry.OptimizationSpec{})
	if err != nil {
		b.Fatal(err)
	}
	return p, v2s[0], ds
}

// SwarmRollout runs one benchmarked fleet-wide OTA rollout and reports the
// registry's egress per device as a tracked metric. viaSwarm switches the
// transport: registry-direct ships every byte from the vendor; swarm mode
// seeds the fixed 16-device canary from the registry and lets later waves
// fetch hash-verified chunks from already-updated peers, so the metric
// falls as n grows instead of staying flat.
func SwarmRollout(b *testing.B, n int, viaSwarm bool) {
	fleetSize := swarmFleetSize(n)
	var registryEgress, peerBytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p, v2, ds := SwarmFixture(b, n)
		cfg := core.RolloutConfig{
			Waves: swarmWaves(fleetSize), Seed: 72, Calibration: ds,
			Gate: rollout.Gate{
				MaxDriftFraction: 1, MaxErrorRate: 0.99,
				MaxLatencyIncrease: 99, MaxUpdateFailures: fleetSize,
			},
		}
		if viaSwarm {
			sw, err := p.NewSwarm(core.SwarmOptions{ChunkBytes: 256, Seed: 73})
			if err != nil {
				b.Fatal(err)
			}
			cfg.Swarm = sw
		}
		b.StartTimer()
		res, err := p.Rollout(v2, cfg)
		b.StopTimer()
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatal("rollout did not complete")
		}
		if viaSwarm {
			registryEgress += res.TotalRegistryBytes
			peerBytes += res.TotalPeerBytes
		} else {
			registryEgress += res.TotalShipBytes
		}
		b.StartTimer()
	}
	perDevice := func(total int64) float64 {
		return float64(total) / float64(b.N) / float64(fleetSize)
	}
	b.ReportMetric(perDevice(registryEgress), "registry-egress-B/device")
	if viaSwarm {
		b.ReportMetric(perDevice(peerBytes), "peer-B/device")
	}
}

// Swarm returns the swarm-area suite: a registry-direct 1k rollout as the
// reference, and swarm rollouts at 1k and 10k devices. The tracked
// registry-egress-B/device metric is the tentpole's headline — with a
// fixed 16-device canary, the vendor's per-device cost drops roughly 10×
// as the fleet grows 1k → 10k, while registry-direct pays full freight on
// every device.
func Swarm() []Case {
	return []Case{
		{Name: "RolloutRegistryDirect1k", Bench: func(b *testing.B) { SwarmRollout(b, 1000, false) }},
		{Name: "RolloutSwarm1k", Bench: func(b *testing.B) { SwarmRollout(b, 1000, true) }},
		{Name: "RolloutSwarm10k", Bench: func(b *testing.B) { SwarmRollout(b, 10_000, true) }},
	}
}

// Protect returns the protected-execution suite: the enclave-hosted split
// suffix against the plain split it shadows (the price of trusted
// offload), and the compiled procvm module against the native forward it
// lowered from (the interpretation tax of portability). The root
// bench_test.go benchmarks in offload and compat mirror these fixtures.
func Protect() []Case {
	return []Case{
		{Name: "OffloadEnclaveSuffix", Bench: func(b *testing.B) {
			model := offloadModel(tensor.NewRNG(2))
			enc, err := enclave.New("bench-enclave", []byte("bench-manufacturer-root-key-00001"), 1.2)
			if err != nil {
				b.Fatal(err)
			}
			esess := enclave.NewSession(enc)
			blob, err := model.MarshalBinary()
			if err != nil {
				b.Fatal(err)
			}
			sealed, err := enc.Seal(blob)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := esess.LoadSealedNetwork("bench-art", sealed); err != nil {
				b.Fatal(err)
			}
			cloud := offload.NewCloud(offload.CloudConfig{})
			if err := cloud.RegisterProtected("bench", esess, "bench-art", 32); err != nil {
				b.Fatal(err)
			}
			cloud.Start()
			defer cloud.Close()
			s := offloadSession(b, 2, cloud, model, "enclave")
			x := offloadInput()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Exec(x); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{Name: "ProcVMForward", Bench: func(b *testing.B) {
			net := offloadModel(tensor.NewRNG(2))
			m, err := compat.CompileProcVM(net, compat.CompileOptions{Name: "bench"})
			if err != nil {
				b.Fatal(err)
			}
			rt := procvm.NewRuntime(m.Caps)
			rt.MaxGas = m.GasLimit
			x := tensor.Randn(tensor.NewRNG(4), 1, 1, 32)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rt.Run(m, x.Data); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{Name: "ProcVMNativeForward", Bench: func(b *testing.B) {
			net := offloadModel(tensor.NewRNG(2))
			x := tensor.Randn(tensor.NewRNG(4), 1, 1, 32)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.ForwardBatch(x, nil)
			}
		}},
	}
}

// Areas maps area names to their suites — the registry `tinymlops bench`
// iterates.
func Areas() map[string][]Case {
	return map[string][]Case{
		"serving": Serving(),
		"offload": Offload(),
		"fed":     Fed(),
		"swarm":   Swarm(),
		"protect": Protect(),
	}
}
