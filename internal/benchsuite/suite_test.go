package benchsuite

import (
	"testing"

	"tinymlops/internal/tensor"
)

func TestFixtureHelpersProduceWorkloads(t *testing.T) {
	net, x := servingFixture()
	if net == nil || x == nil {
		t.Fatal("serving fixture incomplete")
	}
	if got := net.Forward(tensor.New(1, 64), false); got == nil || got.Size() == 0 {
		t.Fatal("serving fixture network does not serve")
	}
	rng := tensor.NewRNG(9)
	a, wq := settleOperands(rng)
	if len(a) != settleK || len(wq) != settleK*settleN {
		t.Fatal("settlement operands misshapen")
	}
	in := offloadInput()
	om := offloadModel(rng)
	if out := om.Forward(tensor.FromSlice(in, 1, len(in)), false); out == nil || out.Size() == 0 {
		t.Fatal("offload fixture network does not serve")
	}
	onet, clients, ds := FedFixture()
	if onet == nil || len(clients) == 0 || ds == nil {
		t.Fatal("fed fixture incomplete")
	}
}

func TestRunKeepsBestRoundAndReportWraps(t *testing.T) {
	cases := []Case{
		{Name: "Trivial", Bench: func(b *testing.B) {
			s := 0
			for i := 0; i < b.N; i++ {
				s += i
			}
			_ = s
		}},
	}
	entries := Run(cases)
	if len(entries) != 1 || entries[0].Name != "Trivial" {
		t.Fatalf("entries = %+v", entries)
	}
	if entries[0].NsPerOp < 0 {
		t.Fatalf("negative ns/op: %+v", entries[0])
	}
	rep := Report("smoke", cases)
	if rep.Area != "smoke" || len(rep.Entries) != 1 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestAreasCoverEveryBenchArea(t *testing.T) {
	areas := Areas()
	for _, want := range []string{"serving", "offload", "fed", "swarm"} {
		cs, ok := areas[want]
		if !ok || len(cs) == 0 {
			t.Fatalf("area %q missing or empty", want)
		}
		for _, c := range cs {
			if c.Name == "" || c.Bench == nil {
				t.Fatalf("area %q has an unnamed or nil case: %+v", want, c)
			}
		}
	}
}

func TestSwarmWaveGeometry(t *testing.T) {
	for _, n := range []int{996, 1002, 9996} {
		ws := swarmWaves(n)
		if len(ws) != 3 {
			t.Fatalf("waves(%d) = %+v", n, ws)
		}
		// Fractions are cumulative: the fixed canary first, then half,
		// then everyone.
		canary := int(float64(n)*ws[0].Fraction + 0.5)
		if canary != swarmCanary {
			t.Fatalf("canary at n=%d sizes to %d devices", n, canary)
		}
		if ws[1].Fraction != 0.5 || ws[2].Fraction != 1.0 {
			t.Fatalf("waves(%d) = %+v", n, ws)
		}
	}
	for _, tc := range []struct{ n, want int }{
		{1, 6}, {6, 6}, {7, 12}, {1000, 1002}, {10000, 10002},
	} {
		if got := swarmFleetSize(tc.n); got != tc.want {
			t.Fatalf("swarmFleetSize(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}
