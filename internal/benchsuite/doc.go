// Package benchsuite is the programmatic form of the performance-critical
// benchmarks: the serving hot path (float32/int8/packed-int4 batched
// inference plus settlement proving and verification) and the offload
// plane (monolithic, split, and batched-cloud query round trips).
//
// The `go test -bench` benchmarks measure; this package remembers. Each
// Case wraps the same fixture as its -bench twin so `tinymlops bench` can
// run the suite via testing.Benchmark outside a test binary, convert the
// results with benchfmt, and commit them as BENCH_<area>.json snapshots
// that CI diffs on every push. Cases run inside tensor.EnterPool, pinning
// the kernels to their serial in-worker form — the numbers measure the
// kernels, not the host's core count.
package benchsuite
