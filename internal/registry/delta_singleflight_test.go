package registry

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"tinymlops/internal/nn"
	"tinymlops/internal/tensor"
)

// deltaFixture registers two same-topology versions and returns their IDs.
func deltaFixture(t *testing.T) (*Registry, string, string) {
	t.Helper()
	r := New()
	base := newTestNet(41)
	v1, err := r.RegisterModel("sf", base, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	next := base.Clone()
	head := next.Layers()[2].(*nn.Dense)
	for i := range head.W.Value.Data {
		head.W.Value.Data[i] += 0.01
	}
	v2, err := r.RegisterModel("sf", next, 0.91)
	if err != nil {
		t.Fatal(err)
	}
	return r, v1.ID, v2.ID
}

// TestDeltaSingleFlightUnderContention: N goroutines racing for the same
// delta must compute it exactly once and all observe identical bytes.
// Run with -race; the waiters' channel handoff is the code under test.
func TestDeltaSingleFlightUnderContention(t *testing.T) {
	r, from, to := deltaFixture(t)
	const goroutines = 64
	results := make([][]byte, goroutines)
	errs := make([]error, goroutines)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer done.Done()
			start.Wait() // maximize the stampede
			results[g], errs[g] = r.Delta(from, to)
		}(g)
	}
	start.Done()
	done.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if !bytes.Equal(results[g], results[0]) {
			t.Fatalf("goroutine %d saw different delta bytes", g)
		}
	}
	if n := r.DeltaComputes(); n != 1 {
		t.Fatalf("computed %d times under contention, want exactly 1", n)
	}
	// A later request is a pure cache hit.
	if _, err := r.Delta(from, to); err != nil {
		t.Fatal(err)
	}
	if n := r.DeltaComputes(); n != 1 {
		t.Fatalf("cache hit recomputed: %d", n)
	}
	// The reverse direction is its own cache entry.
	if _, err := r.Delta(to, from); err != nil {
		t.Fatal(err)
	}
	if n := r.DeltaComputes(); n != 2 {
		t.Fatalf("reverse pair computes = %d, want 2", n)
	}
}

// TestDeltaSingleFlightManyPairs races distinct pairs concurrently: each
// pair computes once, and failures (unknown versions) are cached too.
func TestDeltaSingleFlightManyPairs(t *testing.T) {
	r := New()
	const versions = 6
	ids := make([]string, versions)
	base := newTestNet(42)
	for i := 0; i < versions; i++ {
		net := base.Clone()
		head := net.Layers()[2].(*nn.Dense)
		rng := tensor.NewRNG(uint64(100 + i))
		for j := range head.W.Value.Data {
			head.W.Value.Data[j] += 0.01 * rng.Float32()
		}
		v, err := r.RegisterModel("mp", net, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = v.ID
	}
	type pair struct{ from, to string }
	var pairs []pair
	for i := 0; i < versions; i++ {
		for j := 0; j < versions; j++ {
			if i != j {
				pairs = append(pairs, pair{ids[i], ids[j]})
			}
		}
	}
	var wg sync.WaitGroup
	for rep := 0; rep < 8; rep++ {
		for _, pr := range pairs {
			wg.Add(1)
			go func(pr pair) {
				defer wg.Done()
				if _, err := r.Delta(pr.from, pr.to); err != nil {
					panic(fmt.Sprintf("delta %s->%s: %v", pr.from, pr.to, err))
				}
			}(pr)
		}
	}
	wg.Wait()
	if n := r.DeltaComputes(); n != int64(len(pairs)) {
		t.Fatalf("computed %d deltas for %d distinct pairs", n, len(pairs))
	}
	// Deterministic failures are cached like successes.
	if _, err := r.Delta(ids[0], "no-such-version"); err == nil {
		t.Fatal("unknown version produced a delta")
	}
	before := r.DeltaComputes()
	if _, err := r.Delta(ids[0], "no-such-version"); err == nil {
		t.Fatal("unknown version produced a delta on retry")
	}
	if r.DeltaComputes() != before {
		t.Fatal("failed delta recomputed instead of served from cache")
	}
}
