// Package registry implements the model-version management of §III-A: a
// content-addressed store of model artifacts, a lineage DAG from base
// models to their derived variants (quantized, pruned, watermarked), an
// optimization pipeline that regenerates every variant automatically when
// a base model is retrained, attachment of portable pre/post-processing
// modules (procvm) to model versions, and weight-delta computation between
// same-topology versions so OTA updates ship patches instead of full
// artifacts.
//
// The paper's observation is that edge deployment multiplies the number of
// artifacts a registry must track — one cloud model becomes a matrix of
// (bit width × sparsity × target) variants whose relationships must be
// recorded so retraining can trigger regeneration. The lineage DAG and
// Pipeline type are that record; Delta is the transfer-efficient bridge
// from one generation of the matrix to the next.
package registry
