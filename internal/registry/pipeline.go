package registry

import (
	"fmt"

	"tinymlops/internal/nn"
	"tinymlops/internal/quant"
)

// OptimizationSpec configures the automatic variant-generation pipeline:
// for every scheme (and optionally every prune level) a derived version is
// registered under the base model. Evaluate scores each candidate so the
// registry records deployable accuracy alongside size and MACs.
type OptimizationSpec struct {
	// Schemes to derive (Float32 entries are skipped; the base is already
	// the float artifact).
	Schemes []quant.Scheme
	// PruneFractions to apply before quantization (0 entries mean dense).
	// The cross product Schemes × PruneFractions is generated.
	PruneFractions []float64
	// Evaluate returns validation accuracy of a candidate network.
	Evaluate func(*nn.Network) float64
}

// DefaultOptimizationSpec derives int8/int4/ternary/binary dense variants.
func DefaultOptimizationSpec(eval func(*nn.Network) float64) OptimizationSpec {
	return OptimizationSpec{
		Schemes:        []quant.Scheme{quant.Int8, quant.Int4, quant.Ternary, quant.Binary},
		PruneFractions: []float64{0},
		Evaluate:       eval,
	}
}

// RegisterWithVariants registers net as a new base version of name and
// immediately runs the optimization pipeline, registering one variant per
// (scheme, prune) combination. This is the §III-A requirement that
// retraining the base automatically re-derives every deployment variant.
// It returns the base version followed by the variants in generation order.
func (r *Registry) RegisterWithVariants(name string, net *nn.Network, baseAccuracy float64, spec OptimizationSpec) ([]*ModelVersion, error) {
	if spec.Evaluate == nil {
		return nil, fmt.Errorf("registry: OptimizationSpec.Evaluate is required")
	}
	base, err := r.RegisterModel(name, net, baseAccuracy)
	if err != nil {
		return nil, err
	}
	out := []*ModelVersion{base}
	prunes := spec.PruneFractions
	if len(prunes) == 0 {
		prunes = []float64{0}
	}
	for _, frac := range prunes {
		for _, scheme := range spec.Schemes {
			if scheme == quant.Float32 && frac == 0 {
				continue // identical to the base artifact
			}
			candidate := net.Clone()
			if frac > 0 {
				if _, err := quant.MagnitudePrune(candidate, frac); err != nil {
					return nil, fmt.Errorf("registry: prune %v: %w", frac, err)
				}
			}
			if scheme != quant.Float32 {
				candidate, err = quant.FakeQuantizeNetwork(candidate, scheme)
				if err != nil {
					return nil, fmt.Errorf("registry: quantize %v: %w", scheme, err)
				}
			}
			acc := spec.Evaluate(candidate)
			v, err := r.RegisterVariant(base.ID, candidate, scheme, frac, acc)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
	}
	return out, nil
}
