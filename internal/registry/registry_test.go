package registry

import (
	"strings"
	"sync"
	"testing"

	"tinymlops/internal/dataset"
	"tinymlops/internal/nn"
	"tinymlops/internal/procvm"
	"tinymlops/internal/quant"
	"tinymlops/internal/tensor"
)

func newTestNet(seed uint64) *nn.Network {
	rng := tensor.NewRNG(seed)
	return nn.NewNetwork([]int{4}, nn.NewDense(4, 8, rng), nn.NewReLU(), nn.NewDense(8, 3, rng))
}

func TestRegisterAndLoadRoundTrip(t *testing.T) {
	r := New()
	net := newTestNet(1)
	v, err := r.RegisterModel("demo", net, 0.93)
	if err != nil {
		t.Fatal(err)
	}
	if v.Name != "demo" || v.ParentID != "" || v.Scheme != quant.Float32 {
		t.Fatalf("version = %+v", v)
	}
	if v.Metrics.Accuracy != 0.93 || v.Metrics.MACs == 0 || v.Metrics.SizeBytes == 0 {
		t.Fatalf("metrics = %+v", v.Metrics)
	}
	loaded, err := r.Load(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(tensor.NewRNG(2), 1, 3, 4)
	if !tensor.ApproxEqual(net.Predict(x), loaded.Predict(x), 1e-6) {
		t.Fatal("loaded model predicts differently")
	}
}

func TestContentAddressingDeduplicates(t *testing.T) {
	r := New()
	net := newTestNet(1)
	v1, _ := r.RegisterModel("demo", net, 0.9)
	v2, _ := r.RegisterModel("demo", net, 0.9)
	if v1.ID != v2.ID {
		t.Fatal("identical artifacts got different IDs")
	}
	if r.Stats().Models != 1 {
		t.Fatalf("registry holds %d models, want 1", r.Stats().Models)
	}
}

func TestVariantLineage(t *testing.T) {
	r := New()
	base := newTestNet(3)
	bv, _ := r.RegisterModel("kw", base, 0.95)
	q8, _ := quant.FakeQuantizeNetwork(base, quant.Int8)
	v8, err := r.RegisterVariant(bv.ID, q8, quant.Int8, 0, 0.94)
	if err != nil {
		t.Fatal(err)
	}
	q1, _ := quant.FakeQuantizeNetwork(base, quant.Binary)
	v1, _ := r.RegisterVariant(bv.ID, q1, quant.Binary, 0, 0.80)

	kids := r.Variants(bv.ID)
	if len(kids) != 2 || kids[0].ID != v8.ID || kids[1].ID != v1.ID {
		t.Fatalf("variants = %v", kids)
	}
	lin, err := r.Lineage(v8.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(lin) != 2 || lin[0].ID != v8.ID || lin[1].ID != bv.ID {
		t.Fatalf("lineage = %v", lin)
	}
	// int8 variant must be smaller than the base.
	if v8.Metrics.SizeBytes >= bv.Metrics.SizeBytes {
		t.Fatalf("int8 size %d not smaller than base %d", v8.Metrics.SizeBytes, bv.Metrics.SizeBytes)
	}
	if v1.Metrics.SizeBytes >= v8.Metrics.SizeBytes {
		t.Fatalf("binary size %d not smaller than int8 %d", v1.Metrics.SizeBytes, v8.Metrics.SizeBytes)
	}
}

func TestRegisterVariantUnknownParent(t *testing.T) {
	r := New()
	if _, err := r.RegisterVariant("nope", newTestNet(4), quant.Int8, 0, 0.5); err == nil {
		t.Fatal("accepted unknown parent")
	}
}

func TestLatestSkipsVariants(t *testing.T) {
	r := New()
	n1 := newTestNet(5)
	v1, _ := r.RegisterModel("m", n1, 0.9)
	q, _ := quant.FakeQuantizeNetwork(n1, quant.Int8)
	r.RegisterVariant(v1.ID, q, quant.Int8, 0, 0.88) //nolint:errcheck
	n2 := newTestNet(6)
	v2, _ := r.RegisterModel("m", n2, 0.92)
	latest, err := r.Latest("m")
	if err != nil {
		t.Fatal(err)
	}
	if latest.ID != v2.ID {
		t.Fatalf("Latest = %s, want %s", latest.ID, v2.ID)
	}
	if _, err := r.Latest("missing"); err == nil {
		t.Fatal("Latest of unknown line should error")
	}
}

func TestRegisterWithVariantsGeneratesMatrix(t *testing.T) {
	rng := tensor.NewRNG(7)
	ds := dataset.Blobs(rng, 400, 4, 3, 5)
	net := nn.NewNetwork([]int{4}, nn.NewDense(4, 16, rng), nn.NewReLU(), nn.NewDense(16, 3, rng))
	if _, err := nn.Train(net, ds.X, ds.Y, nn.TrainConfig{
		Epochs: 8, BatchSize: 32, Optimizer: nn.NewSGD(0.1).WithMomentum(0.9), RNG: rng,
	}); err != nil {
		t.Fatal(err)
	}
	r := New()
	eval := func(n *nn.Network) float64 { return nn.Evaluate(n, ds.X, ds.Y) }
	spec := OptimizationSpec{
		Schemes:        []quant.Scheme{quant.Int8, quant.Binary},
		PruneFractions: []float64{0, 0.5},
		Evaluate:       eval,
	}
	versions, err := r.RegisterWithVariants("blob-clf", net, eval(net), spec)
	if err != nil {
		t.Fatal(err)
	}
	// base + 2 schemes × 2 prune levels = 5
	if len(versions) != 5 {
		t.Fatalf("got %d versions, want 5", len(versions))
	}
	base := versions[0]
	if len(r.Variants(base.ID)) != 4 {
		t.Fatalf("base has %d variants", len(r.Variants(base.ID)))
	}
	// Every variant carries an accuracy measurement and the int8 dense
	// variant should be close to the base.
	for _, v := range versions[1:] {
		if v.Metrics.Accuracy <= 0 {
			t.Fatalf("variant %s has no accuracy", v.ID)
		}
		if v.ParentID != base.ID {
			t.Fatalf("variant %s has parent %s", v.ID, v.ParentID)
		}
	}
	if versions[1].Scheme != quant.Int8 || versions[1].Metrics.Accuracy < versions[0].Metrics.Accuracy-0.05 {
		t.Fatalf("int8 dense variant degraded too much: %+v", versions[1].Metrics)
	}
}

func TestRegisterWithVariantsRequiresEvaluate(t *testing.T) {
	r := New()
	if _, err := r.RegisterWithVariants("x", newTestNet(8), 0.9, OptimizationSpec{
		Schemes: []quant.Scheme{quant.Int8},
	}); err == nil {
		t.Fatal("missing Evaluate accepted")
	}
}

func TestModulesAndPipelines(t *testing.T) {
	r := New()
	net := newTestNet(9)
	v, _ := r.RegisterModel("m", net, 0.9)
	pre, err := procvm.NewBuilder("pre").Input().Clamp(-3, 3).Build()
	if err != nil {
		t.Fatal(err)
	}
	post, err := procvm.NewBuilder("post").Input().Softmax().ArgMax().Build()
	if err != nil {
		t.Fatal(err)
	}
	preID := r.RegisterModule(pre)
	postID := r.RegisterModule(post)
	if _, err := r.GetModule(preID); err != nil {
		t.Fatal(err)
	}
	if err := r.AttachPipeline(v.ID, preID, postID); err != nil {
		t.Fatal(err)
	}
	p, ok := r.GetPipeline(v.ID)
	if !ok || p.PreDigest != preID || p.PostDigest != postID {
		t.Fatalf("pipeline = %+v", p)
	}
	if err := r.AttachPipeline("bogus", preID, postID); err == nil {
		t.Fatal("attached pipeline to unknown model")
	}
	if err := r.AttachPipeline(v.ID, "bogusmodule", ""); err == nil {
		t.Fatal("attached unknown module")
	}
}

func TestTags(t *testing.T) {
	r := New()
	v, _ := r.RegisterModel("m", newTestNet(10), 0.9)
	if err := r.SetTag(v.ID, "watermark-owner", "customer-42"); err != nil {
		t.Fatal(err)
	}
	got, _ := r.Get(v.ID)
	if got.Tags["watermark-owner"] != "customer-42" {
		t.Fatalf("tags = %v", got.Tags)
	}
	if err := r.SetTag("nope", "k", "v"); err == nil {
		t.Fatal("tagged unknown version")
	}
}

func TestGetAndLoadUnknown(t *testing.T) {
	r := New()
	if _, err := r.Get("missing"); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Fatalf("Get error = %v", err)
	}
	if _, err := r.Load("missing"); err == nil {
		t.Fatal("Load of unknown version succeeded")
	}
	if _, err := r.Bytes("missing"); err == nil {
		t.Fatal("Bytes of unknown version succeeded")
	}
}

func TestStats(t *testing.T) {
	r := New()
	v, _ := r.RegisterModel("a", newTestNet(11), 0.9)
	q, _ := quant.FakeQuantizeNetwork(newTestNet(11), quant.Int8)
	r.RegisterVariant(v.ID, q, quant.Int8, 0, 0.85) //nolint:errcheck
	s := r.Stats()
	if s.Models != 2 || s.Bases != 1 || s.Variants != 1 || s.BlobBytes == 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestConcurrentRegistration(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			net := newTestNet(seed)
			if _, err := r.RegisterModel("parallel", net, 0.5); err != nil {
				t.Errorf("register: %v", err)
			}
		}(uint64(i))
	}
	wg.Wait()
	if got := len(r.Versions("parallel")); got != 16 {
		t.Fatalf("registered %d versions, want 16", got)
	}
}

// buildTestModule assembles a small procvm module without going through
// the compiler, so registry tests stay below the compat layer.
func buildTestModule(t *testing.T, name string) *procvm.Module {
	t.Helper()
	m, err := procvm.NewBuilder(name).
		Input().MatVec([]float32{1, 0, 0, 1, 1, -1, 0, 2}, []float32{0.5, -0.5}).ReLU().Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestRegisterCompiledLineageAndRoundTrip pins the compiled artifact kind:
// the module registers as a digest-addressed procvm variant of its float
// parent, carries the parent's cost metrics, round-trips bit-exactly
// through LoadCompiled, and deduplicates on content.
func TestRegisterCompiledLineageAndRoundTrip(t *testing.T) {
	r := New()
	parent, err := r.RegisterModel("demo", newTestNet(1), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	mod := buildTestModule(t, "demo")
	v, err := r.RegisterCompiled(parent.ID, mod, 0.89)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != KindProcVM || v.ParentID != parent.ID || v.Name != parent.Name {
		t.Fatalf("compiled version = %+v", v)
	}
	if v.Metrics.MACs != parent.Metrics.MACs || v.Metrics.Accuracy != 0.89 {
		t.Fatalf("compiled metrics = %+v", v.Metrics)
	}
	got, err := r.LoadCompiled(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest() != mod.Digest() {
		t.Fatal("compiled module did not round-trip")
	}
	// Content addressing: the same module registers to the same version.
	again, err := r.RegisterCompiled(parent.ID, mod, 0.89)
	if err != nil || again.ID != v.ID {
		t.Fatalf("re-register: %v, id %q vs %q", err, again.ID, v.ID)
	}
	// The variant shows up in the parent's lineage.
	kids := r.Variants(parent.ID)
	found := false
	for _, k := range kids {
		found = found || k.ID == v.ID
	}
	if !found {
		t.Fatal("compiled variant missing from parent lineage")
	}
}

// TestRegisterCompiledAndLoadCompiledRejects pins the kind guards: no
// compiling off an unknown or non-network parent, no loading a float
// artifact as a module, and integrity failure on tampered blobs.
func TestRegisterCompiledAndLoadCompiledRejects(t *testing.T) {
	r := New()
	parent, err := r.RegisterModel("demo", newTestNet(1), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	mod := buildTestModule(t, "demo")
	if _, err := r.RegisterCompiled("nope", mod, 0.5); err == nil {
		t.Fatal("registered under an unknown parent")
	}
	v, err := r.RegisterCompiled(parent.ID, mod, 0.89)
	if err != nil {
		t.Fatal(err)
	}
	// A compiled version cannot parent another compiled version.
	if _, err := r.RegisterCompiled(v.ID, mod, 0.5); err == nil {
		t.Fatal("compiled-on-compiled lineage accepted")
	}
	// The float parent is not loadable as a module.
	if _, err := r.LoadCompiled(parent.ID); err == nil {
		t.Fatal("float artifact loaded as a compiled module")
	}
	if _, err := r.LoadCompiled("missing"); err == nil {
		t.Fatal("unknown ID loaded")
	}
}

// TestEvictKeepsMetadataDropsBytes pins vendor-side blob pruning: the
// version survives, the bytes do not.
func TestEvictKeepsMetadataDropsBytes(t *testing.T) {
	r := New()
	v, err := r.RegisterModel("demo", newTestNet(1), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Evict("missing"); err == nil {
		t.Fatal("evicted an unknown version")
	}
	if err := r.Evict(v.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Bytes(v.ID); err == nil {
		t.Fatal("evicted bytes still served")
	}
	if _, err := r.Get(v.ID); err != nil {
		t.Fatalf("metadata lost on evict: %v", err)
	}
	if _, err := r.Load(v.ID); err == nil {
		t.Fatal("evicted artifact still loads")
	}
}

// TestDefaultOptimizationSpec exercises the canned variant pipeline spec.
func TestDefaultOptimizationSpec(t *testing.T) {
	ds := dataset.Blobs(tensor.NewRNG(3), 60, 4, 3, 4)
	eval := func(n *nn.Network) float64 { return nn.Evaluate(n, ds.X, ds.Y) }
	spec := DefaultOptimizationSpec(eval)
	if spec.Evaluate == nil {
		t.Fatal("spec has no evaluator")
	}
	if acc := spec.Evaluate(newTestNet(1)); acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v out of range", acc)
	}
}
