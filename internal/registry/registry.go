package registry

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"tinymlops/internal/nn"
	"tinymlops/internal/procvm"
	"tinymlops/internal/quant"
)

// Metrics summarizes a model version for deployment decisions.
type Metrics struct {
	// Accuracy on the registry's validation set, in [0,1].
	Accuracy float64
	// SizeBytes is the deployment footprint at the variant's precision
	// (quantized variants are stored as float32 artifacts for exactness
	// but ship at their packed size; this field is what transfer and
	// flash accounting use).
	SizeBytes int
	// MACs per inference.
	MACs int64
	// PeakActivationBytes approximates the working-set memory of one
	// inference: the largest adjacent input+output activation pair across
	// layers, at 4 bytes per float.
	PeakActivationBytes int64
}

// Artifact kinds a ModelVersion can carry. The zero value (KindNetwork)
// is a serialized nn.Network; KindProcVM is a compiled procvm module in
// its canonical PVM1 encoding — the portable obfuscated deployment format.
const (
	KindNetwork = ""
	KindProcVM  = "procvm"
)

// ModelVersion is one node of the lineage DAG.
type ModelVersion struct {
	// ID is the hex-truncated content digest of the artifact.
	ID string
	// Kind discriminates the artifact encoding: KindNetwork (default) or
	// KindProcVM. Selection policies must opt in to non-network kinds.
	Kind string
	// Name is the logical model line ("wakeword", "defect-detector").
	Name string
	// Seq is the registration sequence number within the registry
	// (a logical clock; the registry is deterministic and offline).
	Seq uint64
	// ParentID is empty for base models, otherwise the version this one
	// was derived from.
	ParentID string
	// Scheme is the weight precision of this variant.
	Scheme quant.Scheme
	// PruneFraction is the magnitude-pruning level applied (0 for dense).
	PruneFraction float64
	// OpKinds lists the operator types the model uses (for target
	// compatibility checks).
	OpKinds []string
	// Metrics summarizes quality and cost.
	Metrics Metrics
	// Tags carries free-form metadata (e.g. the watermark owner a variant
	// was fingerprinted for).
	Tags map[string]string
	// Digest is the full SHA-256 of the artifact bytes.
	Digest [32]byte
}

// Pipeline binds optional pre/post-processing modules to a model version.
type Pipeline struct {
	ModelID    string
	PreDigest  string // hex digest of the procvm module, "" if none
	PostDigest string
}

// Registry is an in-memory, concurrency-safe model and module store.
type Registry struct {
	mu        sync.RWMutex
	seq       uint64
	blobs     map[string][]byte        // model artifacts by version ID
	models    map[string]*ModelVersion // version ID -> metadata
	byName    map[string][]string      // logical name -> version IDs in order
	children  map[string][]string      // parent ID -> child IDs
	modules   map[string]*procvm.Module
	pipelines map[string]Pipeline // model ID -> pipeline

	// Weight-delta cache with single-flight computation: a rollout wave
	// asks for the same (from, to) pair from every worker at once, and the
	// encoding is O(params), so exactly one goroutine computes it while
	// the rest wait. Results (including deterministic failures like a
	// topology mismatch) are cached forever; artifacts are immutable.
	deltaMu   sync.Mutex
	deltas    map[string]deltaEntry // "from->to" -> result
	deltaWait map[string]chan struct{}
	// deltaComputes counts actual encodings (not cache hits) — the
	// observable the single-flight tests pin down.
	deltaComputes atomic.Int64
}

// deltaEntry is one cached Delta result.
type deltaEntry struct {
	data []byte
	err  error
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		blobs:     make(map[string][]byte),
		models:    make(map[string]*ModelVersion),
		byName:    make(map[string][]string),
		children:  make(map[string][]string),
		modules:   make(map[string]*procvm.Module),
		pipelines: make(map[string]Pipeline),
		deltas:    make(map[string]deltaEntry),
		deltaWait: make(map[string]chan struct{}),
	}
}

// idFromDigest truncates a SHA-256 to the 16-hex-char version ID.
func idFromDigest(d [32]byte) string { return hex.EncodeToString(d[:8]) }

// RegisterModel stores net as a new base version of the named model line.
func (r *Registry) RegisterModel(name string, net *nn.Network, accuracy float64) (*ModelVersion, error) {
	return r.register(name, "", net, quant.Float32, 0, accuracy)
}

// RegisterVariant stores net as a variant derived from parentID.
func (r *Registry) RegisterVariant(parentID string, net *nn.Network, scheme quant.Scheme, pruneFraction float64, accuracy float64) (*ModelVersion, error) {
	r.mu.RLock()
	_, ok := r.models[parentID]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("registry: unknown parent version %q", parentID)
	}
	parent := r.mustGet(parentID)
	return r.register(parent.Name, parentID, net, scheme, pruneFraction, accuracy)
}

func (r *Registry) mustGet(id string) *ModelVersion {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.models[id]
}

func (r *Registry) register(name, parentID string, net *nn.Network, scheme quant.Scheme, prune float64, accuracy float64) (*ModelVersion, error) {
	if name == "" {
		return nil, fmt.Errorf("registry: model name must not be empty")
	}
	data, err := net.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("registry: serialize: %w", err)
	}
	summary, err := net.Summary()
	if err != nil {
		return nil, fmt.Errorf("registry: cost model: %w", err)
	}
	var macs int64
	prevFloats := int64(1)
	for _, d := range net.InputShape {
		prevFloats *= int64(d)
	}
	var peakActBytes int64
	for _, lc := range summary {
		macs += lc.Info.MACs
		if pair := 4 * (prevFloats + lc.Info.ActivationFloats); pair > peakActBytes {
			peakActBytes = pair
		}
		prevFloats = lc.Info.ActivationFloats
	}
	digest := sha256.Sum256(data)
	id := idFromDigest(digest)

	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.models[id]; ok {
		// Content-addressed: identical bytes are the same version.
		return existing, nil
	}
	r.seq++
	v := &ModelVersion{
		ID: id, Name: name, Seq: r.seq, ParentID: parentID,
		Scheme: scheme, PruneFraction: prune,
		OpKinds: net.OpKinds(),
		Metrics: Metrics{
			Accuracy:            accuracy,
			SizeBytes:           quant.NetworkSizeBytes(net, scheme),
			MACs:                macs,
			PeakActivationBytes: peakActBytes,
		},
		Tags:   make(map[string]string),
		Digest: digest,
	}
	r.blobs[id] = data
	r.models[id] = v
	r.byName[name] = append(r.byName[name], id)
	if parentID != "" {
		r.children[parentID] = append(r.children[parentID], id)
	}
	return v, nil
}

// Get returns the metadata of a version.
func (r *Registry) Get(id string) (*ModelVersion, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.models[id]
	if !ok {
		return nil, fmt.Errorf("registry: unknown version %q", id)
	}
	return v, nil
}

// ErrArtifactMissing reports that a version's artifact bytes are not in
// the store — the version is unknown, or its blob was evicted while the
// metadata survives. Callers that can recover (a delta encoder falling
// back to a full transfer) classify on this instead of failing silently.
var ErrArtifactMissing = fmt.Errorf("registry: artifact missing")

// Load deserializes the network stored under a version ID, verifying the
// artifact digest first (integrity check on the registry's own storage).
// Compiled-module versions reject: their bytes are not a network, and a
// caller expecting one must follow ParentID to the float artifact instead.
func (r *Registry) Load(id string) (*nn.Network, error) {
	r.mu.RLock()
	data, ok := r.blobs[id]
	v := r.models[id]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: version %q", ErrArtifactMissing, id)
	}
	if v.Kind == KindProcVM {
		return nil, fmt.Errorf("registry: version %q is a compiled module, not a network", id)
	}
	if sha256.Sum256(data) != v.Digest {
		return nil, fmt.Errorf("registry: artifact %q failed integrity check", id)
	}
	return nn.UnmarshalNetwork(data)
}

// LoadCompiled decodes the procvm module stored under a compiled version
// ID, verifying the artifact digest first.
func (r *Registry) LoadCompiled(id string) (*procvm.Module, error) {
	r.mu.RLock()
	data, ok := r.blobs[id]
	v := r.models[id]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: version %q", ErrArtifactMissing, id)
	}
	if v.Kind != KindProcVM {
		return nil, fmt.Errorf("registry: version %q is not a compiled module", id)
	}
	if sha256.Sum256(data) != v.Digest {
		return nil, fmt.Errorf("registry: artifact %q failed integrity check", id)
	}
	return procvm.DecodeModule(data)
}

// RegisterCompiled stores a compiled procvm module as a first-class
// variant of the float version it was lowered from: the canonical PVM1
// encoding is the digest-pinned artifact, cost metrics carry over from the
// parent (the module executes the same arithmetic), and the variant is
// selectable only by policies that opt in to registry.KindProcVM.
func (r *Registry) RegisterCompiled(parentID string, m *procvm.Module, accuracy float64) (*ModelVersion, error) {
	parent := r.mustGet(parentID)
	if parent == nil {
		return nil, fmt.Errorf("registry: unknown parent version %q", parentID)
	}
	if parent.Kind != KindNetwork {
		return nil, fmt.Errorf("registry: compiled parent %q must be a network artifact", parentID)
	}
	data := m.Encode()
	digest := sha256.Sum256(data)
	id := idFromDigest(digest)

	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.models[id]; ok {
		return existing, nil
	}
	r.seq++
	v := &ModelVersion{
		ID: id, Kind: KindProcVM, Name: parent.Name, Seq: r.seq, ParentID: parentID,
		Scheme: quant.Float32,
		Metrics: Metrics{
			Accuracy:            accuracy,
			SizeBytes:           len(data),
			MACs:                parent.Metrics.MACs,
			PeakActivationBytes: parent.Metrics.PeakActivationBytes,
		},
		Tags:   make(map[string]string),
		Digest: digest,
	}
	r.blobs[id] = data
	r.models[id] = v
	r.byName[v.Name] = append(r.byName[v.Name], id)
	r.children[parentID] = append(r.children[parentID], id)
	return v, nil
}

// Bytes returns the raw artifact (for transfer-size accounting and
// encryption). The returned slice must not be modified.
func (r *Registry) Bytes(id string) ([]byte, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	data, ok := r.blobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: version %q", ErrArtifactMissing, id)
	}
	return data, nil
}

// Evict drops a version's stored artifact bytes while keeping its
// metadata — vendor-side blob pruning of superseded images. Devices still
// running the version keep working (audits compare against the retained
// digest), but transfers that need the bytes — full ships of it, deltas
// *from* it — fail with ErrArtifactMissing from then on. Already-cached
// deltas survive: they are derived artifacts in their own right.
func (r *Registry) Evict(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.models[id]; !ok {
		return fmt.Errorf("registry: unknown version %q", id)
	}
	delete(r.blobs, id)
	return nil
}

// Delta returns the encoded weight delta that upgrades fromID's artifact
// to toID's, computing and caching it on first use (single-flight: a
// fleet-wide fan-out asking for the same pair computes it once). It fails
// when the two versions do not share a topology — the caller falls back
// to a full transfer. The returned slice must not be modified.
func (r *Registry) Delta(fromID, toID string) ([]byte, error) {
	key := fromID + "->" + toID
	for {
		r.deltaMu.Lock()
		if e, ok := r.deltas[key]; ok {
			r.deltaMu.Unlock()
			return e.data, e.err
		}
		if ch, ok := r.deltaWait[key]; ok {
			r.deltaMu.Unlock()
			<-ch // another goroutine is computing this pair
			continue
		}
		ch := make(chan struct{})
		r.deltaWait[key] = ch
		r.deltaMu.Unlock()

		e := r.computeDelta(key, fromID, toID)
		r.deltaMu.Lock()
		r.deltas[key] = e
		delete(r.deltaWait, key)
		r.deltaMu.Unlock()
		close(ch)
		return e.data, e.err
	}
}

// DeltaComputes returns how many deltas were actually encoded (cache
// misses). Under single-flight, N concurrent requests for the same pair
// add exactly 1.
func (r *Registry) DeltaComputes() int64 { return r.deltaComputes.Load() }

func (r *Registry) computeDelta(key, fromID, toID string) deltaEntry {
	r.deltaComputes.Add(1)
	from, err := r.Load(fromID)
	if err != nil {
		return deltaEntry{err: err}
	}
	to, err := r.Load(toID)
	if err != nil {
		return deltaEntry{err: err}
	}
	d, err := nn.EncodeDelta(from, to)
	if err != nil {
		return deltaEntry{err: fmt.Errorf("registry: delta %s: %w", key, err)}
	}
	return deltaEntry{data: d}
}

// Versions returns all versions of a model line in registration order.
func (r *Registry) Versions(name string) []*ModelVersion {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := r.byName[name]
	out := make([]*ModelVersion, 0, len(ids))
	for _, id := range ids {
		out = append(out, r.models[id])
	}
	return out
}

// Latest returns the most recently registered *base* version of the line.
func (r *Registry) Latest(name string) (*ModelVersion, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := r.byName[name]
	for i := len(ids) - 1; i >= 0; i-- {
		v := r.models[ids[i]]
		if v.ParentID == "" {
			return v, nil
		}
	}
	return nil, fmt.Errorf("registry: no base version of %q", name)
}

// Variants returns the direct children of a version, ordered by sequence.
func (r *Registry) Variants(parentID string) []*ModelVersion {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := r.children[parentID]
	out := make([]*ModelVersion, 0, len(ids))
	for _, id := range ids {
		out = append(out, r.models[id])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Lineage walks parent links from id to its base, returning
// [id, parent, ..., base].
func (r *Registry) Lineage(id string) ([]*ModelVersion, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*ModelVersion
	for id != "" {
		v, ok := r.models[id]
		if !ok {
			return nil, fmt.Errorf("registry: broken lineage at %q", id)
		}
		out = append(out, v)
		id = v.ParentID
	}
	return out, nil
}

// SetTag attaches free-form metadata to a version.
func (r *Registry) SetTag(id, key, value string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.models[id]
	if !ok {
		return fmt.Errorf("registry: unknown version %q", id)
	}
	v.Tags[key] = value
	return nil
}

// RegisterModule stores a procvm module by digest and returns its hex ID.
func (r *Registry) RegisterModule(m *procvm.Module) string {
	d := m.Digest()
	id := hex.EncodeToString(d[:8])
	r.mu.Lock()
	defer r.mu.Unlock()
	r.modules[id] = m
	return id
}

// GetModule returns a stored procvm module.
func (r *Registry) GetModule(id string) (*procvm.Module, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.modules[id]
	if !ok {
		return nil, fmt.Errorf("registry: unknown module %q", id)
	}
	return m, nil
}

// AttachPipeline binds pre/post modules (by module ID, "" for none) to a
// model version.
func (r *Registry) AttachPipeline(modelID, preID, postID string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.models[modelID]; !ok {
		return fmt.Errorf("registry: unknown version %q", modelID)
	}
	for _, mid := range []string{preID, postID} {
		if mid != "" {
			if _, ok := r.modules[mid]; !ok {
				return fmt.Errorf("registry: unknown module %q", mid)
			}
		}
	}
	r.pipelines[modelID] = Pipeline{ModelID: modelID, PreDigest: preID, PostDigest: postID}
	return nil
}

// GetPipeline returns the pipeline bound to a model version, if any.
func (r *Registry) GetPipeline(modelID string) (Pipeline, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.pipelines[modelID]
	return p, ok
}

// Stats reports registry contents.
type Stats struct {
	Models    int
	Bases     int
	Variants  int
	Modules   int
	BlobBytes int
}

// Stats returns aggregate counts.
func (r *Registry) Stats() Stats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Stats{Models: len(r.models), Modules: len(r.modules)}
	for _, v := range r.models {
		if v.ParentID == "" {
			s.Bases++
		} else {
			s.Variants++
		}
	}
	for _, b := range r.blobs {
		s.BlobBytes += len(b)
	}
	return s
}
