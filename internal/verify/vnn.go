package verify

import (
	"fmt"

	"tinymlops/internal/nn"
	"tinymlops/internal/quant"
	"tinymlops/internal/tensor"
)

// Verifiable inference for dense networks. The device (prover) runs int8
// inference and attaches, for every dense layer, the integer accumulator
// matrix it claims plus a sum-check proof of the underlying matrix
// product. The verifier — who owns the model and the input, e.g. the
// payment authorizer of §VI — re-derives the quantized operands
// deterministically, checks each proof, and recomputes the cheap O(n)
// nonlinear glue itself. Soundness comes from the sum-check; the verifier
// never performs an O(m·n·k) multiplication.
//
// As in SafetyNets, the saving amortizes over a batch: for a batch of m
// inputs the verifier does O(m·k + k·n + m·n) work per layer versus
// O(m·k·n) for re-execution.

// LayerEvidence is the prover's claim for one dense layer.
type LayerEvidence struct {
	// Claimed is the integer accumulator matrix (batch × out).
	Claimed []int64
	// Proof is the sum-check proof that Claimed = Xq × Wq.
	Proof *Proof
}

// InferenceProof accompanies a batch of inference results.
type InferenceProof struct {
	Layers []LayerEvidence
	// Output is the final float logits the device reports.
	Output *tensor.Tensor
	// ProverStats aggregates prover-side cost.
	ProverStats Stats
}

// SizeBytes returns the total evidence size: claimed accumulators plus
// proofs (the logits are the result itself, not overhead).
func (ip *InferenceProof) SizeBytes() int {
	total := 0
	for _, le := range ip.Layers {
		total += 8 * len(le.Claimed)
		total += le.Proof.SizeBytes()
	}
	return total
}

// QuantizeWeights quantizes a weight matrix to int8 codes (as int32
// operands) with a single symmetric scale. Deterministic, so a prover and
// a verifier holding the same weights derive bit-identical operands —
// settlement relies on this to re-derive a deployment's proved layer from
// the registry artifact alone.
func QuantizeWeights(w *tensor.Tensor) ([]int32, float32) {
	absMax := w.AbsMax()
	scale := absMax / 127
	if scale == 0 {
		scale = 1
	}
	out := make([]int32, w.Size())
	inv := 1 / scale
	for i, v := range w.Data {
		c := v * inv
		if c > 127 {
			c = 127
		} else if c < -127 {
			c = -127
		}
		if c >= 0 {
			out[i] = int32(c + 0.5)
		} else {
			out[i] = int32(c - 0.5)
		}
	}
	return out, scale
}

func toInt32(codes []int8) []int32 {
	out := make([]int32, len(codes))
	for i, c := range codes {
		out[i] = int32(c)
	}
	return out
}

// walkInference runs the shared prover/verifier pass over the network.
// onDense is called with the quantized operands and must return the
// accumulator matrix to continue with (the prover computes it with a
// proof; the verifier checks the claimed one and returns it).
func walkInference(net *nn.Network, x *tensor.Tensor,
	onDense func(layerIdx int, xq []int32, m, k int, wq []int32, n int) ([]int64, error),
) (*tensor.Tensor, error) {
	cur := x
	denseIdx := 0
	for _, l := range net.Layers() {
		d, ok := l.(*nn.Dense)
		if !ok {
			cur = l.Forward(cur, false)
			continue
		}
		codes, sx := quant.QuantizeActivations(cur)
		wq, sw := QuantizeWeights(d.W.Value)
		m := cur.Dim(0)
		acc, err := onDense(denseIdx, toInt32(codes), m, d.In, wq, d.Out)
		if err != nil {
			return nil, err
		}
		out := tensor.New(m, d.Out)
		for i := range acc {
			out.Data[i] = float32(acc[i]) * sx * sw
		}
		out.AddRowVector(d.B.Value)
		cur = out
		denseIdx++
	}
	return cur, nil
}

// ProveInference runs verifiable int8 inference of net on the batch x and
// returns the logits plus the proof bundle.
func ProveInference(net *nn.Network, x *tensor.Tensor) (*InferenceProof, error) {
	ip := &InferenceProof{}
	out, err := walkInference(net, x, func(idx int, xq []int32, m, k int, wq []int32, n int) ([]int64, error) {
		acc, proof, stats, err := ProveMatMul(xq, m, k, wq, n)
		if err != nil {
			return nil, fmt.Errorf("verify: layer %d: %w", idx, err)
		}
		ip.Layers = append(ip.Layers, LayerEvidence{Claimed: acc, Proof: proof})
		ip.ProverStats.ProverMuls += stats.ProverMuls
		ip.ProverStats.DirectMuls += stats.DirectMuls
		ip.ProverStats.ProofBytes += stats.ProofBytes
		return acc, nil
	})
	if err != nil {
		return nil, err
	}
	ip.Output = out
	return ip, nil
}

// VerifyInference checks an inference proof against the verifier's own
// copies of the model and input. It returns false (with nil error) when
// the evidence is inconsistent with an honest execution.
func VerifyInference(net *nn.Network, x *tensor.Tensor, ip *InferenceProof) (bool, Stats, error) {
	var agg Stats
	denseCount := 0
	for _, l := range net.Layers() {
		if _, ok := l.(*nn.Dense); ok {
			denseCount++
		}
	}
	if len(ip.Layers) != denseCount {
		return false, agg, fmt.Errorf("verify: proof covers %d layers, model has %d dense layers", len(ip.Layers), denseCount)
	}
	ok := true
	out, err := walkInference(net, x, func(idx int, xq []int32, m, k int, wq []int32, n int) ([]int64, error) {
		le := ip.Layers[idx]
		if len(le.Claimed) != m*n {
			ok = false
			return nil, fmt.Errorf("verify: layer %d claim size %d, want %d", idx, len(le.Claimed), m*n)
		}
		valid, stats, err := VerifyMatMul(xq, m, k, wq, n, le.Claimed, le.Proof)
		agg.VerifierMuls += stats.VerifierMuls
		agg.DirectMuls += stats.DirectMuls
		agg.ProofBytes += stats.ProofBytes
		if err != nil {
			return nil, err
		}
		if !valid {
			ok = false
			return nil, errEvidence
		}
		return le.Claimed, nil
	})
	if err == errEvidence {
		return false, agg, nil
	}
	if err != nil {
		return ok, agg, err
	}
	// The reported logits must match the verified recomputation exactly
	// (both sides run identical deterministic arithmetic).
	if !tensor.SameShape(out, ip.Output) {
		return false, agg, nil
	}
	for i := range out.Data {
		d := out.Data[i] - ip.Output.Data[i]
		if d < 0 {
			d = -d
		}
		if d > 1e-5 {
			return false, agg, nil
		}
	}
	return ok, agg, nil
}

// errEvidence is an internal sentinel to abort the walk on a bad proof.
var errEvidence = fmt.Errorf("verify: evidence rejected")
