package verify

import (
	"encoding/binary"
	"fmt"
)

// Proof wire format: three uint32 padded dimensions, then three uint64
// field elements per round — exactly SizeBytes() bytes. Attestations
// carry proofs in this form so metering never depends on this package's
// internals.

// MarshalBinary serializes the proof.
func (p *Proof) MarshalBinary() ([]byte, error) {
	if p.M < 1 || p.K < 1 || p.N < 1 {
		return nil, fmt.Errorf("verify: proof dims %dx%dx%d not positive", p.M, p.K, p.N)
	}
	out := make([]byte, p.SizeBytes())
	binary.LittleEndian.PutUint32(out[0:], uint32(p.M))
	binary.LittleEndian.PutUint32(out[4:], uint32(p.K))
	binary.LittleEndian.PutUint32(out[8:], uint32(p.N))
	off := 12
	for _, g := range p.Rounds {
		for _, e := range g {
			binary.LittleEndian.PutUint64(out[off:], uint64(e))
			off += 8
		}
	}
	return out, nil
}

// UnmarshalBinary parses a proof produced by MarshalBinary. Field
// elements are reduced into canonical range, so any byte string yields
// either an error or a structurally valid (not necessarily verifying)
// proof.
func (p *Proof) UnmarshalBinary(data []byte) error {
	if len(data) < 12 {
		return fmt.Errorf("verify: proof blob %d bytes, need at least 12", len(data))
	}
	if (len(data)-12)%24 != 0 {
		return fmt.Errorf("verify: proof blob %d bytes is not 12 + 24×rounds", len(data))
	}
	m := int(binary.LittleEndian.Uint32(data[0:]))
	k := int(binary.LittleEndian.Uint32(data[4:]))
	n := int(binary.LittleEndian.Uint32(data[8:]))
	if m < 1 || k < 1 || n < 1 {
		return fmt.Errorf("verify: proof blob dims %dx%dx%d not positive", m, k, n)
	}
	rounds := (len(data) - 12) / 24
	p.M, p.K, p.N = m, k, n
	p.Rounds = make([]RoundPoly, rounds)
	off := 12
	for i := range p.Rounds {
		for j := 0; j < 3; j++ {
			p.Rounds[i][j] = reduce(binary.LittleEndian.Uint64(data[off:]))
			off += 8
		}
	}
	return nil
}
