package verify

import (
	"fmt"
	"sort"
	"sync"

	"tinymlops/internal/engine"
)

// Amortized settlement verification. A vendor settling a window of
// metered queries sees many proofs against few (model-version, shape)
// classes: every proof of a class shares the same weight matrix B. The
// sound per-class sharing is (a) B's padded field encoding and transcript
// digest — PrepareWeights, reused by VerifyMatMulPrepared — and (b) one
// Freivalds projection per class per batch, derived from a batch
// transcript that binds every claim in the window, used to pre-screen
// each proof in O(m·k + m·n) before the full sum-check runs. The
// sum-check's own point challenges are NOT shared: they must bind each
// proof's claimed C (see VerifyMatMulPrepared).

// PreparedWeights is the reusable per-class encoding of a weight matrix:
// the padded field matrix and its transcript digest.
type PreparedWeights struct {
	// K, N are the logical (unpadded) dimensions.
	K, N int
	// kp, np are the padded dimensions.
	kp, np int
	bf     []Elem
	db     [32]byte
}

// PrepareWeights pads and field-encodes a k×n weight matrix and digests
// it once, so a settlement window of proofs against the same weights
// skips the per-proof encoding and hashing.
func PrepareWeights(b []int32, k, n int) (*PreparedWeights, error) {
	if k < 1 || n < 1 {
		return nil, fmt.Errorf("verify: weight dims %d×%d must be positive", k, n)
	}
	if len(b) != k*n {
		return nil, fmt.Errorf("verify: weight size %d does not match dims %d×%d", len(b), k, n)
	}
	bf, kp, np := padMatrix(b, k, n)
	return &PreparedWeights{K: k, N: n, kp: kp, np: np, bf: bf, db: digestElems(bf)}, nil
}

// projectCols returns B×r for a challenge vector r of length np — the
// per-class half of a Freivalds round, computed once per batch.
func (pw *PreparedWeights) projectCols(r []Elem) []Elem {
	br := make([]Elem, pw.kp)
	for i := 0; i < pw.kp; i++ {
		var s Elem
		row := pw.bf[i*pw.np : (i+1)*pw.np]
		for j, v := range row {
			s = Add(s, Mul(v, r[j]))
		}
		br[i] = s
	}
	return br
}

// BatchItem is one proof in a settlement batch.
type BatchItem struct {
	// ClassID names the (model-version, shape) class whose prepared
	// weights verify this item; it must have been registered with Prepare.
	ClassID string
	// Ctx is the application context the proof was bound to.
	Ctx []byte
	// A is the claimed m×K input, C the claimed m×N product.
	A []int32
	M int
	C []int64
	// Proof is the device's sum-check proof for C = A×B.
	Proof *Proof
}

// BatchResult is one item's verdict. Err reports a malformed item
// (unknown class, shape mismatch, nil proof); OK reports whether a
// well-formed item's proof verified.
type BatchResult struct {
	OK  bool
	Err error
}

// BatchVerifier amortizes sum-check verification across a settlement
// window: weight classes are prepared once and cached, every batch
// derives one shared Freivalds projection per class to pre-screen items
// cheaply, and the surviving full verifications fan out over an engine
// worker pool. Results are bit-identical at any worker count. Safe for
// concurrent use.
type BatchVerifier struct {
	eng *engine.Engine

	mu      sync.Mutex
	classes map[string]*PreparedWeights
}

// NewBatchVerifier returns a batch verifier running on eng (nil = a
// fresh single-worker engine).
func NewBatchVerifier(eng *engine.Engine) *BatchVerifier {
	if eng == nil {
		eng = engine.New(engine.Config{Workers: 1})
	}
	return &BatchVerifier{eng: eng, classes: make(map[string]*PreparedWeights)}
}

// Prepare registers (or refreshes) a weight class. Idempotent for
// identical weights.
func (bv *BatchVerifier) Prepare(classID string, b []int32, k, n int) error {
	pw, err := PrepareWeights(b, k, n)
	if err != nil {
		return err
	}
	bv.mu.Lock()
	bv.classes[classID] = pw
	bv.mu.Unlock()
	return nil
}

// Prepared reports whether a class is registered.
func (bv *BatchVerifier) Prepared(classID string) bool {
	bv.mu.Lock()
	defer bv.mu.Unlock()
	_, ok := bv.classes[classID]
	return ok
}

// Class returns a registered class's prepared weights.
func (bv *BatchVerifier) Class(classID string) (*PreparedWeights, bool) {
	bv.mu.Lock()
	defer bv.mu.Unlock()
	pw, ok := bv.classes[classID]
	return pw, ok
}

// VerifyBatch checks every item and returns per-item verdicts in input
// order plus aggregate verifier stats. Accept/reject decisions are
// exactly those of verifying each item alone with VerifyMatMulPrepared:
// the Freivalds pre-screen can only reject items the full check would
// also reject (a projection mismatch is a proof of inconsistency), and
// every pre-screen survivor still runs the full sum-check.
func (bv *BatchVerifier) VerifyBatch(items []BatchItem) ([]BatchResult, Stats, error) {
	results := make([]BatchResult, len(items))
	var agg Stats
	if len(items) == 0 {
		return results, agg, nil
	}

	// Snapshot the classes this batch touches.
	bv.mu.Lock()
	classes := make(map[string]*PreparedWeights, len(bv.classes))
	for _, it := range items {
		if pw, ok := bv.classes[it.ClassID]; ok {
			classes[it.ClassID] = pw
		}
	}
	bv.mu.Unlock()

	// The batch transcript binds every claim in the window before any
	// challenge is drawn, so the shared projections are unpredictable to
	// the provers and identical for any verifier replaying the batch.
	tr := newTranscript("settlement-batch")
	tr.absorbInt(len(items))
	for _, it := range items {
		tr.absorbBytes([]byte(it.ClassID))
		tr.absorbInt(len(it.Ctx))
		tr.absorbBytes(it.Ctx)
		tr.absorbInt(it.M)
		ce := make([]Elem, len(it.C))
		for i, v := range it.C {
			ce[i] = FromInt64(v)
		}
		dc := digestElems(ce)
		tr.absorbBytes(dc[:])
		agg.HashedElems += int64(len(it.C))
	}

	// One Freivalds projection per class, in sorted class order so the
	// challenge assignment is deterministic.
	names := make([]string, 0, len(classes))
	for name := range classes {
		names = append(names, name)
	}
	sort.Strings(names)
	type projection struct{ r, br []Elem }
	proj := make(map[string]projection, len(names))
	for _, name := range names {
		pw := classes[name]
		r := tr.challenges(pw.np)
		proj[name] = projection{r: r, br: pw.projectCols(r)}
		agg.VerifierMuls += int64(pw.kp) * int64(pw.np)
	}

	// Fan the per-item work out; each verdict is a pure function of the
	// item and the shared projections, so scheduling cannot change it.
	stats := make([]Stats, len(items))
	_ = bv.eng.ForEach(len(items), func(i int) error {
		it := items[i]
		pw, ok := classes[it.ClassID]
		if !ok {
			results[i].Err = fmt.Errorf("verify: unknown weight class %q", it.ClassID)
			return nil
		}
		if it.M < 1 || len(it.A) != it.M*pw.K || len(it.C) != it.M*pw.N {
			results[i].Err = fmt.Errorf("verify: item %d shapes %d,%d do not match class %q (%d×%d, m=%d)",
				i, len(it.A), len(it.C), it.ClassID, pw.K, pw.N, it.M)
			return nil
		}
		pr := proj[it.ClassID]
		if !freivaldsProjected(it.A, it.M, pw, it.C, pr.r, pr.br) {
			stats[i].VerifierMuls += int64(it.M) * int64(pw.K+pw.N)
			results[i].OK = false
			return nil
		}
		ok, st, err := VerifyMatMulPrepared(it.Ctx, it.A, it.M, pw, it.C, it.Proof)
		st.VerifierMuls += int64(it.M) * int64(pw.K+pw.N)
		stats[i] = st
		results[i] = BatchResult{OK: ok, Err: err}
		return nil
	})
	for _, st := range stats {
		agg.ProverMuls += st.ProverMuls
		agg.VerifierMuls += st.VerifierMuls
		agg.DirectMuls += st.DirectMuls
		agg.HashedElems += st.HashedElems
		agg.ProofBytes += st.ProofBytes
	}
	return results, agg, nil
}

// freivaldsProjected runs one pre-screen round for a claimed m-row
// product against the class's shared projection: A×(B×r) must equal C×r
// row by row. A mismatch proves A×B ≠ C; a match proves nothing and the
// full sum-check still runs.
func freivaldsProjected(a []int32, m int, pw *PreparedWeights, c []int64, r, br []Elem) bool {
	for i := 0; i < m; i++ {
		var abr Elem
		arow := a[i*pw.K : (i+1)*pw.K]
		for j, v := range arow {
			abr = Add(abr, Mul(FromInt64(int64(v)), br[j]))
		}
		var cr Elem
		crow := c[i*pw.N : (i+1)*pw.N]
		for j, v := range crow {
			cr = Add(cr, Mul(FromInt64(v), r[j]))
		}
		if abr != cr {
			return false
		}
	}
	return true
}
