package verify

import "fmt"

// Multilinear-extension helpers. A matrix with power-of-two dimensions
// M×K is the table of a function on log₂M + log₂K boolean variables; its
// multilinear extension Ã is the unique multilinear polynomial agreeing
// with the table on the hypercube. The sum-check verifier only ever needs
// Ã at random points, which "folding" computes in time linear in the
// table instead of exponential interpolation.

// nextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// log2 returns log₂(n) for a power of two.
func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

// padMatrix embeds an m×k int32 matrix (row-major) into an M×K field
// matrix with power-of-two dimensions, zero-filled.
func padMatrix(a []int32, m, k int) ([]Elem, int, int) {
	mp, kp := nextPow2(m), nextPow2(k)
	out := make([]Elem, mp*kp)
	for i := 0; i < m; i++ {
		for j := 0; j < k; j++ {
			out[i*kp+j] = FromInt64(int64(a[i*k+j]))
		}
	}
	return out, mp, kp
}

// foldRows reduces an M×K matrix along its row variables at point
// r ∈ F^log₂(M), returning the K-vector Ã(r, ·) restricted to column
// hypercube points. Variables are consumed most-significant-bit first.
func foldRows(a []Elem, m, k int, r []Elem) ([]Elem, error) {
	if len(r) != log2(m) {
		return nil, fmt.Errorf("verify: foldRows got %d challenges for %d rows", len(r), m)
	}
	cur := append([]Elem(nil), a...)
	rows := m
	for _, ri := range r {
		half := rows / 2
		next := make([]Elem, half*k)
		for i := 0; i < half; i++ {
			for j := 0; j < k; j++ {
				lo := cur[i*k+j]
				hi := cur[(i+half)*k+j]
				// lo + r·(hi − lo)
				next[i*k+j] = Add(lo, Mul(ri, Sub(hi, lo)))
			}
		}
		cur = next
		rows = half
	}
	return cur, nil
}

// foldCols reduces a K×N matrix along its column variables at point
// c ∈ F^log₂(N), returning the K-vector Ã(·, c).
func foldCols(a []Elem, k, n int, c []Elem) ([]Elem, error) {
	if len(c) != log2(n) {
		return nil, fmt.Errorf("verify: foldCols got %d challenges for %d cols", len(c), n)
	}
	cur := append([]Elem(nil), a...)
	cols := n
	for _, ci := range c {
		half := cols / 2
		next := make([]Elem, k*half)
		for i := 0; i < k; i++ {
			for j := 0; j < half; j++ {
				lo := cur[i*cols+j]
				hi := cur[i*cols+j+half]
				next[i*half+j] = Add(lo, Mul(ci, Sub(hi, lo)))
			}
		}
		cur = next
		cols = half
	}
	return cur, nil
}

// evalMLE evaluates the multilinear extension of an M×K matrix at
// (r, c) ∈ F^log₂(M) × F^log₂(K) — foldRows then foldCols on the
// remaining single row.
func evalMLE(a []Elem, m, k int, r, c []Elem) (Elem, error) {
	row, err := foldRows(a, m, k, r)
	if err != nil {
		return 0, err
	}
	point, err := foldCols(row, 1, k, c)
	if err != nil {
		return 0, err
	}
	return point[0], nil
}

// matMulField computes C = A×B over the field (the prover's native
// computation). A is m×k, B is k×n, both row-major, power-of-two padded
// by the caller.
func matMulField(a, b []Elem, m, k, n int) []Elem {
	out := make([]Elem, m*n)
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				orow[j] = Add(orow[j], Mul(av, bv))
			}
		}
	}
	return out
}
