package verify

import (
	"testing"

	"tinymlops/internal/tensor"
)

// FuzzProveVerifyMatMul drives the prove/verify pair from a fuzzed seed
// and mutation selector: every honestly produced proof must verify, and
// the three canonical tamperings — a mutated round polynomial, a flipped
// claimed sum, a truncated proof — must all be rejected (false or error,
// never a panic, never a pass).
func FuzzProveVerifyMatMul(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(2), uint8(3), uint8(4))
	f.Add(uint64(42), uint8(1), uint8(1), uint8(8), uint8(1))
	f.Add(uint64(7), uint8(2), uint8(3), uint8(5), uint8(6))
	f.Add(uint64(1001), uint8(3), uint8(4), uint8(16), uint8(2))
	f.Add(uint64(99), uint8(4), uint8(2), uint8(7), uint8(7))
	f.Fuzz(func(t *testing.T, seed uint64, mutate, rm, rk, rn uint8) {
		m := 1 + int(rm)%4
		k := 1 + int(rk)%17
		n := 1 + int(rn)%9
		rng := tensor.NewRNG(seed)
		a := randMat(rng, m*k)
		b := randMat(rng, k*n)
		ctx := []byte{byte(seed), byte(seed >> 8)}
		c, proof, _, err := ProveMatMulCtx(ctx, a, m, k, b, n)
		if err != nil {
			t.Fatalf("prove failed on valid operands: %v", err)
		}
		if ok, _, err := VerifyMatMulCtx(ctx, a, m, k, b, n, c, proof); err != nil || !ok {
			t.Fatalf("honest proof rejected: %v %v", ok, err)
		}

		switch mutate % 4 {
		case 0: // honest case already checked above
		case 1: // mutate one round polynomial coefficient
			if len(proof.Rounds) == 0 {
				// k padded to 1 leaves no rounds; corrupt the claim instead.
				c[0] += 1
			} else {
				i := int(seed) % len(proof.Rounds)
				j := int(seed>>16) % 3
				proof.Rounds[i][j] = Add(proof.Rounds[i][j], 1+Elem(seed%1000))
			}
			if ok, _, _ := VerifyMatMulCtx(ctx, a, m, k, b, n, c, proof); ok {
				t.Fatal("mutated round polynomial accepted")
			}
		case 2: // flip the claimed sum (corrupt a result cell)
			i := int(seed) % len(c)
			c[i] += 1 + int64(seed%4096)
			if ok, _, _ := VerifyMatMulCtx(ctx, a, m, k, b, n, c, proof); ok {
				t.Fatal("flipped claimed sum accepted")
			}
		case 3: // truncate the proof
			if len(proof.Rounds) > 0 {
				proof.Rounds = proof.Rounds[:len(proof.Rounds)-1]
			} else {
				proof.K *= 2
			}
			if ok, _, _ := VerifyMatMulCtx(ctx, a, m, k, b, n, c, proof); ok {
				t.Fatal("truncated proof accepted")
			}
		}

		// Serialization must survive any proof this path produced.
		blob, err := proof.MarshalBinary()
		if err != nil {
			return
		}
		var back Proof
		if err := back.UnmarshalBinary(blob); err != nil {
			t.Fatalf("round-trip of marshaled proof failed: %v", err)
		}
	})
}
