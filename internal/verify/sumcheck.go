package verify

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// transcript implements the Fiat-Shamir heuristic: both parties absorb
// the same public values and derive identical pseudo-random challenges,
// turning the interactive sum-check into a stand-alone proof.
type transcript struct {
	state [32]byte
}

func newTranscript(label string) *transcript {
	t := &transcript{}
	t.state = sha256.Sum256([]byte("tinymlops/verify/" + label))
	return t
}

func (t *transcript) absorbBytes(data []byte) {
	h := sha256.New()
	h.Write(t.state[:])
	h.Write(data)
	copy(t.state[:], h.Sum(nil))
}

func (t *transcript) absorbElems(es ...Elem) {
	buf := make([]byte, 8*len(es))
	for i, e := range es {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(e))
	}
	t.absorbBytes(buf)
}

func (t *transcript) absorbInt(v int) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	t.absorbBytes(b[:])
}

// challenge derives the next field element.
func (t *transcript) challenge() Elem {
	t.absorbBytes([]byte{0xC4})
	return reduce(binary.LittleEndian.Uint64(t.state[:8]))
}

func (t *transcript) challenges(n int) []Elem {
	out := make([]Elem, n)
	for i := range out {
		out[i] = t.challenge()
	}
	return out
}

// digestElems hashes a field vector (the "commitment" to a public matrix;
// verifier and prover both possess the matrices, the hash just binds the
// transcript to them).
func digestElems(es []Elem) [32]byte {
	h := sha256.New()
	buf := make([]byte, 8)
	for _, e := range es {
		binary.LittleEndian.PutUint64(buf, uint64(e))
		h.Write(buf)
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// RoundPoly is one sum-check round: the quadratic g evaluated at 0, 1, 2.
type RoundPoly [3]Elem

// Proof is a non-interactive sum-check proof for one matrix product.
type Proof struct {
	// M, K, N are the padded dimensions.
	M, K, N int
	// Rounds holds log₂(K) round polynomials.
	Rounds []RoundPoly
}

// SizeBytes returns the wire size of the proof (3 field elements per
// round plus the dimension header) — exactly what MarshalBinary emits.
func (p *Proof) SizeBytes() int { return 12 + 24*len(p.Rounds) }

// Stats counts field multiplications on each side — the cost model E10
// reports. DirectMuls is what re-executing the product would cost.
// HashedElems counts field elements fed through the transcript's matrix
// digests: the dominant non-arithmetic verifier cost, and the term a
// prepared-weights verification amortizes away (see PrepareWeights).
type Stats struct {
	ProverMuls   int64
	VerifierMuls int64
	DirectMuls   int64
	HashedElems  int64
	ProofBytes   int
}

// checkOperands validates the prover/verifier operand shapes shared by
// every entry point.
func checkOperands(a []int32, m, k int, lb, n int) error {
	if m < 1 || k < 1 || n < 1 {
		return fmt.Errorf("verify: dimensions (%d×%d)×(%d×%d) must be positive", m, k, k, n)
	}
	if len(a) != m*k || lb != k*n {
		return fmt.Errorf("verify: matrix sizes %d,%d do not match dims (%d×%d)×(%d×%d)", len(a), lb, m, k, k, n)
	}
	return nil
}

// ProveMatMul computes C = A×B over the field and produces a sum-check
// proof that C is correct. a is m×k and b is k×n (int32, row-major,
// arbitrary positive dimensions — padding is internal). It returns the
// unpadded product as int64s, the proof and the prover-side stats.
func ProveMatMul(a []int32, m, k int, b []int32, n int) ([]int64, *Proof, Stats, error) {
	return ProveMatMulCtx(nil, a, m, k, b, n)
}

// ProveMatMulCtx is ProveMatMul with an application context bound into
// the Fiat-Shamir transcript. A proof made under one context never
// verifies under another, which is what lets settlement bind a proof to
// one (voucher, charge, chain entry, model version) and reject replays.
// A nil or empty context produces exactly ProveMatMul's transcript.
func ProveMatMulCtx(ctx []byte, a []int32, m, k int, b []int32, n int) ([]int64, *Proof, Stats, error) {
	if err := checkOperands(a, m, k, len(b), n); err != nil {
		return nil, nil, Stats{}, err
	}
	af, mp, kp := padMatrix(a, m, k)
	bf, _, np := padMatrix(b, k, n)
	cf := matMulField(af, bf, mp, kp, np)
	stats := Stats{ProverMuls: int64(mp) * int64(kp) * int64(np), DirectMuls: int64(mp) * int64(kp) * int64(np)}
	stats.HashedElems = int64(mp)*int64(kp) + int64(kp)*int64(np) + int64(mp)*int64(np)

	tr := newTranscript("matmul")
	if len(ctx) > 0 {
		tr.absorbBytes(ctx)
	}
	tr.absorbInt(mp)
	tr.absorbInt(kp)
	tr.absorbInt(np)
	da, db, dc := digestElems(af), digestElems(bf), digestElems(cf)
	tr.absorbBytes(da[:])
	tr.absorbBytes(db[:])
	tr.absorbBytes(dc[:])

	r1 := tr.challenges(log2(mp))
	r2 := tr.challenges(log2(np))

	u, err := foldRows(af, mp, kp, r1) // Ã(r1, ·), length kp
	if err != nil {
		return nil, nil, stats, err
	}
	v, err := foldCols(bf, kp, np, r2) // B̃(·, r2), length kp
	if err != nil {
		return nil, nil, stats, err
	}
	stats.ProverMuls += int64(mp)*int64(kp) + int64(kp)*int64(np)

	proof := &Proof{M: mp, K: kp, N: np}
	rounds := log2(kp)
	for round := 0; round < rounds; round++ {
		half := len(u) / 2
		var g0, g1, g2 Elem
		for j := 0; j < half; j++ {
			u0, u1 := u[j], u[j+half]
			v0, v1 := v[j], v[j+half]
			g0 = Add(g0, Mul(u0, v0))
			g1 = Add(g1, Mul(u1, v1))
			// g(2) = (2u1−u0)(2v1−v0)
			u2 := Sub(Add(u1, u1), u0)
			v2 := Sub(Add(v1, v1), v0)
			g2 = Add(g2, Mul(u2, v2))
		}
		stats.ProverMuls += int64(3 * half)
		rp := RoundPoly{g0, g1, g2}
		proof.Rounds = append(proof.Rounds, rp)
		tr.absorbElems(rp[0], rp[1], rp[2])
		rho := tr.challenge()
		// Fold u and v with the challenge.
		nu := make([]Elem, half)
		nv := make([]Elem, half)
		for j := 0; j < half; j++ {
			nu[j] = Add(u[j], Mul(rho, Sub(u[j+half], u[j])))
			nv[j] = Add(v[j], Mul(rho, Sub(v[j+half], v[j])))
		}
		stats.ProverMuls += int64(2 * half)
		u, v = nu, nv
	}
	stats.ProofBytes = proof.SizeBytes()

	// Unpad the result.
	out := make([]int64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out[i*n+j] = cf[i*np+j].Int64()
		}
	}
	return out, proof, stats, nil
}

// evalQuadratic interpolates g from its values at 0, 1, 2 and evaluates
// at t: g(t) = g0·(t−1)(t−2)/2 − g1·t(t−2) + g2·t(t−1)/2.
func evalQuadratic(g RoundPoly, t Elem) Elem {
	t1 := Sub(t, 1)
	t2 := Sub(t, 2)
	term0 := Mul(Mul(g[0], Mul(t1, t2)), inv2)
	term1 := Neg(Mul(g[1], Mul(t, t2)))
	term2 := Mul(Mul(g[2], Mul(t, t1)), inv2)
	return Add(Add(term0, term1), term2)
}

// VerifyMatMul checks a proof that c = a×b. The verifier holds a, b and
// the claimed c (as the application does: a is its input, b its model,
// c the device's answer); its work is O(m·k + k·n + m·n) instead of
// O(m·n·k).
func VerifyMatMul(a []int32, m, k int, b []int32, n int, c []int64, proof *Proof) (bool, Stats, error) {
	return VerifyMatMulCtx(nil, a, m, k, b, n, c, proof)
}

// VerifyMatMulCtx is VerifyMatMul under an application context; the proof
// must have been produced by ProveMatMulCtx under the identical context.
func VerifyMatMulCtx(ctx []byte, a []int32, m, k int, b []int32, n int, c []int64, proof *Proof) (bool, Stats, error) {
	if err := checkOperands(a, m, k, len(b), n); err != nil {
		return false, Stats{}, err
	}
	pw, err := PrepareWeights(b, k, n)
	if err != nil {
		return false, Stats{}, err
	}
	ok, stats, err := VerifyMatMulPrepared(ctx, a, m, pw, c, proof)
	// The one-shot path pays the weight-matrix digest a prepared class
	// amortizes across a settlement window.
	stats.HashedElems += int64(pw.kp) * int64(pw.np)
	return ok, stats, err
}

// VerifyMatMulPrepared is VerifyMatMulCtx against a pre-encoded weight
// matrix: the padding and transcript digest of B — the dominant per-proof
// cost when one model class settles many queries — are reused from pw
// instead of being recomputed.
func VerifyMatMulPrepared(ctx []byte, a []int32, m int, pw *PreparedWeights, c []int64, proof *Proof) (bool, Stats, error) {
	if pw == nil {
		return false, Stats{}, fmt.Errorf("verify: nil prepared weights")
	}
	k, n := pw.K, pw.N
	if m < 1 || len(a) != m*k {
		return false, Stats{}, fmt.Errorf("verify: input size %d does not match dims %d×%d", len(a), m, k)
	}
	if len(c) != m*n {
		return false, Stats{}, fmt.Errorf("verify: result size %d, want %d", len(c), m*n)
	}
	if proof == nil {
		return false, Stats{}, fmt.Errorf("verify: nil proof")
	}
	af, mp, kp := padMatrix(a, m, k)
	np := pw.np
	if proof.M != mp || proof.K != kp || proof.N != np {
		return false, Stats{}, fmt.Errorf("verify: proof dims %dx%dx%d do not match %dx%dx%d", proof.M, proof.K, proof.N, mp, kp, np)
	}
	if len(proof.Rounds) != log2(kp) {
		return false, Stats{}, fmt.Errorf("verify: proof has %d rounds, want %d", len(proof.Rounds), log2(kp))
	}
	// Rebuild the padded C from the claimed result.
	cf := make([]Elem, mp*np)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			cf[i*np+j] = FromInt64(c[i*n+j])
		}
	}
	stats := Stats{DirectMuls: int64(mp) * int64(kp) * int64(np), ProofBytes: proof.SizeBytes()}
	stats.HashedElems = int64(mp)*int64(kp) + int64(mp)*int64(np)

	tr := newTranscript("matmul")
	if len(ctx) > 0 {
		tr.absorbBytes(ctx)
	}
	tr.absorbInt(mp)
	tr.absorbInt(kp)
	tr.absorbInt(np)
	da, dc := digestElems(af), digestElems(cf)
	tr.absorbBytes(da[:])
	tr.absorbBytes(pw.db[:])
	tr.absorbBytes(dc[:])

	// The point challenges r1, r2 stay per-proof: they are derived after
	// the transcript absorbs this proof's own C digest. Sharing them
	// across a class would let a prover pick a false C agreeing with the
	// true product's extension at the known point — the only sound
	// class-level sharing is of the weight encoding (here) and of the
	// Freivalds pre-screen projection (BatchVerifier).
	r1 := tr.challenges(log2(mp))
	r2 := tr.challenges(log2(np))

	// Claim: C̃(r1, r2) — the verifier evaluates it from the claimed C.
	claim, err := evalMLE(cf, mp, np, r1, r2)
	if err != nil {
		return false, stats, err
	}
	stats.VerifierMuls += int64(mp)*int64(np) + int64(np)

	var rho []Elem
	for _, g := range proof.Rounds {
		if Add(g[0], g[1]) != claim {
			return false, stats, nil
		}
		tr.absorbElems(g[0], g[1], g[2])
		ri := tr.challenge()
		rho = append(rho, ri)
		claim = evalQuadratic(g, ri)
		stats.VerifierMuls += 6
	}
	// Final check: claim must equal Ã(r1, ρ)·B̃(ρ, r2), which the
	// verifier evaluates itself in O(m·k + k·n).
	ua, err := evalMLE(af, mp, kp, r1, rho)
	if err != nil {
		return false, stats, err
	}
	vb, err := foldCols(pw.bf, kp, np, r2)
	if err != nil {
		return false, stats, err
	}
	vbAt, err := foldCols(vb, 1, kp, rho)
	if err != nil {
		return false, stats, err
	}
	stats.VerifierMuls += int64(mp)*int64(kp) + int64(kp)*int64(np) + int64(kp) + 1
	return claim == Mul(ua, vbAt[0]), stats, nil
}

// FreivaldsCheck probabilistically verifies c = a×b with `rounds` random
// projections over the field; each round costs O(m·k + k·n + m·n) and a
// wrong product survives a round with probability ≤ 1/p. The seed
// parameterizes the randomness (use a fresh one per check). rounds must
// be positive and the operand shapes must agree, else an error.
func FreivaldsCheck(a []int32, m, k int, b []int32, n int, c []int64, rounds int, seed uint64) (bool, error) {
	if rounds <= 0 {
		return false, fmt.Errorf("verify: freivalds needs rounds >= 1, got %d", rounds)
	}
	if err := checkOperands(a, m, k, len(b), n); err != nil {
		return false, err
	}
	if len(c) != m*n {
		return false, fmt.Errorf("verify: result size %d, want %d", len(c), m*n)
	}
	af, mp, kp := padMatrix(a, m, k)
	bf, _, np := padMatrix(b, k, n)
	cf := make([]Elem, mp*np)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			cf[i*np+j] = FromInt64(c[i*n+j])
		}
	}
	tr := newTranscript("freivalds")
	tr.absorbInt(int(seed))
	for round := 0; round < rounds; round++ {
		r := tr.challenges(np)
		// br = B×r ; abr = A×br ; cr = C×r ; check abr == cr.
		br := make([]Elem, kp)
		for i := 0; i < kp; i++ {
			var s Elem
			row := bf[i*np : (i+1)*np]
			for j, v := range row {
				s = Add(s, Mul(v, r[j]))
			}
			br[i] = s
		}
		for i := 0; i < mp; i++ {
			var abr Elem
			arow := af[i*kp : (i+1)*kp]
			for j, v := range arow {
				abr = Add(abr, Mul(v, br[j]))
			}
			var cr Elem
			crow := cf[i*np : (i+1)*np]
			for j, v := range crow {
				cr = Add(cr, Mul(v, r[j]))
			}
			if abr != cr {
				return false, nil
			}
		}
	}
	return true, nil
}
