package verify

import (
	"testing"
	"testing/quick"

	"tinymlops/internal/nn"
	"tinymlops/internal/tensor"
)

func TestFieldAxiomsProperty(t *testing.T) {
	f := func(x, y, z uint64) bool {
		a, b, c := NewElem(x), NewElem(y), NewElem(z)
		// Commutativity and associativity.
		if Add(a, b) != Add(b, a) || Mul(a, b) != Mul(b, a) {
			return false
		}
		if Add(Add(a, b), c) != Add(a, Add(b, c)) {
			return false
		}
		if Mul(Mul(a, b), c) != Mul(a, Mul(b, c)) {
			return false
		}
		// Distributivity.
		if Mul(a, Add(b, c)) != Add(Mul(a, b), Mul(a, c)) {
			return false
		}
		// Additive inverse.
		if Add(a, Neg(a)) != 0 {
			return false
		}
		// Sub is Add of Neg.
		if Sub(a, b) != Add(a, Neg(b)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFieldInverse(t *testing.T) {
	rng := tensor.NewRNG(1)
	for i := 0; i < 100; i++ {
		a := NewElem(rng.Uint64())
		if a == 0 {
			continue
		}
		if Mul(a, Inv(a)) != 1 {
			t.Fatalf("a·a⁻¹ ≠ 1 for %v", a)
		}
	}
	if Inv(0) != 0 {
		t.Fatal("Inv(0) should be 0 by convention")
	}
	if Mul(2, inv2) != 1 {
		t.Fatal("inv2 is wrong")
	}
}

func TestSignedEncoding(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 127, -127, 1 << 40, -(1 << 40)} {
		if FromInt64(v).Int64() != v {
			t.Fatalf("round trip failed for %d", v)
		}
	}
	// Arithmetic on encoded negatives.
	a, b := FromInt64(-5), FromInt64(3)
	if Add(a, b).Int64() != -2 {
		t.Fatalf("-5+3 = %d", Add(a, b).Int64())
	}
	if Mul(a, b).Int64() != -15 {
		t.Fatalf("-5·3 = %d", Mul(a, b).Int64())
	}
}

func TestMulMatchesBigReduction(t *testing.T) {
	// Cross-check Mul against a slow double-and-add implementation.
	slowMul := func(a, b Elem) Elem {
		var acc Elem
		x := a
		for e := uint64(b); e > 0; e >>= 1 {
			if e&1 == 1 {
				acc = Add(acc, x)
			}
			x = Add(x, x)
		}
		return acc
	}
	rng := tensor.NewRNG(2)
	for i := 0; i < 50; i++ {
		a, b := NewElem(rng.Uint64()), NewElem(rng.Uint64()%100000)
		if Mul(a, b) != slowMul(a, b) {
			t.Fatalf("Mul mismatch for %v·%v", a, b)
		}
	}
}

func TestMLEAgreesOnHypercube(t *testing.T) {
	// The MLE evaluated at boolean points must reproduce the table.
	rng := tensor.NewRNG(3)
	m, k := 4, 8
	a := make([]int32, m*k)
	for i := range a {
		a[i] = int32(rng.Intn(255)) - 127
	}
	af, mp, kp := padMatrix(a, m, k)
	for i := 0; i < m; i++ {
		for j := 0; j < k; j++ {
			r := boolPoint(i, log2(mp))
			c := boolPoint(j, log2(kp))
			got, err := evalMLE(af, mp, kp, r, c)
			if err != nil {
				t.Fatal(err)
			}
			if got.Int64() != int64(a[i*k+j]) {
				t.Fatalf("MLE(%d,%d) = %d, want %d", i, j, got.Int64(), a[i*k+j])
			}
		}
	}
}

// boolPoint encodes index i as a boolean point with the MSB-first variable
// order used by foldRows/foldCols.
func boolPoint(i, vars int) []Elem {
	out := make([]Elem, vars)
	for b := 0; b < vars; b++ {
		if i&(1<<(vars-1-b)) != 0 {
			out[b] = 1
		}
	}
	return out
}

func randMat(rng *tensor.RNG, n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(rng.Intn(255)) - 127
	}
	return out
}

func naiveMatMul(a []int32, m, k int, b []int32, n int) []int64 {
	out := make([]int64, m*n)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			av := int64(a[i*k+p])
			for j := 0; j < n; j++ {
				out[i*n+j] += av * int64(b[p*n+j])
			}
		}
	}
	return out
}

func TestProveMatMulCorrectResult(t *testing.T) {
	rng := tensor.NewRNG(4)
	m, k, n := 5, 12, 7 // deliberately non-powers of two
	a, b := randMat(rng, m*k), randMat(rng, k*n)
	c, proof, stats, err := ProveMatMul(a, m, k, b, n)
	if err != nil {
		t.Fatal(err)
	}
	want := naiveMatMul(a, m, k, b, n)
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("product wrong at %d: %d vs %d", i, c[i], want[i])
		}
	}
	if stats.ProofBytes != proof.SizeBytes() || proof.SizeBytes() == 0 {
		t.Fatalf("proof size accounting: %d vs %d", stats.ProofBytes, proof.SizeBytes())
	}
}

func TestVerifyMatMulAcceptsHonestProof(t *testing.T) {
	rng := tensor.NewRNG(5)
	for _, dims := range [][3]int{{1, 8, 4}, {16, 16, 16}, {3, 33, 9}, {64, 64, 32}} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randMat(rng, m*k), randMat(rng, k*n)
		c, proof, _, err := ProveMatMul(a, m, k, b, n)
		if err != nil {
			t.Fatal(err)
		}
		ok, _, err := VerifyMatMul(a, m, k, b, n, c, proof)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("honest proof rejected for %v", dims)
		}
	}
}

func TestVerifyMatMulRejectsForgedResult(t *testing.T) {
	rng := tensor.NewRNG(6)
	m, k, n := 8, 16, 8
	a, b := randMat(rng, m*k), randMat(rng, k*n)
	c, proof, _, err := ProveMatMul(a, m, k, b, n)
	if err != nil {
		t.Fatal(err)
	}
	// A malicious device changes one output (e.g. to flip a decision).
	c[3]++
	ok, _, err := VerifyMatMul(a, m, k, b, n, c, proof)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("forged result accepted")
	}
}

func TestVerifyMatMulRejectsForgedProof(t *testing.T) {
	rng := tensor.NewRNG(7)
	m, k, n := 8, 16, 8
	a, b := randMat(rng, m*k), randMat(rng, k*n)
	c, proof, _, err := ProveMatMul(a, m, k, b, n)
	if err != nil {
		t.Fatal(err)
	}
	proof.Rounds[1][0] = Add(proof.Rounds[1][0], 1)
	ok, _, err := VerifyMatMul(a, m, k, b, n, c, proof)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("tampered proof accepted")
	}
}

func TestVerifierIsCheaperThanReexecutionOnBatches(t *testing.T) {
	rng := tensor.NewRNG(8)
	m, k, n := 64, 64, 32
	a, b := randMat(rng, m*k), randMat(rng, k*n)
	c, proof, _, err := ProveMatMul(a, m, k, b, n)
	if err != nil {
		t.Fatal(err)
	}
	ok, stats, err := VerifyMatMul(a, m, k, b, n, c, proof)
	if err != nil || !ok {
		t.Fatalf("verify: %v %v", ok, err)
	}
	if stats.VerifierMuls*4 > stats.DirectMuls {
		t.Fatalf("verifier (%d muls) not ≪ direct (%d muls)", stats.VerifierMuls, stats.DirectMuls)
	}
	if proof.SizeBytes() > 1024 {
		t.Fatalf("proof is %d bytes; should be well under a KB", proof.SizeBytes())
	}
}

func TestFreivalds(t *testing.T) {
	rng := tensor.NewRNG(9)
	m, k, n := 10, 20, 15
	a, b := randMat(rng, m*k), randMat(rng, k*n)
	c := naiveMatMul(a, m, k, b, n)
	ok, err := FreivaldsCheck(a, m, k, b, n, c, 2, 42)
	if err != nil || !ok {
		t.Fatalf("Freivalds rejected a correct product: %v %v", ok, err)
	}
	c[7] += 3
	ok, err = FreivaldsCheck(a, m, k, b, n, c, 2, 42)
	if err != nil || ok {
		t.Fatalf("Freivalds accepted a corrupted product: %v %v", ok, err)
	}
}

// Property: sum-check accepts honest proofs and rejects single-entry
// corruptions across random shapes.
func TestSumCheckSoundnessProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		m, k, n := 1+rng.Intn(8), 1+rng.Intn(16), 1+rng.Intn(8)
		a, b := randMat(rng, m*k), randMat(rng, k*n)
		c, proof, _, err := ProveMatMul(a, m, k, b, n)
		if err != nil {
			return false
		}
		ok, _, err := VerifyMatMul(a, m, k, b, n, c, proof)
		if err != nil || !ok {
			return false
		}
		// Corrupt one entry.
		c[rng.Intn(len(c))] += int64(1 + rng.Intn(100))
		ok, _, err = VerifyMatMul(a, m, k, b, n, c, proof)
		if err != nil {
			return false
		}
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func verifiableNet(t *testing.T, seed uint64) (*nn.Network, *tensor.Tensor) {
	t.Helper()
	rng := tensor.NewRNG(seed)
	net := nn.NewNetwork([]int{16},
		nn.NewDense(16, 24, rng), nn.NewReLU(),
		nn.NewDense(24, 4, rng))
	x := tensor.Randn(rng, 1, 8, 16)
	return net, x
}

func TestInferenceProofRoundTrip(t *testing.T) {
	net, x := verifiableNet(t, 10)
	ip, err := ProveInference(net, x)
	if err != nil {
		t.Fatal(err)
	}
	if len(ip.Layers) != 2 {
		t.Fatalf("proof covers %d layers", len(ip.Layers))
	}
	ok, stats, err := VerifyInference(net, x, ip)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("honest inference proof rejected")
	}
	if stats.VerifierMuls == 0 {
		t.Fatal("verifier cost not accounted")
	}
	// The verified logits agree with the float model's argmax mostly
	// (int8 quantization noise only).
	want := net.Predict(x).ArgMaxRows()
	got := ip.Output.ArgMaxRows()
	agree := 0
	for i := range got {
		if got[i] == want[i] {
			agree++
		}
	}
	if agree < 6 {
		t.Fatalf("quantized verifiable inference agrees on %d/8", agree)
	}
}

func TestInferenceProofDetectsTamperedOutput(t *testing.T) {
	net, x := verifiableNet(t, 11)
	ip, err := ProveInference(net, x)
	if err != nil {
		t.Fatal(err)
	}
	// Malicious device reports a different classification (§VI's payment
	// scenario: pretend the face matched).
	ip.Output.Data[0] += 5
	ok, _, err := VerifyInference(net, x, ip)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("tampered logits accepted")
	}
}

func TestInferenceProofDetectsTamperedAccumulator(t *testing.T) {
	net, x := verifiableNet(t, 12)
	ip, err := ProveInference(net, x)
	if err != nil {
		t.Fatal(err)
	}
	ip.Layers[0].Claimed[0] += 1000
	ok, _, err := VerifyInference(net, x, ip)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("tampered accumulator accepted")
	}
}

func TestInferenceProofWrongModelRejected(t *testing.T) {
	net, x := verifiableNet(t, 13)
	ip, err := ProveInference(net, x)
	if err != nil {
		t.Fatal(err)
	}
	other, _ := verifiableNet(t, 14)
	ok, _, err := VerifyInference(other, x, ip)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("proof from a different model accepted")
	}
}

func TestInferenceProofLayerCountMismatch(t *testing.T) {
	net, x := verifiableNet(t, 15)
	ip, err := ProveInference(net, x)
	if err != nil {
		t.Fatal(err)
	}
	ip.Layers = ip.Layers[:1]
	if _, _, err := VerifyInference(net, x, ip); err == nil {
		t.Fatal("layer-count mismatch accepted")
	}
}

func TestInferenceProofSizeModest(t *testing.T) {
	net, x := verifiableNet(t, 16)
	ip, err := ProveInference(net, x)
	if err != nil {
		t.Fatal(err)
	}
	// Claimed accumulators dominate; everything must stay a few KB for
	// this model scale.
	if ip.SizeBytes() > 4096 {
		t.Fatalf("inference evidence is %d bytes", ip.SizeBytes())
	}
}
