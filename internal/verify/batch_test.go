package verify

import (
	"fmt"
	"strings"
	"testing"

	"tinymlops/internal/engine"
	"tinymlops/internal/tensor"
)

// Error-path coverage for the public entry points: every malformed
// operand set must be an error, never a silent false (or worse, a silent
// true).
func TestOperandValidation(t *testing.T) {
	rng := tensor.NewRNG(7)
	m, k, n := 3, 4, 5
	a := randMat(rng, m*k)
	b := randMat(rng, k*n)
	c := naiveMatMul(a, m, k, b, n)
	_, proof, _, err := ProveMatMul(a, m, k, b, n)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		run  func() error
	}{
		{"prove nil a", func() error { _, _, _, err := ProveMatMul(nil, m, k, b, n); return err }},
		{"prove nil b", func() error { _, _, _, err := ProveMatMul(a, m, k, nil, n); return err }},
		{"prove zero m", func() error { _, _, _, err := ProveMatMul(a, 0, k, b, n); return err }},
		{"prove negative k", func() error { _, _, _, err := ProveMatMul(a, m, -1, b, n); return err }},
		{"prove short a", func() error { _, _, _, err := ProveMatMul(a[:len(a)-1], m, k, b, n); return err }},
		{"verify nil a", func() error { _, _, err := VerifyMatMul(nil, m, k, b, n, c, proof); return err }},
		{"verify nil b", func() error { _, _, err := VerifyMatMul(a, m, k, nil, n, c, proof); return err }},
		{"verify zero n", func() error { _, _, err := VerifyMatMul(a, m, k, b, 0, c, proof); return err }},
		{"verify short c", func() error { _, _, err := VerifyMatMul(a, m, k, b, n, c[:len(c)-1], proof); return err }},
		{"verify nil proof", func() error { _, _, err := VerifyMatMul(a, m, k, b, n, c, nil); return err }},
		{"freivalds zero rounds", func() error { _, err := FreivaldsCheck(a, m, k, b, n, c, 0, 1); return err }},
		{"freivalds negative rounds", func() error { _, err := FreivaldsCheck(a, m, k, b, n, c, -3, 1); return err }},
		{"freivalds nil b", func() error { _, err := FreivaldsCheck(a, m, k, nil, n, c, 1, 1); return err }},
		{"freivalds short c", func() error { _, err := FreivaldsCheck(a, m, k, b, n, c[:1], 1, 1); return err }},
		{"prepare zero k", func() error { _, err := PrepareWeights(b, 0, n); return err }},
		{"prepare short b", func() error { _, err := PrepareWeights(b[:2], k, n); return err }},
		{"prepared nil pw", func() error { _, _, err := VerifyMatMulPrepared(nil, a, m, nil, c, proof); return err }},
	}
	for _, tc := range cases {
		if err := tc.run(); err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
}

// A proof bound to one context must not verify under another (or under
// none) — this is what makes settlement attestations replay-proof.
func TestContextBinding(t *testing.T) {
	rng := tensor.NewRNG(8)
	m, k, n := 2, 8, 6
	a := randMat(rng, m*k)
	b := randMat(rng, k*n)
	ctx := []byte("voucher-1|model-v1|seq-42|entryhash")
	c, proof, _, err := ProveMatMulCtx(ctx, a, m, k, b, n)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _, err := VerifyMatMulCtx(ctx, a, m, k, b, n, c, proof); err != nil || !ok {
		t.Fatalf("honest ctx-bound proof rejected: %v %v", ok, err)
	}
	if ok, _, _ := VerifyMatMulCtx([]byte("voucher-1|model-v2|seq-42|entryhash"), a, m, k, b, n, c, proof); ok {
		t.Fatal("proof verified under a different context")
	}
	if ok, _, _ := VerifyMatMul(a, m, k, b, n, c, proof); ok {
		t.Fatal("ctx-bound proof verified without its context")
	}
	// And the other direction: a context-free proof fails under a context.
	c2, proof2, _, err := ProveMatMul(a, m, k, b, n)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _, _ := VerifyMatMulCtx(ctx, a, m, k, b, n, c2, proof2); ok {
		t.Fatal("context-free proof verified under a context")
	}
}

func TestProofSerializationRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(9)
	m, k, n := 4, 16, 8
	a := randMat(rng, m*k)
	b := randMat(rng, k*n)
	c, proof, _, err := ProveMatMul(a, m, k, b, n)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := proof.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) != proof.SizeBytes() {
		t.Fatalf("blob is %d bytes, SizeBytes says %d", len(blob), proof.SizeBytes())
	}
	var back Proof
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if ok, _, err := VerifyMatMul(a, m, k, b, n, c, &back); err != nil || !ok {
		t.Fatalf("round-tripped proof rejected: %v %v", ok, err)
	}
	// Malformed blobs are errors, not panics or garbage proofs.
	bad := [][]byte{nil, blob[:5], blob[:len(blob)-3], make([]byte, 12)}
	for i, blb := range bad {
		var p Proof
		if err := p.UnmarshalBinary(blb); err == nil {
			t.Errorf("bad blob %d accepted", i)
		}
	}
}

// The batch verifier must reach exactly the verdicts of one-at-a-time
// VerifyMatMulPrepared — across honest items, corrupted results, wrong
// contexts, tampered proofs, and at every worker count.
func TestBatchMatchesSerialVerdicts(t *testing.T) {
	rng := tensor.NewRNG(11)
	type class struct {
		id   string
		b    []int32
		k, n int
	}
	classes := []class{
		{"model-v1/8x6", randMat(rng, 8*6), 8, 6},
		{"model-v2/16x4", randMat(rng, 16*4), 16, 4},
	}

	var items []BatchItem
	for i := 0; i < 12; i++ {
		cl := classes[i%len(classes)]
		m := 1 + i%3
		a := randMat(rng, m*cl.k)
		ctx := []byte(fmt.Sprintf("ctx-%d", i))
		c, proof, _, err := ProveMatMulCtx(ctx, a, m, cl.k, cl.b, cl.n)
		if err != nil {
			t.Fatal(err)
		}
		it := BatchItem{ClassID: cl.id, Ctx: ctx, A: a, M: m, C: c, Proof: proof}
		switch i % 4 {
		case 1: // inflate a result cell — the classic overclaim
			it.C = append([]int64(nil), c...)
			it.C[0] += 7
		case 2: // replay under the wrong context
			it.Ctx = []byte("ctx-stale")
		case 3: // tamper with a round polynomial
			cp := *proof
			cp.Rounds = append([]RoundPoly(nil), proof.Rounds...)
			cp.Rounds[0][1] = Add(cp.Rounds[0][1], 1)
			it.Proof = &cp
		}
		items = append(items, it)
	}
	// One item against an unregistered class, one with a shape mismatch.
	items = append(items, BatchItem{ClassID: "ghost", Ctx: nil, A: items[0].A, M: items[0].M, C: items[0].C, Proof: items[0].Proof})
	items = append(items, BatchItem{ClassID: classes[0].id, Ctx: nil, A: items[0].A[:3], M: 1, C: items[0].C, Proof: items[0].Proof})

	var want []BatchResult
	var fromWorkers map[int][]BatchResult = map[int][]BatchResult{}
	for _, workers := range []int{1, 4, 16} {
		eng := engine.New(engine.Config{Workers: workers})
		bv := NewBatchVerifier(eng)
		for _, cl := range classes {
			if err := bv.Prepare(cl.id, cl.b, cl.k, cl.n); err != nil {
				t.Fatal(err)
			}
		}
		got, _, err := bv.VerifyBatch(items)
		if err != nil {
			t.Fatal(err)
		}
		fromWorkers[workers] = got
		if want == nil {
			// Serial reference: same verdicts one item at a time.
			for i, it := range items {
				pw, ok := bv.Class(it.ClassID)
				if !ok {
					want = append(want, BatchResult{Err: fmt.Errorf("unknown class")})
					continue
				}
				okv, _, verr := VerifyMatMulPrepared(it.Ctx, it.A, it.M, pw, it.C, it.Proof)
				_ = i
				want = append(want, BatchResult{OK: okv, Err: verr})
			}
		}
	}
	for workers, got := range fromWorkers {
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i].OK != want[i].OK {
				t.Errorf("workers=%d item %d: batch OK=%v, serial OK=%v", workers, i, got[i].OK, want[i].OK)
			}
			if (got[i].Err == nil) != (want[i].Err == nil) {
				t.Errorf("workers=%d item %d: batch err=%v, serial err=%v", workers, i, got[i].Err, want[i].Err)
			}
		}
	}
	// Spot-check the expected verdict pattern: i%4==0 honest, others bad.
	got := fromWorkers[1]
	for i := 0; i < 12; i++ {
		if wantOK := i%4 == 0; got[i].OK != wantOK {
			t.Errorf("item %d: OK=%v, want %v", i, got[i].OK, wantOK)
		}
	}
	if got[12].Err == nil || !strings.Contains(got[12].Err.Error(), "unknown weight class") {
		t.Errorf("unregistered class: err=%v", got[12].Err)
	}
	if got[13].Err == nil {
		t.Error("shape-mismatched item: expected an error")
	}
}

// The point of PrepareWeights: a settlement window of w proofs against
// one class hashes the weight matrix zero times per proof, versus once
// per proof on the naive path. HashedElems makes that deterministic and
// testable (no wall-clock flakiness).
func TestBatchAmortizesWeightHashing(t *testing.T) {
	rng := tensor.NewRNG(13)
	k, n := 64, 32
	b := randMat(rng, k*n)
	const window = 8

	var items []BatchItem
	var naive Stats
	for i := 0; i < window; i++ {
		a := randMat(rng, k)
		ctx := []byte(fmt.Sprintf("q-%d", i))
		c, proof, _, err := ProveMatMulCtx(ctx, a, 1, k, b, n)
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, BatchItem{ClassID: "cls", Ctx: ctx, A: a, M: 1, C: c, Proof: proof})
		ok, st, err := VerifyMatMulCtx(ctx, a, 1, k, b, n, c, proof)
		if err != nil || !ok {
			t.Fatalf("naive verify %d: %v %v", i, ok, err)
		}
		naive.HashedElems += st.HashedElems
	}

	bv := NewBatchVerifier(nil)
	if err := bv.Prepare("cls", b, k, n); err != nil {
		t.Fatal(err)
	}
	results, batched, err := bv.VerifyBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil || !r.OK {
			t.Fatalf("batch item %d: %+v", i, r)
		}
	}
	pw, _ := bv.Class("cls")
	perProofWeightCost := int64(pw.kp) * int64(pw.np)
	// The naive path pays the weight digest once per proof; across the
	// window the batch pays it at most once (at Prepare, not here).
	if batched.HashedElems > naive.HashedElems-(window-1)*perProofWeightCost {
		t.Fatalf("amortization missing: naive hashed %d elems, batch hashed %d (weight digest is %d/proof)",
			naive.HashedElems, batched.HashedElems, perProofWeightCost)
	}
}
