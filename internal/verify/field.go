package verify

import "math/bits"

// Elem is an element of F_p, p = 2⁶¹−1. Values are kept in [0, p).
type Elem uint64

// P is the field modulus, the Mersenne prime 2⁶¹−1.
const P uint64 = (1 << 61) - 1

// reduce maps an arbitrary uint64 into [0, p).
func reduce(x uint64) Elem {
	x = (x & P) + (x >> 61)
	if x >= P {
		x -= P
	}
	return Elem(x)
}

// NewElem maps a uint64 into the field.
func NewElem(x uint64) Elem { return reduce(x) }

// FromInt64 encodes a signed integer: negatives map to p−|v|.
func FromInt64(v int64) Elem {
	if v >= 0 {
		return reduce(uint64(v))
	}
	m := reduce(uint64(-v))
	if m == 0 {
		return 0
	}
	return Elem(P) - m
}

// Int64 decodes an element to a signed integer, interpreting values above
// p/2 as negative. It is exact as long as |v| < p/2.
func (e Elem) Int64() int64 {
	if uint64(e) > P/2 {
		return -int64(P - uint64(e))
	}
	return int64(e)
}

// Add returns a + b mod p.
func Add(a, b Elem) Elem {
	s := uint64(a) + uint64(b)
	if s >= P {
		s -= P
	}
	return Elem(s)
}

// Sub returns a − b mod p.
func Sub(a, b Elem) Elem {
	if a >= b {
		return a - b
	}
	return Elem(uint64(a) + P - uint64(b))
}

// Neg returns −a mod p.
func Neg(a Elem) Elem {
	if a == 0 {
		return 0
	}
	return Elem(P - uint64(a))
}

// Mul returns a·b mod p using the Mersenne reduction
// 2⁶⁴ ≡ 2³ (mod 2⁶¹−1).
func Mul(a, b Elem) Elem {
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	// lo + 8·hi fits: hi < 2⁵⁸ for a,b < 2⁶¹.
	loRed := (lo & P) + (lo >> 61)
	sum := loRed + hi<<3
	return reduce(sum)
}

// Pow returns a^e mod p by square and multiply.
func Pow(a Elem, e uint64) Elem {
	result := Elem(1)
	base := a
	for e > 0 {
		if e&1 == 1 {
			result = Mul(result, base)
		}
		base = Mul(base, base)
		e >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse via Fermat (a^(p−2)); Inv(0) is 0.
func Inv(a Elem) Elem {
	if a == 0 {
		return 0
	}
	return Pow(a, P-2)
}

// inv2 is the constant 2⁻¹ mod p, used in quadratic interpolation.
var inv2 = Inv(2)

// EncodeInt32s lifts a signed int32 slice into the field.
func EncodeInt32s(v []int32) []Elem {
	out := make([]Elem, len(v))
	for i, x := range v {
		out[i] = FromInt64(int64(x))
	}
	return out
}

// DecodeInt64s lowers field elements back to signed integers.
func DecodeInt64s(v []Elem) []int64 {
	out := make([]int64, len(v))
	for i, e := range v {
		out[i] = e.Int64()
	}
	return out
}
