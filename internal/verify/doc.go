// Package verify implements the verifiable-execution layer of §VI: an
// untrusted edge device produces, next to each inference result, a short
// mathematical proof that the result came from the unmodified model; a
// cheap verifier (the payment authorizer, the cloud) checks the proof
// without re-executing the network.
//
// The construction follows SafetyNets/Thaler: the network's dense layers
// are lifted to exact arithmetic over the Mersenne prime field
// F_p (p = 2⁶¹−1) after int8 quantization, each matrix product is proven
// with the sum-check protocol for matrix multiplication (logarithmic
// rounds, O(m·k + k·n) verifier work versus O(m·n·k) re-execution),
// Fiat-Shamir makes it non-interactive, and the (cheap, O(n)) nonlinear
// layers are recomputed by the verifier directly — the same split Slalom
// makes. Freivalds' check is included as the randomized pre-screen.
//
// This package is the proof engine behind verifiable pay-per-query
// billing (metering, core): devices bind ProveMatMulCtx proofs to
// sampled charges of their tamper-evident usage chain, the proofs ride
// in settlement reports as attestations, and the vendor's Settler checks
// them through a BatchVerifier — weight classes prepared once per
// (model-version, shape), a shared Freivalds projection pre-screening
// each window, full sum-check verification fanned out over an engine
// worker pool. The economics mirror SafetyNets: producing a valid proof
// costs at least the inference it attests, so inflating tick counts stops
// paying.
package verify
