// Package observe implements the edge-side observability of §III-B: on-
// device streaming statistics (constant memory, no raw data retained),
// drift detectors (Kolmogorov-Smirnov, Population Stability Index, CUSUM)
// that run locally so privacy is preserved, and a store-and-forward
// telemetry channel that ships only anonymized aggregates — execution
// time, energy, query counts and per-feature moments — to a central
// monitor when the device is on WiFi.
//
// The paper's constraint is that the standard cloud recipe (send all
// inputs to a central service, analyze there) invalidates the privacy
// argument for edge deployment, so detection must happen on-device with
// bounded memory and the uplink must carry statistics, not samples. These
// aggregates are also the only signal the rollout controller
// (internal/rollout) gets when deciding whether a freshly shipped version
// is healthy enough to reach the next wave.
package observe
