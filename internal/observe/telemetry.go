package observe

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"tinymlops/internal/device"
)

// Record is one telemetry report: anonymized aggregates over a reporting
// window, never raw inputs. This is the §III-B compromise — the cloud
// learns "how the model behaves", not "what the user did".
type Record struct {
	DeviceID string
	// Window is the reporting interval index on the device's clock.
	Window uint32
	// Inferences and Denied count queries in the window.
	Inferences uint32
	Denied     uint32
	// MeanLatencyUS / MaxLatencyUS summarize modeled execution time.
	MeanLatencyUS float32
	MaxLatencyUS  float32
	// EnergyMJ is the energy spent in the window, in millijoules.
	EnergyMJ float32
	// FeatureMeans/FeatureStds summarize the input distribution.
	FeatureMeans []float32
	FeatureStds  []float32
	// DriftScore is the monitor's max detector score at window end.
	DriftScore float32
	// DriftAlarm is set when the on-device monitor has latched.
	DriftAlarm bool
}

// Encode serializes the record to its compact wire form (the bytes the
// uplink accounting in E4 measures).
func (r *Record) Encode() []byte {
	var buf bytes.Buffer
	writeStr(&buf, r.DeviceID)
	writeU32(&buf, r.Window)
	writeU32(&buf, r.Inferences)
	writeU32(&buf, r.Denied)
	writeF32(&buf, r.MeanLatencyUS)
	writeF32(&buf, r.MaxLatencyUS)
	writeF32(&buf, r.EnergyMJ)
	writeU32(&buf, uint32(len(r.FeatureMeans)))
	for _, v := range r.FeatureMeans {
		writeF32(&buf, v)
	}
	for _, v := range r.FeatureStds {
		writeF32(&buf, v)
	}
	writeF32(&buf, r.DriftScore)
	if r.DriftAlarm {
		buf.WriteByte(1)
	} else {
		buf.WriteByte(0)
	}
	return buf.Bytes()
}

// DecodeRecord parses a record encoded by Encode.
func DecodeRecord(data []byte) (*Record, error) {
	r := bytes.NewReader(data)
	out := &Record{}
	var err error
	if out.DeviceID, err = readStr(r); err != nil {
		return nil, err
	}
	for _, dst := range []*uint32{&out.Window, &out.Inferences, &out.Denied} {
		if *dst, err = readU32(r); err != nil {
			return nil, err
		}
	}
	for _, dst := range []*float32{&out.MeanLatencyUS, &out.MaxLatencyUS, &out.EnergyMJ} {
		if *dst, err = readF32(r); err != nil {
			return nil, err
		}
	}
	nf, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if nf > 1<<16 {
		return nil, fmt.Errorf("observe: implausible feature count %d", nf)
	}
	out.FeatureMeans = make([]float32, nf)
	out.FeatureStds = make([]float32, nf)
	for i := range out.FeatureMeans {
		if out.FeatureMeans[i], err = readF32(r); err != nil {
			return nil, err
		}
	}
	for i := range out.FeatureStds {
		if out.FeatureStds[i], err = readF32(r); err != nil {
			return nil, err
		}
	}
	if out.DriftScore, err = readF32(r); err != nil {
		return nil, err
	}
	b, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("observe: truncated record: %w", err)
	}
	out.DriftAlarm = b == 1
	return out, nil
}

func writeU32(b *bytes.Buffer, v uint32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	b.Write(tmp[:])
}

func writeF32(b *bytes.Buffer, v float32) { writeU32(b, math.Float32bits(v)) }

func writeStr(b *bytes.Buffer, s string) {
	writeU32(b, uint32(len(s)))
	b.WriteString(s)
}

func readU32(r *bytes.Reader) (uint32, error) {
	var tmp [4]byte
	if _, err := r.Read(tmp[:]); err != nil {
		return 0, fmt.Errorf("observe: truncated record: %w", err)
	}
	return binary.LittleEndian.Uint32(tmp[:]), nil
}

func readF32(r *bytes.Reader) (float32, error) {
	v, err := readU32(r)
	return math.Float32frombits(v), err
}

func readStr(r *bytes.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > 256 {
		return "", fmt.Errorf("observe: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := r.Read(buf); err != nil && n > 0 {
		return "", fmt.Errorf("observe: truncated string: %w", err)
	}
	return string(buf), nil
}

// Buffer is the on-device store-and-forward queue: records accumulate
// locally and ship only when the device reaches WiFi (§III-B: "store these
// statistics locally and transmit them to the cloud when the device is
// connected to WiFi").
type Buffer struct {
	mu      sync.Mutex
	pending []Record
	// Cap bounds memory; when full, the oldest record is dropped (the
	// freshest telemetry is the most valuable).
	Cap int
	// dropped counts records evicted by the cap.
	dropped int64
}

// NewBuffer returns a buffer holding at most capacity records.
func NewBuffer(capacity int) *Buffer {
	if capacity < 1 {
		capacity = 1
	}
	return &Buffer{Cap: capacity}
}

// Add enqueues a record, evicting the oldest when at capacity.
func (b *Buffer) Add(r Record) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.pending) >= b.Cap {
		b.pending = b.pending[1:]
		b.dropped++
	}
	b.pending = append(b.pending, r)
}

// Pending returns the queued record count.
func (b *Buffer) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.pending)
}

// Snapshot returns a copy of the queued records without draining them —
// the audit path reads the store-and-forward queue in place.
func (b *Buffer) Snapshot() []Record {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Record(nil), b.pending...)
}

// Dropped returns how many records the cap evicted.
func (b *Buffer) Dropped() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// FlushIfWiFi drains the buffer when the device is on WiFi, charging the
// transfer to the device's radio. It returns the flushed records and the
// bytes that went over the air (0, nil when not flushed).
func (b *Buffer) FlushIfWiFi(d *device.Device) ([]Record, int, error) {
	if d.Net() != device.WiFi {
		return nil, 0, nil
	}
	b.mu.Lock()
	recs := b.pending
	b.pending = nil
	b.mu.Unlock()
	totalBytes := 0
	for i := range recs {
		totalBytes += len(recs[i].Encode())
	}
	if totalBytes > 0 {
		if _, err := d.Upload(int64(totalBytes)); err != nil {
			// Put the records back; the next WiFi window retries.
			b.mu.Lock()
			b.pending = append(recs, b.pending...)
			b.mu.Unlock()
			return nil, 0, err
		}
	}
	return recs, totalBytes, nil
}

// Aggregator is the cloud-side monitor: it ingests telemetry records and
// reports per-cohort summaries, refusing to answer for cohorts smaller
// than MinCohort (a k-anonymity floor so fleet dashboards cannot single
// out one user's device).
type Aggregator struct {
	mu sync.Mutex
	// MinCohort is the smallest cohort size Summarize will report on.
	MinCohort int
	byCohort  map[string][]Record
}

// NewAggregator returns an aggregator with the given k-anonymity floor.
func NewAggregator(minCohort int) *Aggregator {
	if minCohort < 1 {
		minCohort = 1
	}
	return &Aggregator{MinCohort: minCohort, byCohort: make(map[string][]Record)}
}

// Ingest files a record under a cohort key (typically the device class).
func (a *Aggregator) Ingest(cohort string, r Record) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.byCohort[cohort] = append(a.byCohort[cohort], r)
}

// CohortSummary aggregates a cohort's records.
type CohortSummary struct {
	Cohort      string
	Devices     int
	Records     int
	Inferences  uint64
	Denied      uint64
	MeanLatency float64 // microseconds
	EnergyMJ    float64
	DriftAlarms int
}

// Summarize returns the cohort aggregate, or an error if the cohort is
// unknown or smaller than the anonymity floor.
func (a *Aggregator) Summarize(cohort string) (CohortSummary, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	recs := a.byCohort[cohort]
	if len(recs) == 0 {
		return CohortSummary{}, fmt.Errorf("observe: no records for cohort %q", cohort)
	}
	devices := make(map[string]bool)
	for i := range recs {
		devices[recs[i].DeviceID] = true
	}
	if len(devices) < a.MinCohort {
		return CohortSummary{}, fmt.Errorf("observe: cohort %q has %d devices, below anonymity floor %d",
			cohort, len(devices), a.MinCohort)
	}
	s := CohortSummary{Cohort: cohort, Devices: len(devices), Records: len(recs)}
	var latSum float64
	var latN int
	for i := range recs {
		r := &recs[i]
		s.Inferences += uint64(r.Inferences)
		s.Denied += uint64(r.Denied)
		s.EnergyMJ += float64(r.EnergyMJ)
		if r.Inferences > 0 {
			latSum += float64(r.MeanLatencyUS) * float64(r.Inferences)
			latN += int(r.Inferences)
		}
		if r.DriftAlarm {
			s.DriftAlarms++
		}
	}
	if latN > 0 {
		s.MeanLatency = latSum / float64(latN)
	}
	return s, nil
}

// Records returns a copy of the records ingested under a cohort, in
// ingestion order — the audit path replays them to check per-device
// telemetry window monotonicity.
func (a *Aggregator) Records(cohort string) []Record {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Record(nil), a.byCohort[cohort]...)
}

// Cohorts lists known cohort keys.
func (a *Aggregator) Cohorts() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.byCohort))
	for k := range a.byCohort {
		out = append(out, k)
	}
	return out
}
