package observe

import (
	"math"
	"testing"
	"testing/quick"

	"tinymlops/internal/dataset"
	"tinymlops/internal/device"
	"tinymlops/internal/tensor"
)

func TestWelfordMatchesDirectComputation(t *testing.T) {
	rng := tensor.NewRNG(1)
	var w Welford
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		w.Add(xs[i])
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var varSum float64
	for _, x := range xs {
		varSum += (x - mean) * (x - mean)
	}
	variance := varSum / float64(len(xs))
	if math.Abs(w.Mean()-mean) > 1e-9 {
		t.Fatalf("Welford mean %v vs %v", w.Mean(), mean)
	}
	if math.Abs(w.Variance()-variance) > 1e-9 {
		t.Fatalf("Welford variance %v vs %v", w.Variance(), variance)
	}
	if w.N() != 1000 {
		t.Fatalf("N = %d", w.N())
	}
	w.Reset()
	if w.N() != 0 || w.Mean() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestWelfordMinMax(t *testing.T) {
	var w Welford
	for _, v := range []float64{3, -1, 7, 2} {
		w.Add(v)
	}
	if w.Min() != -1 || w.Max() != 7 {
		t.Fatalf("min/max = %v/%v", w.Min(), w.Max())
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{-1, 0, 1.9, 2, 9.999, 10, 11} {
		h.Add(v)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[4] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	props := h.Proportions()
	var s float64
	for _, p := range props {
		s += p
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("proportions sum to %v", s)
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("accepted empty range")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Fatal("accepted zero bins")
	}
}

func TestSlidingWindowEviction(t *testing.T) {
	s := NewSlidingWindow(3)
	s.Add(1)
	s.Add(2)
	if s.Full() || s.Len() != 2 {
		t.Fatalf("premature full: len=%d", s.Len())
	}
	s.Add(3)
	s.Add(4) // evicts 1
	if !s.Full() || s.Len() != 3 {
		t.Fatal("window should be full at 3")
	}
	vals := s.Values()
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	if sum != 9 { // 2+3+4
		t.Fatalf("window contents = %v", vals)
	}
}

func refSample(rng *tensor.RNG, n int, mean, std float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()*std + mean
	}
	return out
}

func TestKSDetectorFiresOnShiftNotOnNull(t *testing.T) {
	rng := tensor.NewRNG(2)
	ref := refSample(rng, 500, 0, 1)
	det, err := NewKSDetector(ref, 100, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// Null stream: same distribution — should not fire over 1000 samples.
	for i := 0; i < 1000; i++ {
		det.Observe(rng.NormFloat64())
	}
	if det.Drifted() {
		t.Fatalf("KS false positive on in-distribution stream (score %v > crit %v)", det.Score(), det.Critical())
	}
	// Shifted stream: must fire.
	for i := 0; i < 500 && !det.Drifted(); i++ {
		det.Observe(rng.NormFloat64() + 2)
	}
	if !det.Drifted() {
		t.Fatal("KS missed a 2σ mean shift")
	}
	det.Reset()
	if det.Drifted() || det.Score() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestKSDetectorValidation(t *testing.T) {
	if _, err := NewKSDetector([]float64{1, 2}, 100, 0.05); err == nil {
		t.Fatal("accepted tiny reference")
	}
	if _, err := NewKSDetector(make([]float64, 100), 2, 0.05); err == nil {
		t.Fatal("accepted tiny window")
	}
}

func TestPSIDetectorFiresOnShiftNotOnNull(t *testing.T) {
	rng := tensor.NewRNG(3)
	ref := refSample(rng, 800, 5, 2)
	det, err := NewPSIDetector(ref, 10, 200, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1200; i++ {
		det.Observe(rng.NormFloat64()*2 + 5)
	}
	if det.Drifted() {
		t.Fatalf("PSI false positive (score %v)", det.Score())
	}
	for i := 0; i < 600 && !det.Drifted(); i++ {
		det.Observe(rng.NormFloat64()*2 + 11)
	}
	if !det.Drifted() {
		t.Fatal("PSI missed a 3σ shift")
	}
}

func TestCUSUMDetectsSmallPersistentShiftFast(t *testing.T) {
	rng := tensor.NewRNG(14)
	// h=10: the in-control average run length of a two-sided CUSUM at
	// (k=0.5, h=5) is only ≈900 samples, so a 2000-sample null stream
	// would be expected to false-alarm; h=10 pushes ARL₀ far beyond it
	// while keeping the detection delay for a 1.5σ shift near h/(δ−k)=10.
	det, err := NewCUSUMDetector(0, 1, 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		det.Observe(rng.NormFloat64())
	}
	if det.Drifted() {
		t.Fatalf("CUSUM false positive (score %v)", det.Score())
	}
	// A persistent 1.5σ shift should fire within a few dozen samples.
	fired := -1
	for i := 0; i < 200; i++ {
		det.Observe(rng.NormFloat64() + 1.5)
		if det.Drifted() {
			fired = i
			break
		}
	}
	if fired < 0 {
		t.Fatal("CUSUM missed a persistent shift")
	}
	if fired > 50 {
		t.Fatalf("CUSUM too slow: fired after %d samples", fired)
	}
}

func TestCUSUMDetectsNegativeShift(t *testing.T) {
	det, _ := NewCUSUMDetector(0, 1, 0.5, 5)
	for i := 0; i < 100 && !det.Drifted(); i++ {
		det.Observe(-2)
	}
	if !det.Drifted() {
		t.Fatal("CUSUM missed a negative shift")
	}
}

func TestCUSUMValidation(t *testing.T) {
	if _, err := NewCUSUMDetector(0, 0, 0.5, 5); err == nil {
		t.Fatal("accepted zero std")
	}
	if _, err := NewCUSUMDetector(0, 1, 0.5, 0); err == nil {
		t.Fatal("accepted zero threshold")
	}
}

func TestMonitorOnDriftStream(t *testing.T) {
	rng := tensor.NewRNG(5)
	base := dataset.Blobs(rng, 2000, 4, 3, 3)
	// Calibrate on clean reference rows.
	refRows := make([][]float32, 500)
	for i := range refRows {
		row := make([]float32, 4)
		for f := 0; f < 4; f++ {
			row[f] = base.X.At2(i, f)
		}
		refRows[i] = row
	}
	cols := ColumnsOf(refRows)
	mon, err := NewMonitor(cols, func(ref []float64) (Detector, error) {
		return NewKSDetector(ref, 100, 0.01)
	})
	if err != nil {
		t.Fatal(err)
	}
	stream := dataset.NewDriftStream(rng, base, 600, dataset.DriftMeanShift, 4)
	for i := 0; i < 1500 && !mon.Drifted(); i++ {
		x, _ := stream.Next()
		mon.Observe(x)
	}
	if !mon.Drifted() {
		t.Fatal("monitor missed injected drift")
	}
	if mon.AlarmTick() < 500 {
		t.Fatalf("monitor fired before onset: tick %d", mon.AlarmTick())
	}
	mon.Reset()
	if mon.Drifted() || mon.AlarmTick() != -1 {
		t.Fatal("monitor Reset incomplete")
	}
}

func TestColumnsOf(t *testing.T) {
	cols := ColumnsOf([][]float32{{1, 2}, {3, 4}, {5, 6}})
	if len(cols) != 2 || cols[0][2] != 5 || cols[1][0] != 2 {
		t.Fatalf("ColumnsOf = %v", cols)
	}
	if ColumnsOf(nil) != nil {
		t.Fatal("ColumnsOf(nil) should be nil")
	}
}

func TestRecordEncodeDecodeRoundTrip(t *testing.T) {
	r := Record{
		DeviceID: "m4-wearable-01", Window: 7, Inferences: 120, Denied: 3,
		MeanLatencyUS: 850.5, MaxLatencyUS: 2100, EnergyMJ: 12.5,
		FeatureMeans: []float32{0.1, -0.2}, FeatureStds: []float32{1.0, 0.9},
		DriftScore: 0.31, DriftAlarm: true,
	}
	enc := r.Encode()
	got, err := DecodeRecord(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.DeviceID != r.DeviceID || got.Inferences != 120 || !got.DriftAlarm ||
		got.FeatureMeans[1] != -0.2 || got.DriftScore != 0.31 {
		t.Fatalf("round trip = %+v", got)
	}
	if _, err := DecodeRecord(enc[:5]); err == nil {
		t.Fatal("truncated record accepted")
	}
}

// Property: encode/decode round-trips arbitrary records.
func TestRecordRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		nf := rng.Intn(6)
		r := Record{
			DeviceID:      "dev",
			Window:        uint32(rng.Intn(1000)),
			Inferences:    uint32(rng.Intn(100000)),
			Denied:        uint32(rng.Intn(100)),
			MeanLatencyUS: rng.Float32() * 1e4,
			MaxLatencyUS:  rng.Float32() * 1e5,
			EnergyMJ:      rng.Float32() * 100,
			FeatureMeans:  make([]float32, nf),
			FeatureStds:   make([]float32, nf),
			DriftScore:    rng.Float32(),
			DriftAlarm:    rng.Float64() < 0.5,
		}
		for i := 0; i < nf; i++ {
			r.FeatureMeans[i] = rng.NormFloat32()
			r.FeatureStds[i] = rng.Float32()
		}
		got, err := DecodeRecord(r.Encode())
		if err != nil {
			return false
		}
		if got.Window != r.Window || got.Inferences != r.Inferences ||
			got.DriftAlarm != r.DriftAlarm || len(got.FeatureMeans) != nf {
			return false
		}
		for i := range r.FeatureMeans {
			if got.FeatureMeans[i] != r.FeatureMeans[i] || got.FeatureStds[i] != r.FeatureStds[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBufferStoreAndForward(t *testing.T) {
	caps, _ := device.ProfileByName("phone")
	d := device.NewDevice("p0", caps, tensor.NewRNG(6))
	buf := NewBuffer(100)
	buf.Add(Record{DeviceID: "p0", Inferences: 10})
	buf.Add(Record{DeviceID: "p0", Inferences: 20})
	// Offline: flush is a no-op.
	recs, n, err := buf.FlushIfWiFi(d)
	if err != nil || recs != nil || n != 0 {
		t.Fatalf("offline flush = %v, %d, %v", recs, n, err)
	}
	if buf.Pending() != 2 {
		t.Fatalf("pending = %d", buf.Pending())
	}
	// On WiFi: drains and uploads.
	d.SetBehavior(0, 1, 0)
	d.Tick()
	recs, n, err = buf.FlushIfWiFi(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || n <= 0 {
		t.Fatalf("flush = %d records, %d bytes", len(recs), n)
	}
	if buf.Pending() != 0 {
		t.Fatal("buffer not drained")
	}
	if d.Snapshot().TxBytes != int64(n) {
		t.Fatalf("device tx = %d, want %d", d.Snapshot().TxBytes, n)
	}
}

func TestBufferCapEvictsOldest(t *testing.T) {
	buf := NewBuffer(2)
	buf.Add(Record{Window: 1})
	buf.Add(Record{Window: 2})
	buf.Add(Record{Window: 3})
	if buf.Pending() != 2 || buf.Dropped() != 1 {
		t.Fatalf("pending=%d dropped=%d", buf.Pending(), buf.Dropped())
	}
}

func TestAggregatorCohortsAndAnonymityFloor(t *testing.T) {
	agg := NewAggregator(3)
	for i := 0; i < 2; i++ {
		agg.Ingest("m4", Record{DeviceID: string(rune('a' + i)), Inferences: 100, MeanLatencyUS: 500})
	}
	if _, err := agg.Summarize("m4"); err == nil {
		t.Fatal("anonymity floor not enforced")
	}
	agg.Ingest("m4", Record{DeviceID: "c", Inferences: 50, MeanLatencyUS: 1000, DriftAlarm: true})
	s, err := agg.Summarize("m4")
	if err != nil {
		t.Fatal(err)
	}
	if s.Devices != 3 || s.Records != 3 || s.Inferences != 250 || s.DriftAlarms != 1 {
		t.Fatalf("summary = %+v", s)
	}
	// Weighted mean latency: (100*500 + 100*500? no: records are 100@500,100@500? we
	// added two 100@500 and one 50@1000 → (50000+50000+50000)/250 = 600.
	if math.Abs(s.MeanLatency-600) > 1e-6 {
		t.Fatalf("mean latency = %v, want 600", s.MeanLatency)
	}
	if _, err := agg.Summarize("unknown"); err == nil {
		t.Fatal("unknown cohort accepted")
	}
	if len(agg.Cohorts()) != 1 {
		t.Fatalf("cohorts = %v", agg.Cohorts())
	}
}

func TestTelemetryIsFarSmallerThanRawData(t *testing.T) {
	// §III-B: a telemetry record summarizing a 1000-inference window must
	// be orders of magnitude smaller than shipping the 1000 raw inputs.
	r := Record{
		DeviceID: "m0-sensor-00", Window: 1, Inferences: 1000,
		FeatureMeans: make([]float32, 16), FeatureStds: make([]float32, 16),
	}
	telemetryBytes := len(r.Encode())
	rawBytes := 1000 * 16 * 4
	if telemetryBytes*100 > rawBytes {
		t.Fatalf("telemetry %dB not ≪ raw %dB", telemetryBytes, rawBytes)
	}
}
