package observe

import (
	"fmt"
	"math"
)

// Detector is a streaming drift detector over one scalar signal. Observe
// feeds one value; Drifted latches once the detector fires (Reset clears
// it).
type Detector interface {
	// Name identifies the detector family ("ks", "psi", "cusum").
	Name() string
	// Observe consumes one value.
	Observe(x float64)
	// Drifted reports whether drift has been detected.
	Drifted() bool
	// Score returns the current test statistic (scale depends on Name).
	Score() float64
	// Reset clears detection state but keeps the reference calibration.
	Reset()
}

// KSDetector compares a sliding window of recent values against a fixed
// reference sample with the two-sample Kolmogorov–Smirnov test. It is the
// assumption-free (but least sample-efficient) detector.
type KSDetector struct {
	ref      []float64
	window   *SlidingWindow
	critical float64
	every    int
	seen     int
	score    float64
	exceeds  int
	drifted  bool
}

// ksConfirm is the number of consecutive test exceedances required before
// the alarm latches. Re-testing a sliding window every window/2 samples is
// a repeated test, which inflates the single-test false-positive rate; two
// consecutive exceedances restore it to roughly alpha² per pair while
// adding at most half a window of detection delay.
const ksConfirm = 2

// NewKSDetector builds a KS detector from a reference sample. window sets
// the size of the comparison window, alpha the significance level (0.05 or
// 0.01). The test reruns every window/2 observations and requires two
// consecutive exceedances to latch (see ksConfirm).
func NewKSDetector(reference []float64, window int, alpha float64) (*KSDetector, error) {
	if len(reference) < 8 {
		return nil, fmt.Errorf("observe: KS reference needs >= 8 samples, got %d", len(reference))
	}
	if window < 8 {
		return nil, fmt.Errorf("observe: KS window %d too small", window)
	}
	var c float64
	switch {
	case alpha <= 0.01:
		c = 1.63
	case alpha <= 0.05:
		c = 1.36
	default:
		c = 1.22 // alpha ≈ 0.10
	}
	n, m := float64(len(reference)), float64(window)
	return &KSDetector{
		ref:      append([]float64(nil), reference...),
		window:   NewSlidingWindow(window),
		critical: c * math.Sqrt((n+m)/(n*m)),
		every:    window / 2,
	}, nil
}

// Name implements Detector.
func (k *KSDetector) Name() string { return "ks" }

// Observe implements Detector.
func (k *KSDetector) Observe(x float64) {
	k.window.Add(x)
	k.seen++
	if !k.window.Full() || k.seen%k.every != 0 {
		return
	}
	refCopy := append([]float64(nil), k.ref...)
	k.score = ksStatistic(refCopy, k.window.Values())
	if k.score > k.critical {
		k.exceeds++
		if k.exceeds >= ksConfirm {
			k.drifted = true
		}
	} else {
		k.exceeds = 0
	}
}

// Drifted implements Detector.
func (k *KSDetector) Drifted() bool { return k.drifted }

// Score implements Detector.
func (k *KSDetector) Score() float64 { return k.score }

// Critical returns the rejection threshold for the configured alpha.
func (k *KSDetector) Critical() float64 { return k.critical }

// Reset implements Detector.
func (k *KSDetector) Reset() {
	k.window = NewSlidingWindow(len(k.window.buf))
	k.seen, k.score, k.exceeds, k.drifted = 0, 0, 0, false
}

// PSIDetector bins recent values into the reference histogram's buckets
// and alarms when the Population Stability Index against the reference
// proportions exceeds a threshold (industry rule of thumb: 0.1 = drifting,
// 0.25 = severe).
type PSIDetector struct {
	refProps  []float64
	hist      *Histogram
	window    int
	threshold float64
	seen      int
	score     float64
	drifted   bool
}

// NewPSIDetector calibrates a PSI detector from a reference sample. bins
// controls histogram resolution, window how many recent samples form the
// comparison distribution, threshold the alarm level (e.g. 0.25).
func NewPSIDetector(reference []float64, bins, window int, threshold float64) (*PSIDetector, error) {
	if len(reference) < bins*4 {
		return nil, fmt.Errorf("observe: PSI reference of %d too small for %d bins", len(reference), bins)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range reference {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	// Widen by 10% so in-distribution values rarely land in under/overflow.
	refHist, err := NewHistogram(lo-0.1*span, hi+0.1*span, bins)
	if err != nil {
		return nil, err
	}
	for _, v := range reference {
		refHist.Add(v)
	}
	liveHist, _ := NewHistogram(refHist.Lo, refHist.Hi, bins)
	return &PSIDetector{
		refProps:  refHist.Proportions(),
		hist:      liveHist,
		window:    window,
		threshold: threshold,
	}, nil
}

// Name implements Detector.
func (p *PSIDetector) Name() string { return "psi" }

// Observe implements Detector.
func (p *PSIDetector) Observe(x float64) {
	p.hist.Add(x)
	p.seen++
	if p.seen%p.window != 0 {
		return
	}
	p.score = psi(p.hist.Proportions(), p.refProps)
	if p.score > p.threshold {
		p.drifted = true
	}
	p.hist.Reset()
}

// Drifted implements Detector.
func (p *PSIDetector) Drifted() bool { return p.drifted }

// Score implements Detector.
func (p *PSIDetector) Score() float64 { return p.score }

// Reset implements Detector.
func (p *PSIDetector) Reset() {
	p.hist.Reset()
	p.seen, p.score, p.drifted = 0, 0, false
}

// CUSUMDetector is a two-sided cumulative-sum change detector on the
// standardized signal: S⁺ accumulates positive deviations beyond a
// tolerance k, S⁻ negative ones; either exceeding h raises the alarm.
// It is the cheapest detector (two floats of state) and the fastest to
// react to a persistent mean shift.
type CUSUMDetector struct {
	mean, std float64
	k, h      float64
	sPos      float64
	sNeg      float64
	drifted   bool
}

// NewCUSUMDetector calibrates a CUSUM detector to a reference mean and
// standard deviation, with tolerance k (in σ units, typically 0.5) and
// alarm threshold h (typically 5).
func NewCUSUMDetector(mean, std, k, h float64) (*CUSUMDetector, error) {
	if std <= 0 {
		return nil, fmt.Errorf("observe: CUSUM std must be positive, got %v", std)
	}
	if k < 0 || h <= 0 {
		return nil, fmt.Errorf("observe: CUSUM k=%v h=%v invalid", k, h)
	}
	return &CUSUMDetector{mean: mean, std: std, k: k, h: h}, nil
}

// Name implements Detector.
func (c *CUSUMDetector) Name() string { return "cusum" }

// Observe implements Detector.
func (c *CUSUMDetector) Observe(x float64) {
	z := (x - c.mean) / c.std
	c.sPos = math.Max(0, c.sPos+z-c.k)
	c.sNeg = math.Max(0, c.sNeg-z-c.k)
	if c.sPos > c.h || c.sNeg > c.h {
		c.drifted = true
	}
}

// Drifted implements Detector.
func (c *CUSUMDetector) Drifted() bool { return c.drifted }

// Score implements Detector.
func (c *CUSUMDetector) Score() float64 { return math.Max(c.sPos, c.sNeg) }

// Reset implements Detector.
func (c *CUSUMDetector) Reset() {
	c.sPos, c.sNeg, c.drifted = 0, 0, false
}

// Monitor watches a multi-feature input stream with one detector per
// feature (built by the factory) and latches the first alarm. It is what
// a deployed pipeline instantiates next to the model.
type Monitor struct {
	detectors []Detector
	alarmTick int
	ticks     int
}

// NewMonitor builds a monitor over featureCount features. factory is
// called once per feature with that feature's reference sample.
func NewMonitor(reference [][]float64, factory func(ref []float64) (Detector, error)) (*Monitor, error) {
	if len(reference) == 0 {
		return nil, fmt.Errorf("observe: empty reference")
	}
	m := &Monitor{alarmTick: -1}
	for f, ref := range reference {
		d, err := factory(ref)
		if err != nil {
			return nil, fmt.Errorf("observe: feature %d: %w", f, err)
		}
		m.detectors = append(m.detectors, d)
	}
	return m, nil
}

// Observe consumes one example (length must equal the feature count).
func (m *Monitor) Observe(x []float32) {
	m.ticks++
	for f, d := range m.detectors {
		if f >= len(x) {
			break
		}
		d.Observe(float64(x[f]))
	}
	if m.alarmTick < 0 {
		for _, d := range m.detectors {
			if d.Drifted() {
				m.alarmTick = m.ticks
				break
			}
		}
	}
}

// Drifted reports whether any feature's detector has fired.
func (m *Monitor) Drifted() bool { return m.alarmTick >= 0 }

// AlarmTick returns the observation index at which the first alarm fired,
// or -1.
func (m *Monitor) AlarmTick() int { return m.alarmTick }

// MaxScore returns the largest current detector score.
func (m *Monitor) MaxScore() float64 {
	var s float64
	for _, d := range m.detectors {
		if v := d.Score(); v > s {
			s = v
		}
	}
	return s
}

// Reset clears all detectors and the alarm latch.
func (m *Monitor) Reset() {
	for _, d := range m.detectors {
		d.Reset()
	}
	m.alarmTick, m.ticks = -1, 0
}

// ColumnsOf transposes a row-major sample matrix into per-feature columns,
// the layout Monitor calibration consumes.
func ColumnsOf(rows [][]float32) [][]float64 {
	if len(rows) == 0 {
		return nil
	}
	f := len(rows[0])
	out := make([][]float64, f)
	for j := 0; j < f; j++ {
		col := make([]float64, len(rows))
		for i, r := range rows {
			col[i] = float64(r[j])
		}
		out[j] = col
	}
	return out
}
