package observe

import (
	"fmt"
	"math"
	"sort"
)

// Welford tracks running mean and variance in O(1) memory using Welford's
// online algorithm.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the statistics.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the observation count.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance.
func (w *Welford) Variance() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Std returns the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation (0 before any Add).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 before any Add).
func (w *Welford) Max() float64 { return w.max }

// Reset clears the statistics.
func (w *Welford) Reset() { *w = Welford{} }

// Histogram is a fixed-range, fixed-bin-count histogram with underflow and
// overflow buckets — the constant-memory sketch of an input feature's
// distribution that PSI consumes.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	Under  int64
	Over   int64
	total  int64
}

// NewHistogram returns a histogram over [lo, hi) with bins buckets.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("observe: histogram needs >= 1 bin, got %d", bins)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("observe: histogram range [%v,%v) invalid", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins)}, nil
}

// Add counts one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) { // x == Hi-ε rounding guard
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Proportions returns the fraction of mass per bin, including the under
// and overflow buckets as the first and last entries.
func (h *Histogram) Proportions() []float64 {
	out := make([]float64, len(h.Counts)+2)
	if h.total == 0 {
		return out
	}
	out[0] = float64(h.Under) / float64(h.total)
	for i, c := range h.Counts {
		out[i+1] = float64(c) / float64(h.total)
	}
	out[len(out)-1] = float64(h.Over) / float64(h.total)
	return out
}

// Reset clears all counts, keeping the binning.
func (h *Histogram) Reset() {
	for i := range h.Counts {
		h.Counts[i] = 0
	}
	h.Under, h.Over, h.total = 0, 0, 0
}

// SlidingWindow keeps the last k observations in a ring buffer; the KS
// detector compares its contents against the reference sample.
type SlidingWindow struct {
	buf  []float64
	next int
	full bool
}

// NewSlidingWindow returns a window of capacity k.
func NewSlidingWindow(k int) *SlidingWindow {
	if k < 1 {
		k = 1
	}
	return &SlidingWindow{buf: make([]float64, k)}
}

// Add appends an observation, evicting the oldest when full.
func (s *SlidingWindow) Add(x float64) {
	s.buf[s.next] = x
	s.next++
	if s.next == len(s.buf) {
		s.next = 0
		s.full = true
	}
}

// Full reports whether the window has reached capacity.
func (s *SlidingWindow) Full() bool { return s.full }

// Len returns the number of stored observations.
func (s *SlidingWindow) Len() int {
	if s.full {
		return len(s.buf)
	}
	return s.next
}

// Values returns a copy of the stored observations (order unspecified).
func (s *SlidingWindow) Values() []float64 {
	out := make([]float64, s.Len())
	copy(out, s.buf[:s.Len()])
	return out
}

// ksStatistic returns the two-sample Kolmogorov–Smirnov statistic
// D = sup |F_a - F_b| for samples a and b (both are sorted in place).
func ksStatistic(a, b []float64) float64 {
	sort.Float64s(a)
	sort.Float64s(b)
	var d float64
	i, j := 0, 0
	na, nb := float64(len(a)), float64(len(b))
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			i++
		} else {
			j++
		}
		diff := math.Abs(float64(i)/na - float64(j)/nb)
		if diff > d {
			d = diff
		}
	}
	return d
}

// psi computes the Population Stability Index between two proportion
// vectors with ε-smoothing: Σ (p-q)·ln(p/q).
func psi(p, q []float64) float64 {
	const eps = 1e-4
	var s float64
	for i := range p {
		pi, qi := p[i]+eps, q[i]+eps
		s += (pi - qi) * math.Log(pi/qi)
	}
	return s
}
