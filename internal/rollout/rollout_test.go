package rollout

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"tinymlops/internal/engine"
)

// fakeTarget is a deterministic in-memory fleet: device i ships a fixed
// number of bytes, reports configurable post-update health, and records
// updates/rollbacks. All state transitions are keyed by device ID only, so
// two fakeTargets driven by the same config end in identical states.
type fakeTarget struct {
	ids []string

	mu       sync.Mutex
	version  map[string]string // device -> version ("v1"/"v2")
	baked    map[string]bool
	rollback []string

	// driftOn marks devices whose post-bake health raises a drift alarm.
	driftOn map[string]bool
	// failUpdate marks devices whose update errors out.
	failUpdate map[string]bool
	// failHealth marks devices whose post-bake health read errors out.
	failHealth map[string]bool
	// noop marks devices already running v2 (content-addressed no-op).
	noop map[string]bool
}

func newFakeTarget(n int) *fakeTarget {
	t := &fakeTarget{
		version:    make(map[string]string),
		baked:      make(map[string]bool),
		driftOn:    make(map[string]bool),
		failUpdate: make(map[string]bool),
		failHealth: make(map[string]bool),
		noop:       make(map[string]bool),
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("dev-%03d", i)
		t.ids = append(t.ids, id)
		t.version[id] = "v1"
	}
	return t
}

func (t *fakeTarget) DeviceIDs() []string { return append([]string(nil), t.ids...) }

func (t *fakeTarget) Baseline(id string) (Health, error) {
	return Health{Inferences: 100, MeanLatencyUS: 50}, nil
}

func (t *fakeTarget) Update(id string) (Transfer, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.failUpdate[id] {
		return Transfer{}, fmt.Errorf("device %s offline", id)
	}
	if t.noop[id] {
		return Transfer{FromID: "v2", ToID: "v2"}, nil
	}
	t.version[id] = "v2"
	return Transfer{ShipBytes: 128, FlashBytes: 64, UsedDelta: true, FromID: "v1", ToID: "v2"}, nil
}

func (t *fakeTarget) Health(id string) (Health, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.failHealth[id] {
		return Health{}, fmt.Errorf("device %s unreachable", id)
	}
	h := Health{Inferences: 100, MeanLatencyUS: 55}
	if t.driftOn[id] && t.baked[id] {
		h.DriftAlarm = true
		h.DriftScore = 12
	}
	return h, nil
}

func (t *fakeTarget) Rollback(id string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.version[id] != "v2" {
		return fmt.Errorf("device %s is not on v2", id)
	}
	t.version[id] = "v1"
	t.rollback = append(t.rollback, id)
	return nil
}

func (t *fakeTarget) bake(_ Wave, ids []string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, id := range ids {
		t.baked[id] = true
	}
	return nil
}

// stripRollbackOrder removes the only legitimately schedule-dependent
// record (the fake's rollback append order) before state comparison.
func (t *fakeTarget) state() map[string]string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]string, len(t.version))
	for k, v := range t.version {
		out[k] = v
	}
	return out
}

func TestHappyPathCompletesAllWaves(t *testing.T) {
	ft := newFakeTarget(20)
	c := NewController(engine.New(engine.Config{Workers: 4}))
	res, err := c.Run(ft, Config{Seed: 7, Bake: ft.bake})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || len(res.Waves) != 3 {
		t.Fatalf("result = %+v", res)
	}
	if res.DeltaTransfers != 20 || res.FullTransfers != 0 {
		t.Fatalf("transfers = %d delta / %d full", res.DeltaTransfers, res.FullTransfers)
	}
	if res.TotalShipBytes != 20*128 {
		t.Fatalf("ship bytes = %d", res.TotalShipBytes)
	}
	for id, v := range ft.state() {
		if v != "v2" {
			t.Fatalf("device %s still on %s", id, v)
		}
	}
	// Wave sizes follow the cumulative fractions: 2, 8, 10 of 20.
	sizes := []int{len(res.Waves[0].DeviceIDs), len(res.Waves[1].DeviceIDs), len(res.Waves[2].DeviceIDs)}
	if sizes[0] != 2 || sizes[1] != 8 || sizes[2] != 10 {
		t.Fatalf("wave sizes = %v", sizes)
	}
}

func TestGateFailureRollsBackOnlyFailingWave(t *testing.T) {
	ft := newFakeTarget(20)
	c := NewController(engine.New(engine.Config{Workers: 4}))
	// Find who lands in wave 2 under this seed, then inject drift there.
	groups, err := assignWaves(ft.ids, DefaultWaves(), 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range groups[1] {
		ft.driftOn[id] = true
	}
	res, err := c.Run(ft, Config{Seed: 7, Bake: ft.bake})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed || len(res.Waves) != 2 {
		t.Fatalf("result = %+v", res)
	}
	if !res.Waves[0].Gate.Pass || res.Waves[1].Gate.Pass || !res.Waves[1].RolledBack {
		t.Fatalf("gates = %+v / %+v", res.Waves[0].Gate, res.Waves[1].Gate)
	}
	if res.Waves[1].Gate.DriftAlarms != len(groups[1]) {
		t.Fatalf("drift alarms = %d of %d", res.Waves[1].Gate.DriftAlarms, len(groups[1]))
	}
	state := ft.state()
	for _, id := range groups[0] {
		if state[id] != "v2" {
			t.Fatalf("canary %s lost the update", id)
		}
	}
	for _, id := range groups[1] {
		if state[id] != "v1" {
			t.Fatalf("cohort %s not rolled back", id)
		}
	}
	for _, id := range groups[2] {
		if state[id] != "v1" {
			t.Fatalf("unreached device %s was updated", id)
		}
	}
}

func TestUpdateFailuresGateAndSkipRollback(t *testing.T) {
	ft := newFakeTarget(10)
	for _, id := range ft.ids {
		ft.failUpdate[id] = true
	}
	c := NewController(engine.New(engine.Config{Workers: 2}))
	res, err := c.Run(ft, Config{Seed: 1, Waves: []Wave{{Name: "all", Fraction: 1}}, Bake: ft.bake})
	if err != nil {
		t.Fatal(err)
	}
	w := res.Waves[0]
	if w.Gate.Pass || w.Gate.UpdateFailures != 10 {
		t.Fatalf("gate = %+v", w.Gate)
	}
	for _, o := range w.Outcomes {
		if o.UpdateErr == "" || o.RolledBack {
			t.Fatalf("outcome = %+v", o)
		}
	}
}

// TestNoopUpdatesSkipAccountingAndRollback covers devices already on the
// target version: they ship nothing, count as neither delta nor full
// transfer, and a failing gate must not "roll them back" to an image the
// rollout never replaced.
func TestNoopUpdatesSkipAccountingAndRollback(t *testing.T) {
	ft := newFakeTarget(10)
	for _, id := range ft.ids[:4] {
		ft.noop[id] = true
		ft.version[id] = "v2" // already upgraded by an earlier rollout
	}
	for _, id := range ft.ids {
		ft.driftOn[id] = true // the single wave will fail its gate
	}
	c := NewController(engine.New(engine.Config{Workers: 4}))
	res, err := c.Run(ft, Config{Seed: 3, Waves: []Wave{{Name: "all", Fraction: 1}}, Bake: ft.bake})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeltaTransfers != 6 || res.FullTransfers != 0 || res.TotalShipBytes != 6*128 {
		t.Fatalf("accounting = %d delta / %d full / %d B", res.DeltaTransfers, res.FullTransfers, res.TotalShipBytes)
	}
	w := res.Waves[0]
	if !w.RolledBack {
		t.Fatal("failing wave not rolled back")
	}
	for _, o := range w.Outcomes {
		if ft.noop[o.DeviceID] {
			if o.RolledBack || o.RollbackErr != "" {
				t.Fatalf("no-op device %s touched by rollback: %+v", o.DeviceID, o)
			}
		} else if !o.RolledBack {
			t.Fatalf("updated device %s not rolled back", o.DeviceID)
		}
	}
	state := ft.state()
	for _, id := range ft.ids[:4] {
		if state[id] != "v2" {
			t.Fatalf("no-op device %s reverted to %s", id, state[id])
		}
	}
}

// TestUnreadableHealthFailsGate: a device whose post-bake health cannot
// be read must count against the gate, not pass as a zero-error idle one.
func TestUnreadableHealthFailsGate(t *testing.T) {
	ft := newFakeTarget(10)
	ft.failHealth[ft.ids[3]] = true
	c := NewController(engine.New(engine.Config{Workers: 4}))
	res, err := c.Run(ft, Config{Seed: 2, Waves: []Wave{{Name: "all", Fraction: 1}}, Bake: ft.bake})
	if err != nil {
		t.Fatal(err)
	}
	w := res.Waves[0]
	if w.Gate.Pass || w.Gate.HealthFailures != 1 || !w.RolledBack {
		t.Fatalf("gate = %+v rolledBack=%v", w.Gate, w.RolledBack)
	}
	found := false
	for _, o := range w.Outcomes {
		if o.DeviceID == ft.ids[3] {
			found = o.HealthErr != "" && o.RolledBack
		}
	}
	if !found {
		t.Fatal("unreadable device's outcome not recorded/rolled back")
	}
	// With tolerance, the same wave passes.
	ft2 := newFakeTarget(10)
	ft2.failHealth[ft2.ids[3]] = true
	res2, err := c.Run(ft2, Config{
		Seed: 2, Waves: []Wave{{Name: "all", Fraction: 1}},
		Gate: Gate{MaxUpdateFailures: 1}, Bake: ft2.bake,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Completed {
		t.Fatalf("tolerated health failure still failed: %+v", res2.Waves[0].Gate)
	}
}

// TestBakeFailureRollsBackWave: a bake error means the wave was never
// judged on real traffic, so its devices revert before Run surfaces the
// error — with the partial Result still returned for the record.
func TestBakeFailureRollsBackWave(t *testing.T) {
	ft := newFakeTarget(12)
	c := NewController(engine.New(engine.Config{Workers: 4}))
	res, err := c.Run(ft, Config{Seed: 9, Bake: func(w Wave, ids []string) error {
		if w.Name == "cohort" {
			return fmt.Errorf("traffic generator crashed")
		}
		return ft.bake(w, ids)
	}})
	if err == nil {
		t.Fatal("bake failure not surfaced")
	}
	if res == nil || len(res.Waves) != 2 {
		t.Fatalf("partial result = %+v", res)
	}
	w := res.Waves[1]
	if w.Gate.Pass || !w.RolledBack || !strings.Contains(strings.Join(w.Gate.Reasons, ";"), "bake failed") {
		t.Fatalf("bake-failed wave = %+v", w)
	}
	state := ft.state()
	for _, id := range w.DeviceIDs {
		if state[id] != "v1" {
			t.Fatalf("device %s kept the unbaked version", id)
		}
	}
	for _, id := range res.Waves[0].DeviceIDs {
		if state[id] != "v2" {
			t.Fatalf("canary %s lost its gated update", id)
		}
	}
}

func TestWaveValidation(t *testing.T) {
	ft := newFakeTarget(4)
	c := NewController(nil)
	if _, err := c.Run(ft, Config{Waves: []Wave{{Name: "a", Fraction: 0.5}, {Name: "b", Fraction: 0.5}}}); err == nil {
		t.Fatal("non-increasing fractions accepted")
	}
	if _, err := c.Run(ft, Config{Waves: []Wave{{Name: "a", Fraction: 1.5}}}); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
	if _, err := c.Run(newFakeTarget(0), Config{}); err == nil {
		t.Fatal("empty fleet accepted")
	}
}

// TestRolloutDeterministicAcrossWorkerCounts runs the same rollout — with
// a gate failure in the middle wave — at 1, 4 and 16 workers and demands
// bit-identical Results and end states.
func TestRolloutDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) (*Result, map[string]string) {
		ft := newFakeTarget(50)
		groups, err := assignWaves(ft.ids, DefaultWaves(), 42)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range groups[1] {
			ft.driftOn[id] = true
		}
		// A couple of deterministic update failures in the canary, below
		// the tolerance so the rollout still reaches the failing wave.
		ft.failUpdate[groups[0][0]] = true
		c := NewController(engine.New(engine.Config{Workers: workers}))
		res, err := c.Run(ft, Config{Seed: 42, Gate: Gate{MaxUpdateFailures: 2}, Bake: ft.bake})
		if err != nil {
			t.Fatal(err)
		}
		return res, ft.state()
	}
	res1, state1 := run(1)
	for _, workers := range []int{4, 16} {
		resN, stateN := run(workers)
		if !reflect.DeepEqual(res1, resN) {
			t.Fatalf("result diverged at %d workers:\n1:  %+v\n%d: %+v", workers, res1, workers, resN)
		}
		if !reflect.DeepEqual(state1, stateN) {
			t.Fatalf("fleet state diverged at %d workers", workers)
		}
	}
}

// flakyTarget wraps fakeTarget so each marked device fails its first K
// update attempts with a transient error before succeeding.
type flakyTarget struct {
	*fakeTarget
	mu       sync.Mutex
	failures map[string]int // device -> remaining transient failures
	calls    map[string]int
}

var errTransient = fmt.Errorf("transient link drop")

func (t *flakyTarget) Update(id string) (Transfer, error) {
	t.mu.Lock()
	t.calls[id]++
	remaining := t.failures[id]
	if remaining > 0 {
		t.failures[id] = remaining - 1
	}
	t.mu.Unlock()
	if remaining > 0 {
		return Transfer{}, fmt.Errorf("%s: %w", id, errTransient)
	}
	return t.fakeTarget.Update(id)
}

func TestRetryHealsTransientUpdateFailures(t *testing.T) {
	base := newFakeTarget(10)
	flaky := &flakyTarget{
		fakeTarget: base,
		failures:   map[string]int{"dev-000": 2, "dev-004": 1, "dev-007": 3},
		calls:      make(map[string]int),
	}
	ctl := NewController(engine.New(engine.Config{Workers: 4}))
	res, err := ctl.Run(flaky, Config{
		Waves: []Wave{{Name: "all", Fraction: 1}},
		Retry: engine.RetryPolicy{Attempts: 3},
		Retryable: func(err error) bool {
			return strings.Contains(err.Error(), "transient")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// dev-007 needed 4 attempts but only 3 were allowed: one failure.
	wave := res.Waves[0]
	if wave.Gate.UpdateFailures != 1 {
		t.Fatalf("update failures = %d, want 1 (only dev-007 exhausts retries)", wave.Gate.UpdateFailures)
	}
	for _, o := range wave.Outcomes {
		switch o.DeviceID {
		case "dev-000":
			if o.Attempts != 3 || o.UpdateErr != "" {
				t.Fatalf("dev-000 attempts=%d err=%q", o.Attempts, o.UpdateErr)
			}
		case "dev-004":
			if o.Attempts != 2 || o.UpdateErr != "" {
				t.Fatalf("dev-004 attempts=%d err=%q", o.Attempts, o.UpdateErr)
			}
		case "dev-007":
			if o.Attempts != 3 || o.UpdateErr == "" {
				t.Fatalf("dev-007 attempts=%d err=%q", o.Attempts, o.UpdateErr)
			}
		default:
			if o.Attempts != 1 {
				t.Fatalf("%s attempts=%d, want 1", o.DeviceID, o.Attempts)
			}
		}
	}
	if flaky.calls["dev-007"] != 3 {
		t.Fatalf("dev-007 called %d times, want 3", flaky.calls["dev-007"])
	}
}

func TestRetryStopsOnPermanentFailure(t *testing.T) {
	base := newFakeTarget(4)
	base.failUpdate["dev-002"] = true // permanent: "device dev-002 offline"
	flaky := &flakyTarget{fakeTarget: base, failures: map[string]int{}, calls: make(map[string]int)}
	ctl := NewController(nil)
	res, err := ctl.Run(flaky, Config{
		Waves:     []Wave{{Name: "all", Fraction: 1}},
		Gate:      Gate{MaxUpdateFailures: 4},
		Retry:     engine.RetryPolicy{Attempts: 5},
		Retryable: func(err error) bool { return strings.Contains(err.Error(), "transient") },
	})
	if err != nil {
		t.Fatal(err)
	}
	if flaky.calls["dev-002"] != 1 {
		t.Fatalf("permanent failure retried %d times, want 1", flaky.calls["dev-002"])
	}
	for _, o := range res.Waves[0].Outcomes {
		if o.DeviceID == "dev-002" && (o.Attempts != 1 || o.UpdateErr == "") {
			t.Fatalf("dev-002 outcome %+v", o)
		}
	}
}
