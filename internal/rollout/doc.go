// Package rollout implements the staged OTA update control plane of
// §III-A: a controller that drives a fleet from one model version to the
// next in configurable waves (canary → cohorts → full fleet), gates each
// wave on post-update fleet health (drift alarms, latency and error
// regressions against the pre-update baseline), and rolls a failing wave
// back to the prior version while earlier, healthy waves keep the update.
//
// The paper's point is that "push a new model" becomes a fleet-scale
// operational problem at the edge: devices are heterogeneous (each re-runs
// variant selection on update), bandwidth is metered (same-topology
// updates ship as sparse weight deltas), and misbehaving versions must be
// caught and reverted from telemetry aggregates alone. The controller is
// deliberately mechanism-free: it orchestrates any Target — internal/core
// adapts a live Platform — and fans each wave out over internal/engine,
// deriving all randomness from (seed, wave, index) so a rollout is
// bit-reproducible at any worker count.
package rollout
