package rollout

import (
	"fmt"
	"math"
	"sort"

	"tinymlops/internal/engine"
	"tinymlops/internal/tensor"
)

// Health is one device's telemetry summary over a reporting window — what
// the gate reads before and after an update. The controller only compares
// these; it never sees raw inputs (§III-B).
type Health struct {
	// Inferences served and Errors (denied or failed queries) in the window.
	Inferences uint64
	Errors     uint64
	// MeanLatencyUS is the modeled mean execution time in microseconds.
	MeanLatencyUS float64
	// DriftAlarm reports a latched on-device drift detector; DriftScore is
	// its current test statistic.
	DriftAlarm bool
	DriftScore float64
}

// Transfer is the accounting of one device's update shipment.
type Transfer struct {
	// ShipBytes went over the radio; FlashBytes were rewritten on device.
	ShipBytes  int64
	FlashBytes int64
	// UsedDelta reports whether a sparse weight delta was shipped instead
	// of the full artifact.
	UsedDelta bool
	// PeerBytes and RegistryBytes split ShipBytes by serving side for
	// swarm-mode transfers: neighbors versus the vendor registry. Both are
	// zero in registry-direct mode, where every shipped byte is registry
	// egress by definition.
	PeerBytes     int64
	RegistryBytes int64
	// FromID/ToID are the version IDs before and after the update. Equal
	// IDs mean the update was a no-op (the device already ran the target
	// bytes): nothing shipped, nothing to roll back.
	FromID, ToID string
}

// Unchanged reports a no-op update: the device was already on the target.
func (t Transfer) Unchanged() bool { return t.FromID == t.ToID }

// Target is the fleet the controller operates on. internal/core adapts a
// live Platform; tests use in-memory fakes. All methods must be safe for
// concurrent use — waves fan out over a worker pool — and deterministic
// given the device ID, so rollouts reproduce at any worker count.
type Target interface {
	// DeviceIDs lists the devices eligible for this rollout.
	DeviceIDs() []string
	// Baseline returns a device's pre-update health (the comparison floor
	// for regression gating).
	Baseline(deviceID string) (Health, error)
	// Update moves the device to the rollout's target version.
	Update(deviceID string) (Transfer, error)
	// Health returns the device's post-update, post-bake health.
	Health(deviceID string) (Health, error)
	// Rollback reverts the device to its pre-update version.
	Rollback(deviceID string) error
}

// Wave is one stage of a rollout: its name and the cumulative fraction of
// the fleet that has the new version once the wave completes.
type Wave struct {
	Name string
	// Fraction in (0, 1]; waves must be strictly increasing. A wave covers
	// the devices between the previous wave's cumulative count and
	// round(Fraction × fleet size).
	Fraction float64
}

// DefaultWaves is the canary → cohort → fleet progression.
func DefaultWaves() []Wave {
	return []Wave{
		{Name: "canary", Fraction: 0.1},
		{Name: "cohort", Fraction: 0.5},
		{Name: "fleet", Fraction: 1.0},
	}
}

// Gate sets the health thresholds a wave must clear. The zero value is the
// default gate: zero tolerance for drift alarms, ≤ 10% error rate, and a
// mean latency regression of at most 50% over the pre-update baseline.
type Gate struct {
	// MaxDriftFraction is the tolerated fraction of wave devices with a
	// latched drift alarm after the bake window (0 = any alarm fails).
	MaxDriftFraction float64
	// MaxErrorRate bounds errors/(inferences+errors) across the wave after
	// the update (0 = default 0.10).
	MaxErrorRate float64
	// MaxLatencyIncrease bounds the mean post/baseline latency ratio to
	// 1+MaxLatencyIncrease (0 = default 0.50).
	MaxLatencyIncrease float64
	// MaxUpdateFailures is the tolerated count of devices whose update
	// itself failed (offline, battery, fit); exceeding it fails the wave.
	MaxUpdateFailures int
}

func (g Gate) withDefaults() Gate {
	if g.MaxErrorRate == 0 {
		g.MaxErrorRate = 0.10
	}
	if g.MaxLatencyIncrease == 0 {
		g.MaxLatencyIncrease = 0.50
	}
	return g
}

// Config controls one rollout.
type Config struct {
	// Waves defaults to DefaultWaves().
	Waves []Wave
	// Gate thresholds (zero value = defaults, see Gate).
	Gate Gate
	// Seed drives the deterministic wave assignment: devices are sorted by
	// ID, then shuffled by a Seed-keyed permutation so canary membership is
	// unbiased but reproducible.
	Seed uint64
	// Bake, when non-nil, runs between a wave's update and its gate — the
	// "watch the new version in the wild" window. The caller drives
	// representative traffic through the listed devices; the gate then
	// reads the health that traffic produced.
	Bake func(wave Wave, deviceIDs []string) error
	// BeforeWave, when non-nil, runs serially before a wave's update
	// fan-out. The fault plane uses it to impose each wave's weather
	// (connectivity, batteries, crash injectors) on the fleet — churn
	// between waves lives here.
	BeforeWave func(wave Wave, deviceIDs []string)
	// AfterWave, when non-nil, runs serially after a wave passes its gate.
	// The swarm distribution plane promotes the wave's freshly-updated
	// devices to chunk seeders here, so they serve the next wave; a failed
	// (rolled-back) wave never reaches it.
	AfterWave func(wave Wave, deviceIDs []string)
	// Retry bounds per-device update attempts within a wave (zero value =
	// a single attempt). Retries run inline in the device's own indexed
	// task with a deterministic backoff schedule, so a flaky fleet still
	// rolls out bit-identically at any worker count.
	Retry engine.RetryPolicy
	// Retryable classifies update errors worth another attempt (nil
	// retries everything). Pass a transient-fault classifier so permanent
	// failures — no credit, topology mismatch — fail fast.
	Retryable func(error) bool
}

// DeviceOutcome is one device's result within a wave.
type DeviceOutcome struct {
	DeviceID string
	Transfer Transfer
	// UpdateErr is the update failure, if any ("" = updated). A panic in
	// Target.Update is captured here too — a device left in an unknown
	// state must count as a failure, not a healthy no-op.
	UpdateErr string
	// Attempts is how many update tries the device took (1 = first try
	// succeeded; >1 means the retry policy recovered a transient fault).
	Attempts int
	// HealthErr records a failed post-bake health read. An unreadable
	// device cannot prove it is healthy, so the gate counts it against
	// the update-failure tolerance instead of assuming zero errors.
	HealthErr string
	// RolledBack reports whether the gate failure reverted this device.
	RolledBack bool
	// RollbackErr records a failed revert — the operational worst case,
	// surfaced loudly rather than swallowed.
	RollbackErr string
}

// GateDecision is the gate's verdict over one wave.
type GateDecision struct {
	Pass bool
	// Reasons lists every threshold that failed, in a fixed order.
	Reasons []string
	// Aggregates behind the verdict.
	Devices        int
	UpdateFailures int
	HealthFailures int
	DriftAlarms    int
	ErrorRate      float64
	LatencyRatio   float64
}

// WaveResult is one wave's full record.
type WaveResult struct {
	Wave      Wave
	DeviceIDs []string
	Outcomes  []DeviceOutcome
	Gate      GateDecision
	// RolledBack reports whether this wave was reverted.
	RolledBack bool
}

// Result is the whole rollout's record.
type Result struct {
	Waves []WaveResult
	// Completed is true when every wave passed its gate.
	Completed bool
	// Transfer accounting across all waves. TotalPeerBytes and
	// TotalRegistryBytes carry the swarm-mode source split (zero in
	// registry-direct mode, where TotalShipBytes is all registry egress).
	TotalShipBytes     int64
	TotalFlashBytes    int64
	TotalPeerBytes     int64
	TotalRegistryBytes int64
	DeltaTransfers     int
	FullTransfers      int
}

// Controller runs staged rollouts on a worker pool.
type Controller struct {
	eng *engine.Engine
}

// NewController returns a controller fanning out on eng (nil = all cores).
func NewController(eng *engine.Engine) *Controller {
	if eng == nil {
		eng = engine.Default()
	}
	return &Controller{eng: eng}
}

// assignWaves sorts the device IDs, shuffles them with a seed-keyed
// permutation and slices them into per-wave groups by cumulative fraction.
// Sorting first makes the assignment a pure function of (fleet, seed),
// independent of Target iteration order.
func assignWaves(ids []string, waves []Wave, seed uint64) ([][]string, error) {
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	rng := tensor.NewRNG(seed)
	perm := rng.Perm(len(sorted))
	shuffled := make([]string, len(sorted))
	for i, p := range perm {
		shuffled[i] = sorted[p]
	}
	out := make([][]string, len(waves))
	prevFrac, prevEnd := 0.0, 0
	for i, w := range waves {
		if w.Fraction <= prevFrac || w.Fraction > 1 {
			return nil, fmt.Errorf("rollout: wave %q fraction %.3f must be in (%.3f, 1]", w.Name, w.Fraction, prevFrac)
		}
		end := int(math.Round(w.Fraction * float64(len(shuffled))))
		if end <= prevEnd && prevEnd < len(shuffled) {
			end = prevEnd + 1 // every wave advances when devices remain
		}
		if end > len(shuffled) {
			end = len(shuffled)
		}
		out[i] = shuffled[prevEnd:end]
		prevFrac, prevEnd = w.Fraction, end
	}
	return out, nil
}

// Run drives the target through the configured waves. It stops at the
// first wave whose gate fails, rolling that wave (and only that wave) back
// — earlier waves passed their gates on real traffic and keep the update.
// The returned Result is deterministic for a given (target state, config),
// whatever the controller's worker count.
func (c *Controller) Run(t Target, cfg Config) (*Result, error) {
	waves := cfg.Waves
	if len(waves) == 0 {
		waves = DefaultWaves()
	}
	gate := cfg.Gate.withDefaults()
	ids := t.DeviceIDs()
	if len(ids) == 0 {
		return nil, fmt.Errorf("rollout: no eligible devices")
	}
	groups, err := assignWaves(ids, waves, cfg.Seed)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	for wi, wave := range waves {
		group := groups[wi]
		wr := WaveResult{Wave: wave, DeviceIDs: group}
		if len(group) == 0 {
			wr.Gate = GateDecision{Pass: true}
			res.Waves = append(res.Waves, wr)
			continue
		}
		if cfg.BeforeWave != nil {
			cfg.BeforeWave(wave, append([]string(nil), group...))
		}

		// Capture each device's pre-update baseline, then update, in one
		// indexed fan-out: results land in slots keyed by index, so the
		// outcome is schedule-independent. The outcome slot is written in
		// a defer so a panicking Target.Update is recorded as a failure
		// (with its message) rather than surviving as a healthy-looking
		// zero outcome.
		baselines := make([]Health, len(group))
		wr.Outcomes = make([]DeviceOutcome, len(group))
		_ = c.eng.ForEach(len(group), func(i int) error {
			id := group[i]
			out := DeviceOutcome{DeviceID: id, UpdateErr: "update task aborted"}
			defer func() {
				if r := recover(); r != nil {
					out.UpdateErr = fmt.Sprintf("update panicked: %v", r)
				}
				wr.Outcomes[i] = out
			}()
			if b, berr := t.Baseline(id); berr == nil {
				baselines[i] = b
			}
			// Transient faults (a dropped link, a crash mid-flash) retry
			// inline under the deterministic policy. An interrupted install
			// that resumes on the next attempt is the whole point: the
			// device finishes flashing the remainder instead of failing the
			// wave or re-shipping the image from byte zero.
			var tr Transfer
			rr, uerr := engine.Retry(cfg.Retry, cfg.Retryable, func(int) error {
				var terr error
				tr, terr = t.Update(id)
				return terr
			})
			out.Attempts = rr.Attempts
			if uerr != nil {
				out.UpdateErr = uerr.Error()
			} else {
				out.UpdateErr = ""
				out.Transfer = tr
			}
			return nil
		})
		for _, o := range wr.Outcomes {
			if o.UpdateErr != "" || o.Transfer.Unchanged() {
				continue
			}
			res.TotalShipBytes += o.Transfer.ShipBytes
			res.TotalFlashBytes += o.Transfer.FlashBytes
			res.TotalPeerBytes += o.Transfer.PeerBytes
			res.TotalRegistryBytes += o.Transfer.RegistryBytes
			if o.Transfer.UsedDelta {
				res.DeltaTransfers++
			} else {
				res.FullTransfers++
			}
		}

		// Bake: the caller exercises the new version on the wave devices. A
		// bake failure means the wave was never judged on real traffic, so
		// its devices are reverted like a failed gate before the error is
		// surfaced — they must not keep running an ungated version.
		if cfg.Bake != nil {
			if err := cfg.Bake(wave, append([]string(nil), group...)); err != nil {
				wr.Gate = GateDecision{Devices: len(group), Reasons: []string{fmt.Sprintf("bake failed: %v", err)}}
				c.rollbackWave(t, group, &wr)
				res.Waves = append(res.Waves, wr)
				return res, fmt.Errorf("rollout: bake %q: %w", wave.Name, err)
			}
		}

		// Read post-bake health and judge the wave. A failed read is
		// recorded on the outcome: an unreachable device must not pass the
		// gate by looking like a zero-error idle one.
		posts := make([]Health, len(group))
		_ = c.eng.ForEach(len(group), func(i int) error {
			if wr.Outcomes[i].UpdateErr != "" {
				return nil
			}
			h, herr := t.Health(group[i])
			if herr != nil {
				wr.Outcomes[i].HealthErr = herr.Error()
				return nil
			}
			posts[i] = h
			return nil
		})
		wr.Gate = judge(gate, wr.Outcomes, baselines, posts)

		if !wr.Gate.Pass {
			// Roll the failing wave back; earlier waves keep the update.
			c.rollbackWave(t, group, &wr)
			res.Waves = append(res.Waves, wr)
			return res, nil
		}
		if cfg.AfterWave != nil {
			cfg.AfterWave(wave, append([]string(nil), group...))
		}
		res.Waves = append(res.Waves, wr)
	}
	res.Completed = true
	return res, nil
}

// rollbackWave reverts every device the wave actually changed — update
// failures were never on the new version and no-op updates changed
// nothing, so neither is touched.
func (c *Controller) rollbackWave(t Target, group []string, wr *WaveResult) {
	wr.RolledBack = true
	_ = c.eng.ForEach(len(group), func(i int) error {
		if wr.Outcomes[i].UpdateErr != "" || wr.Outcomes[i].Transfer.Unchanged() {
			return nil
		}
		if rerr := t.Rollback(group[i]); rerr != nil {
			wr.Outcomes[i].RollbackErr = rerr.Error()
		} else {
			wr.Outcomes[i].RolledBack = true
		}
		return nil
	})
}

// judge evaluates one wave's gate from index-aligned outcomes, baselines
// and post-bake health. Pure and serial: determinism lives here.
func judge(g Gate, outcomes []DeviceOutcome, baselines, posts []Health) GateDecision {
	d := GateDecision{Devices: len(outcomes)}
	var inf, errs uint64
	var ratioSum float64
	var ratioN int
	for i := range outcomes {
		if outcomes[i].UpdateErr != "" {
			d.UpdateFailures++
			continue
		}
		if outcomes[i].HealthErr != "" {
			d.HealthFailures++
			continue
		}
		p := posts[i]
		if p.DriftAlarm {
			d.DriftAlarms++
		}
		inf += p.Inferences
		errs += p.Errors
		if b := baselines[i]; b.MeanLatencyUS > 0 && p.MeanLatencyUS > 0 {
			ratioSum += p.MeanLatencyUS / b.MeanLatencyUS
			ratioN++
		}
	}
	if inf+errs > 0 {
		d.ErrorRate = float64(errs) / float64(inf+errs)
	}
	d.LatencyRatio = 1
	if ratioN > 0 {
		d.LatencyRatio = ratioSum / float64(ratioN)
	}
	// Drift fraction is over devices that updated AND reported health.
	updated := len(outcomes) - d.UpdateFailures - d.HealthFailures
	if d.UpdateFailures > g.MaxUpdateFailures {
		d.Reasons = append(d.Reasons, fmt.Sprintf("update failures %d > %d", d.UpdateFailures, g.MaxUpdateFailures))
	}
	if d.HealthFailures > g.MaxUpdateFailures {
		d.Reasons = append(d.Reasons, fmt.Sprintf("unreadable post-update health on %d devices > %d", d.HealthFailures, g.MaxUpdateFailures))
	}
	if updated > 0 && float64(d.DriftAlarms)/float64(updated) > g.MaxDriftFraction {
		d.Reasons = append(d.Reasons, fmt.Sprintf("drift alarms on %d/%d devices exceed tolerance %.2f", d.DriftAlarms, updated, g.MaxDriftFraction))
	}
	if d.ErrorRate > g.MaxErrorRate {
		d.Reasons = append(d.Reasons, fmt.Sprintf("error rate %.3f > %.3f", d.ErrorRate, g.MaxErrorRate))
	}
	if d.LatencyRatio > 1+g.MaxLatencyIncrease {
		d.Reasons = append(d.Reasons, fmt.Sprintf("latency ratio %.2f > %.2f", d.LatencyRatio, 1+g.MaxLatencyIncrease))
	}
	d.Pass = len(d.Reasons) == 0
	return d
}
