package metering

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Voucher is a prepaid query package, bound to one device and one model so
// it cannot be replayed elsewhere.
type Voucher struct {
	// ID is the voucher serial number.
	ID string
	// DeviceID and ModelID bind the voucher to a deployment.
	DeviceID string
	ModelID  string
	// Queries is the prepaid quota.
	Queries uint64
	// Seq is the issuer's per-device issue counter. Keeping the counter
	// per device (rather than one global sequence) makes voucher identity
	// a pure function of the deploy plan, independent of the order a
	// worker pool happens to provision devices in.
	Seq uint64
	// Sig is the issuer's HMAC over all fields above.
	Sig []byte
}

// Issuer mints and verifies vouchers with a vendor key. Issue is safe for
// concurrent use: the platform provisions whole fleets from a worker pool.
type Issuer struct {
	key []byte

	mu  sync.Mutex
	seq map[string]uint64 // per-device issue counters
}

// NewIssuer returns an issuer signing with the given vendor key.
func NewIssuer(key []byte) (*Issuer, error) {
	if len(key) < 16 {
		return nil, errors.New("metering: issuer key must be at least 16 bytes")
	}
	return &Issuer{key: append([]byte(nil), key...), seq: make(map[string]uint64)}, nil
}

// Issue mints a voucher for queries prepaid queries of modelID on deviceID.
func (is *Issuer) Issue(deviceID, modelID string, queries uint64) (Voucher, error) {
	if queries == 0 {
		return Voucher{}, errors.New("metering: zero-query voucher")
	}
	if deviceID == "" || modelID == "" {
		return Voucher{}, errors.New("metering: voucher requires device and model IDs")
	}
	is.mu.Lock()
	is.seq[deviceID]++
	seq := is.seq[deviceID]
	is.mu.Unlock()
	v := Voucher{
		ID:       fmt.Sprintf("v-%s-%d", deviceID, seq),
		DeviceID: deviceID,
		ModelID:  modelID,
		Queries:  queries,
		Seq:      seq,
	}
	v.Sig = voucherMAC(is.key, &v)
	return v, nil
}

// Verify checks a voucher's signature.
func (is *Issuer) Verify(v *Voucher) bool {
	return hmac.Equal(v.Sig, voucherMAC(is.key, v))
}

func voucherMAC(key []byte, v *Voucher) []byte {
	mac := hmac.New(sha256.New, key)
	for _, s := range []string{v.ID, v.DeviceID, v.ModelID} {
		var ln [4]byte
		binary.LittleEndian.PutUint32(ln[:], uint32(len(s)))
		mac.Write(ln[:])
		mac.Write([]byte(s))
	}
	var nums [16]byte
	binary.LittleEndian.PutUint64(nums[:8], v.Queries)
	binary.LittleEndian.PutUint64(nums[8:], v.Seq)
	mac.Write(nums[:])
	return mac.Sum(nil)
}
