package metering

import (
	"encoding/binary"
	"errors"
	"fmt"

	"tinymlops/internal/engine"
)

// Verifiable billing (§III-C + §VI): the usage hash chain proves *how
// many* queries a device charged, but not that the charges correspond to
// real inference. Attestations close that gap. A deterministic sample of
// the charges in a settlement report — selected by a seed derived from
// the report's terminal chain head, so a device cannot know in advance
// which charges will be audited, and cannot append a charge without
// re-randomizing the whole sample — each carry a sum-check proof of the
// deployment's integer dense layer, bound to the (voucher, model
// version, sequence, chain entry) it attests. The vendor verifies the
// sample during settlement; forging a valid proof costs at least as much
// as serving the query, so inflating tick counts stops paying.
//
// This package stays proof-system-agnostic: an Attestation carries
// opaque proof bytes and the Settler delegates checking to an injected
// AttestationVerifier (core wires it to verify.BatchVerifier).

// Attestation is the device's verifiable claim for one sampled charge.
type Attestation struct {
	// Seq is the charge sequence this attests (must be sampled).
	Seq uint64
	// ModelID names the model version the proof was produced against —
	// bound into the proof context, so relabeling is detected even when
	// two versions share the proved layer's weights.
	ModelID string
	// Input is the claimed quantized input row. The vendor never sees the
	// real query (it stays on-device); soundness is economic — producing
	// a valid proof for *any* input costs a real inference.
	Input []int8
	// Claimed is the claimed integer accumulator row for the proved layer.
	Claimed []int64
	// Proof is the serialized sum-check proof, bound to
	// AttestationContext(voucher, ModelID, Seq, entry hash).
	Proof []byte
}

// AttestedReport is a settlement report plus the proof sample. It embeds
// Report, so the wire encoding is a superset: a plain Report decodes as
// an AttestedReport with no attestations.
type AttestedReport struct {
	Report
	Attestations []Attestation
}

// AttestationContext derives the transcript context a proof for one
// charge is bound to. Both sides compute it independently; any
// disagreement (replayed entry, relabeled model version, transplanted
// voucher) makes verification fail.
func AttestationContext(voucherID, modelID string, seq uint64, entryHash [32]byte) []byte {
	buf := make([]byte, 0, len("tinymlops/attest|")+len(voucherID)+len(modelID)+2+8+32)
	buf = append(buf, "tinymlops/attest|"...)
	buf = append(buf, voucherID...)
	buf = append(buf, '|')
	buf = append(buf, modelID...)
	buf = append(buf, '|')
	var s [8]byte
	binary.LittleEndian.PutUint64(s[:], seq)
	buf = append(buf, s[:]...)
	buf = append(buf, entryHash[:]...)
	return buf
}

// Sampled reports whether charge seq under voucherID is in the audit
// sample of a report whose terminal chain head is head. The draw is a
// pure function of (head, seq, voucherID), so device and vendor agree
// bit-for-bit — and because head covers every entry in the report, a
// device cannot craft a report where only charges it can prove are
// sampled. rate n samples ≈ 1/n of charges; rate ≤ 1 samples all.
func Sampled(head [32]byte, voucherID string, seq uint64, rate int) bool {
	if rate <= 1 {
		return true
	}
	root := binary.LittleEndian.Uint64(head[:8])
	return engine.SeedForID(root, seq, voucherID)%uint64(rate) == 0
}

// NextEntry extends a chain head by one charge. The meter does this
// internally; it is exported for tests and fault injectors that need to
// fabricate structurally valid chain segments.
func NextEntry(head [32]byte, seq, tick uint64, voucherID string) Entry {
	return Entry{Seq: seq, Tick: tick, Hash: chainHash(head, seq, tick, voucherID)}
}

// Attestor produces the attestation for one sampled charge, given the
// charge's chain entry hash. Installed on a Meter by the serving layer,
// which holds the model weights and the retained evidence.
type Attestor func(seq uint64, entryHash [32]byte) (Attestation, error)

// SetAttestor enables verified billing on the meter: BuildAttestedReport
// will sample charges at the given rate and call fn for each. fn runs
// without the meter lock held.
func (m *Meter) SetAttestor(rate int, fn Attestor) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.attRate = rate
	m.attestor = fn
}

// BuildAttestedReport snapshots the unsettled usage like BuildReport and
// attaches proofs for the deterministic sample of its charges. Without
// an attestor it degrades to a bare report.
func (m *Meter) BuildAttestedReport() (AttestedReport, error) {
	m.mu.Lock()
	entries := make([]Entry, len(m.unsettled))
	copy(entries, m.unsettled)
	rep := AttestedReport{Report: Report{
		Voucher: m.voucher,
		FromSeq: m.settledSeq + 1,
		Entries: entries,
		Used:    m.used,
	}}
	attestor := m.attestor
	rate := m.attRate
	head := m.settledHead
	voucherID := m.voucher.ID
	m.mu.Unlock()

	if attestor == nil {
		return rep, nil
	}
	if len(entries) > 0 {
		head = entries[len(entries)-1].Hash
	}
	for _, e := range entries {
		if !Sampled(head, voucherID, e.Seq, rate) {
			continue
		}
		att, err := attestor(e.Seq, e.Hash)
		if err != nil {
			return rep, fmt.Errorf("metering: attest seq %d: %w", e.Seq, err)
		}
		att.Seq = e.Seq
		rep.Attestations = append(rep.Attestations, att)
	}
	return rep, nil
}

// AttestationCheck pairs an attestation with the chain entry hash the
// settler resolved for its sequence — the binding the verifier folds
// into the proof context.
type AttestationCheck struct {
	Att       Attestation
	EntryHash [32]byte
}

// AttestationVerifier checks a batch of attestations for one voucher and
// returns one verdict per item (nil = proof valid). Implemented by the
// serving layer on top of the verify package.
type AttestationVerifier func(v Voucher, items []AttestationCheck) []error

// ErrProofInvalid is the sentinel wrapped by attestation verifiers when
// a proof fails cryptographic verification (as opposed to being
// malformed or referencing an unknown model).
var ErrProofInvalid = errors.New("metering: inference proof invalid")

// SetAttestation arms the settler's verified-billing path: settlement
// reports must carry valid proofs for every sampled charge, checked by
// verifier. rate must match the device-side SetAttestor rate.
func (s *Settler) SetAttestation(rate int, verifier AttestationVerifier) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.attRate = rate
	s.attVerifier = verifier
}
