package metering

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
)

var vendorKey = []byte("vendor-signing-key-0123456789abcdef")

func issuer(t *testing.T) *Issuer {
	t.Helper()
	is, err := NewIssuer(vendorKey)
	if err != nil {
		t.Fatal(err)
	}
	return is
}

func TestIssueAndVerifyVoucher(t *testing.T) {
	is := issuer(t)
	v, err := is.Issue("dev-1", "model-a", 100)
	if err != nil {
		t.Fatal(err)
	}
	if !is.Verify(&v) {
		t.Fatal("genuine voucher rejected")
	}
	// Any field change breaks the signature.
	forged := v
	forged.Queries = 1_000_000
	if is.Verify(&forged) {
		t.Fatal("quota-inflated voucher accepted")
	}
	rebound := v
	rebound.DeviceID = "dev-2"
	if is.Verify(&rebound) {
		t.Fatal("device-rebound voucher accepted")
	}
}

func TestIssuerValidation(t *testing.T) {
	if _, err := NewIssuer([]byte("short")); err == nil {
		t.Fatal("accepted short key")
	}
	is := issuer(t)
	if _, err := is.Issue("", "m", 10); err == nil {
		t.Fatal("accepted empty device ID")
	}
	if _, err := is.Issue("d", "m", 0); err == nil {
		t.Fatal("accepted zero-query voucher")
	}
}

func TestMeterEnforcesQuotaOffline(t *testing.T) {
	is := issuer(t)
	v, _ := is.Issue("dev-1", "model-a", 5)
	m := NewMeter(v)
	for i := 0; i < 5; i++ {
		if err := m.Charge(uint64(i)); err != nil {
			t.Fatalf("charge %d: %v", i, err)
		}
	}
	if err := m.Charge(5); !errors.Is(err, ErrQuotaExhausted) {
		t.Fatalf("6th charge: %v, want quota exhausted", err)
	}
	if m.Used() != 5 || m.Remaining() != 0 {
		t.Fatalf("used=%d remaining=%d", m.Used(), m.Remaining())
	}
}

func TestChainVerifies(t *testing.T) {
	is := issuer(t)
	v, _ := is.Issue("dev-1", "model-a", 10)
	m := NewMeter(v)
	for i := 0; i < 7; i++ {
		m.Charge(uint64(i * 10)) //nolint:errcheck
	}
	r := m.BuildReport()
	if err := VerifyChain(v, GenesisHead(v), r.Entries); err != nil {
		t.Fatal(err)
	}
	// Tamper with an entry: verification must fail.
	r.Entries[3].Tick = 999
	if err := VerifyChain(v, GenesisHead(v), r.Entries); err == nil {
		t.Fatal("tampered chain verified")
	}
}

func TestSettlementHappyPath(t *testing.T) {
	is := issuer(t)
	settler := NewSettler(is)
	v, _ := is.Issue("dev-1", "model-a", 100)
	m := NewMeter(v)
	for i := 0; i < 10; i++ {
		m.Charge(uint64(i)) //nolint:errcheck
	}
	receipt := settler.Settle(m.BuildReport())
	if !receipt.OK || receipt.AckSeq != 10 {
		t.Fatalf("receipt = %+v", receipt)
	}
	m.Acknowledge(receipt.AckSeq)
	// Continue charging and settle the increment only.
	for i := 10; i < 15; i++ {
		m.Charge(uint64(i)) //nolint:errcheck
	}
	r2 := m.BuildReport()
	if r2.FromSeq != 11 || len(r2.Entries) != 5 {
		t.Fatalf("incremental report = from %d, %d entries", r2.FromSeq, len(r2.Entries))
	}
	receipt2 := settler.Settle(r2)
	if !receipt2.OK || receipt2.AckSeq != 15 {
		t.Fatalf("receipt2 = %+v", receipt2)
	}
	used, ok := settler.SettledUsage(v.ID)
	if !ok || used != 15 {
		t.Fatalf("settled usage = %d", used)
	}
}

func TestSettlementDetectsRollback(t *testing.T) {
	is := issuer(t)
	settler := NewSettler(is)
	v, _ := is.Issue("dev-1", "model-a", 100)
	m := NewMeter(v)
	for i := 0; i < 10; i++ {
		m.Charge(uint64(i)) //nolint:errcheck
	}
	r := m.BuildReport()
	if rec := settler.Settle(r); !rec.OK {
		t.Fatalf("first settle: %+v", rec)
	}
	// Replay the same report (the device "forgot" it paid).
	rec := settler.Settle(r)
	if rec.OK || rec.Reason != ReasonRollback {
		t.Fatalf("replayed report = %+v, want rollback", rec)
	}
	// A reset meter (fresh chain) also restarts below the settled seq.
	m2 := NewMeter(v)
	m2.Charge(0) //nolint:errcheck
	rec2 := settler.Settle(m2.BuildReport())
	if rec2.OK || rec2.Reason != ReasonRollback {
		t.Fatalf("reset-meter report = %+v, want rollback", rec2)
	}
	if len(settler.TamperEvents()) != 2 {
		t.Fatalf("tamper log = %v", settler.TamperEvents())
	}
}

func TestSettlementDetectsForgedEntries(t *testing.T) {
	is := issuer(t)
	settler := NewSettler(is)
	v, _ := is.Issue("dev-1", "model-a", 100)
	m := NewMeter(v)
	for i := 0; i < 5; i++ {
		m.Charge(uint64(i)) //nolint:errcheck
	}
	r := m.BuildReport()
	// The device under-reports by dropping the last two entries but keeps
	// its cumulative claim: usage inconsistency.
	r2 := r
	r2.Entries = r.Entries[:3]
	if rec := settler.Settle(r2); rec.OK || rec.Reason != ReasonBadUsage {
		t.Fatalf("under-report = %+v", rec)
	}
	// Fabricated hash breaks the chain.
	r3 := m.BuildReport()
	r3.Entries[2].Hash[0] ^= 1
	if rec := settler.Settle(r3); rec.OK || rec.Reason != ReasonBadChain {
		t.Fatalf("forged hash = %+v", rec)
	}
}

func TestSettlementDetectsForgedVoucherAndOverQuota(t *testing.T) {
	is := issuer(t)
	settler := NewSettler(is)
	v, _ := is.Issue("dev-1", "model-a", 3)
	forged := v
	forged.Queries = 100
	m := NewMeter(forged)
	m.Charge(1) //nolint:errcheck
	if rec := settler.Settle(m.BuildReport()); rec.OK || rec.Reason != ReasonBadVoucher {
		t.Fatalf("forged voucher = %+v", rec)
	}
	// Over-quota claim with a *valid* voucher: the device hacked its local
	// meter to ignore the quota. Chain verifies but usage exceeds quota.
	m2 := NewMeter(v)
	for i := 0; i < 3; i++ {
		m2.Charge(uint64(i)) //nolint:errcheck
	}
	r := m2.BuildReport()
	// Hand-extend the chain beyond the quota as an attacker would.
	head := r.Entries[len(r.Entries)-1].Hash
	e := Entry{Seq: 4, Tick: 99}
	e.Hash = chainHash(head, e.Seq, e.Tick, v.ID)
	r.Entries = append(r.Entries, e)
	r.Used = 4
	if rec := settler.Settle(r); rec.OK || rec.Reason != ReasonOverQuota {
		t.Fatalf("over-quota = %+v", rec)
	}
}

func TestSettlementOverTCP(t *testing.T) {
	is := issuer(t)
	settler := NewSettler(is)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(l, settler)
	defer srv.Close()

	v, _ := is.Issue("dev-1", "model-a", 50)
	m := NewMeter(v)
	for i := 0; i < 20; i++ {
		m.Charge(uint64(i)) //nolint:errcheck
	}
	if err := MustSettle(srv.Addr(), m); err != nil {
		t.Fatal(err)
	}
	used, ok := settler.SettledUsage(v.ID)
	if !ok || used != 20 {
		t.Fatalf("settled usage over TCP = %d", used)
	}
	// Second settlement with no new charges is a rollback replay
	// (FromSeq == settled seq + 1 but empty entries and matching used is
	// fine — verify behavior: empty incremental report).
	if err := MustSettle(srv.Addr(), m); err != nil {
		t.Fatalf("empty incremental settle should succeed: %v", err)
	}
}

func TestSettlementTCPRejectsTamper(t *testing.T) {
	is := issuer(t)
	settler := NewSettler(is)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(l, settler)
	defer srv.Close()

	v, _ := is.Issue("dev-1", "model-a", 50)
	m := NewMeter(v)
	m.Charge(1) //nolint:errcheck
	r := m.BuildReport()
	r.Entries[0].Hash[0] ^= 1
	receipt, err := SettleOverTCP(srv.Addr(), r)
	if err != nil {
		t.Fatal(err)
	}
	if receipt.OK || receipt.Reason != ReasonBadChain {
		t.Fatalf("receipt = %+v", receipt)
	}
}

func TestConcurrentCharges(t *testing.T) {
	is := issuer(t)
	v, _ := is.Issue("dev-1", "model-a", 1000)
	m := NewMeter(v)
	var wg sync.WaitGroup
	var denied int64
	var mu sync.Mutex
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := m.Charge(uint64(i)); err != nil {
					mu.Lock()
					denied++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if m.Used() != 1000 {
		t.Fatalf("used = %d, want exactly 1000", m.Used())
	}
	if denied != 600 {
		t.Fatalf("denied = %d, want 600", denied)
	}
	// The concurrent chain must still verify.
	r := m.BuildReport()
	if err := VerifyChain(v, GenesisHead(v), r.Entries); err != nil {
		t.Fatal(err)
	}
}

func TestChargeOverheadIsSmall(t *testing.T) {
	// Sanity check that metering adds microsecond-scale overhead, the E5
	// claim; the benchmark in bench_test.go quantifies it precisely.
	is := issuer(t)
	v, _ := is.Issue("dev-1", "model-a", 100000)
	m := NewMeter(v)
	for i := 0; i < 10000; i++ {
		if err := m.Charge(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGapDetection(t *testing.T) {
	is := issuer(t)
	settler := NewSettler(is)
	v, _ := is.Issue("dev-1", "model-a", 100)
	m := NewMeter(v)
	for i := 0; i < 5; i++ {
		m.Charge(uint64(i)) //nolint:errcheck
	}
	r := m.BuildReport()
	// Drop the first two entries: the report starts above the server seq.
	r.Entries = r.Entries[2:]
	r.FromSeq = 3
	rec := settler.Settle(r)
	if rec.OK || rec.Reason != ReasonGap {
		t.Fatalf("gap report = %+v", rec)
	}
	if !strings.Contains(strings.Join(settler.TamperEvents(), ";"), "gap") {
		t.Fatal("gap not logged")
	}
}
