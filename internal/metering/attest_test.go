package metering

import (
	"crypto/sha256"
	"fmt"
	"net"
	"sync"
	"testing"

	"tinymlops/internal/engine"
	"tinymlops/internal/tensor"
	"tinymlops/internal/verify"
)

// stubAttestor builds attestations whose "proof" is a digest of the
// context — enough to exercise the settlement plumbing without the real
// proof system (that pairing is tested below and in core).
func stubAttestor(voucherID, modelID string) Attestor {
	return func(seq uint64, entryHash [32]byte) (Attestation, error) {
		ctx := AttestationContext(voucherID, modelID, seq, entryHash)
		d := sha256.Sum256(ctx)
		return Attestation{ModelID: modelID, Proof: d[:]}, nil
	}
}

func stubVerifier() AttestationVerifier {
	return func(v Voucher, items []AttestationCheck) []error {
		errs := make([]error, len(items))
		for i, it := range items {
			ctx := AttestationContext(v.ID, it.Att.ModelID, it.Att.Seq, it.EntryHash)
			d := sha256.Sum256(ctx)
			if string(d[:]) != string(it.Att.Proof) {
				errs[i] = fmt.Errorf("%w: digest mismatch", ErrProofInvalid)
			}
		}
		return errs
	}
}

func attestedFixture(t *testing.T, rate int) (*Meter, *Settler, Voucher) {
	t.Helper()
	issuer, err := NewIssuer([]byte("attest-test-key-0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	v, err := issuer.Issue("dev-a", "model-v1", 100)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMeter(v)
	m.SetAttestor(rate, stubAttestor(v.ID, "model-v1"))
	s := NewSettler(issuer)
	s.SetAttestation(rate, stubVerifier())
	return m, s, v
}

func TestAttestedSettlementHonest(t *testing.T) {
	m, s, v := attestedFixture(t, 3)
	for i := 0; i < 20; i++ {
		if err := m.Charge(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := m.BuildAttestedReport()
	if err != nil {
		t.Fatal(err)
	}
	// The device and settler must agree on the sample, rooted at the
	// report's terminal head.
	head := rep.Entries[len(rep.Entries)-1].Hash
	want := 0
	for _, e := range rep.Entries {
		if Sampled(head, v.ID, e.Seq, 3) {
			want++
		}
	}
	if len(rep.Attestations) != want {
		t.Fatalf("report carries %d attestations, sample is %d", len(rep.Attestations), want)
	}
	rc := s.SettleAttested(rep)
	if !rc.OK {
		t.Fatalf("honest attested report rejected: %s", rc.Reason)
	}
	if rc.ProofsChecked != want {
		t.Fatalf("receipt says %d proofs checked, want %d", rc.ProofsChecked, want)
	}
	m.Acknowledge(rc.AckSeq)
	if got, _ := s.LastReceipt(v.ID); !got.OK {
		t.Fatal("LastReceipt lost the verdict")
	}
	// Second window: the settled head must line up on both sides so an
	// empty-sample or mid-stream report still verifies.
	for i := 20; i < 29; i++ {
		if err := m.Charge(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	rep2, err := m.BuildAttestedReport()
	if err != nil {
		t.Fatal(err)
	}
	if rc2 := s.SettleAttested(rep2); !rc2.OK {
		t.Fatalf("second attested window rejected: %s", rc2.Reason)
	}
}

func TestAttestedSettlementFraud(t *testing.T) {
	charge := func(t *testing.T, m *Meter, n int) AttestedReport {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := m.Charge(uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := m.BuildAttestedReport()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	t.Run("missing proof", func(t *testing.T) {
		m, s, _ := attestedFixture(t, 2)
		rep := charge(t, m, 16)
		if len(rep.Attestations) == 0 {
			t.Fatal("fixture sampled nothing")
		}
		rep.Attestations = rep.Attestations[:len(rep.Attestations)-1]
		if rc := s.SettleAttested(rep); rc.OK || rc.Reason != ReasonProofMissing {
			t.Fatalf("got %+v, want %s", rc, ReasonProofMissing)
		}
	})

	t.Run("overclaimed entries are sampled too", func(t *testing.T) {
		// A device appending fabricated charges (without proofs for the
		// newly sampled ones) must be caught: the sample is rooted at the
		// terminal head, which the fabricated entries move.
		m, s, v := attestedFixture(t, 2)
		rep := charge(t, m, 10)
		head := rep.Entries[len(rep.Entries)-1].Hash
		for i := 0; i < 6; i++ {
			e := NextEntry(head, rep.Used+1, 99, v.ID)
			rep.Entries = append(rep.Entries, e)
			rep.Used++
			head = e.Hash
		}
		if rc := s.SettleAttested(rep); rc.OK || (rc.Reason != ReasonProofMissing && rc.Reason != ReasonProofInvalid) {
			t.Fatalf("inflated report accepted or misclassified: %+v", rc)
		}
	})

	t.Run("stale replayed proof", func(t *testing.T) {
		m, s, _ := attestedFixture(t, 2)
		rep := charge(t, m, 16)
		if len(rep.Attestations) < 2 {
			t.Fatal("fixture sampled too little")
		}
		// Replay the first sampled proof in place of the last: duplicate
		// seq — classic stale-proof replay.
		rep.Attestations[len(rep.Attestations)-1] = rep.Attestations[0]
		if rc := s.SettleAttested(rep); rc.OK || rc.Reason != ReasonProofInvalid {
			t.Fatalf("got %+v, want %s", rc, ReasonProofInvalid)
		}
	})

	t.Run("wrong model version", func(t *testing.T) {
		m, s, _ := attestedFixture(t, 2)
		rep := charge(t, m, 16)
		rep.Attestations[0].ModelID = "model-v2"
		if rc := s.SettleAttested(rep); rc.OK || rc.Reason != ReasonProofInvalid {
			t.Fatalf("got %+v, want %s", rc, ReasonProofInvalid)
		}
	})

	t.Run("rejection leaves state untouched", func(t *testing.T) {
		m, s, v := attestedFixture(t, 2)
		rep := charge(t, m, 16)
		good := rep
		bad := rep
		bad.Attestations = nil
		if rc := s.SettleAttested(bad); rc.OK {
			t.Fatal("proofless report accepted")
		}
		if rc := s.SettleAttested(good); !rc.OK {
			t.Fatalf("honest retry after rejection failed: %s", rc.Reason)
		}
		if used, _ := s.SettledUsage(v.ID); used != 16 {
			t.Fatalf("settled usage %d, want 16", used)
		}
	})
}

// Attested settlement over the real TCP path, exercising the wire
// superset property (AttestedReport embeds Report).
func TestAttestedSettlementOverTCP(t *testing.T) {
	m, s, _ := attestedFixture(t, 2)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(l, s)
	defer srv.Close()
	for i := 0; i < 12; i++ {
		if err := m.Charge(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := MustSettle(srv.Addr(), m); err != nil {
		t.Fatal(err)
	}
	if m.SettledSeq() != 12 {
		t.Fatalf("settled seq %d, want 12", m.SettledSeq())
	}
}

// realAttestor pairs the metering plumbing with the actual sum-check
// prover; the matching verifier runs on a BatchVerifier, as core wires
// it in production.
func realAttestor(voucherID, modelID string, wq []int32, k, n int, input []int8) Attestor {
	return func(seq uint64, entryHash [32]byte) (Attestation, error) {
		ctx := AttestationContext(voucherID, modelID, seq, entryHash)
		a := make([]int32, k)
		for i, c := range input {
			a[i] = int32(c)
		}
		claimed, proof, _, err := verify.ProveMatMulCtx(ctx, a, 1, k, wq, n)
		if err != nil {
			return Attestation{}, err
		}
		blob, err := proof.MarshalBinary()
		if err != nil {
			return Attestation{}, err
		}
		return Attestation{ModelID: modelID, Input: input, Claimed: claimed, Proof: blob}, nil
	}
}

func batchBackedVerifier(bv *verify.BatchVerifier) AttestationVerifier {
	return func(v Voucher, items []AttestationCheck) []error {
		errs := make([]error, len(items))
		batch := make([]verify.BatchItem, len(items))
		for i, it := range items {
			var proof verify.Proof
			if err := proof.UnmarshalBinary(it.Att.Proof); err != nil {
				errs[i] = err
				continue
			}
			a := make([]int32, len(it.Att.Input))
			for j, c := range it.Att.Input {
				a[j] = int32(c)
			}
			batch[i] = verify.BatchItem{
				ClassID: it.Att.ModelID,
				Ctx:     AttestationContext(v.ID, it.Att.ModelID, it.Att.Seq, it.EntryHash),
				A:       a, M: 1, C: it.Att.Claimed, Proof: &proof,
			}
		}
		results, _, err := bv.VerifyBatch(batch)
		if err != nil {
			for i := range errs {
				errs[i] = err
			}
			return errs
		}
		for i, r := range results {
			if errs[i] != nil {
				continue
			}
			if r.Err != nil {
				errs[i] = r.Err
			} else if !r.OK {
				errs[i] = fmt.Errorf("%w: sum-check failed", ErrProofInvalid)
			}
		}
		return errs
	}
}

// 64 goroutines hammer one Settler armed with a BatchVerifier-backed
// attestation verifier, at three engine widths. Every settlement must
// succeed; run under -race this is the S3 concurrency gate.
func TestSharedSettlerConcurrentAttested(t *testing.T) {
	const goroutines = 64
	const k, n = 16, 8
	rng := tensor.NewRNG(31)
	wq := make([]int32, k*n)
	for i := range wq {
		wq[i] = int32(rng.Intn(255)) - 127
	}

	for _, workers := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			issuer, err := NewIssuer([]byte("race-test-key-0123456789abcdef!!"))
			if err != nil {
				t.Fatal(err)
			}
			s := NewSettler(issuer)
			bv := verify.NewBatchVerifier(engine.New(engine.Config{Workers: workers}))
			if err := bv.Prepare("model-v1", wq, k, n); err != nil {
				t.Fatal(err)
			}
			s.SetAttestation(2, batchBackedVerifier(bv))

			var wg sync.WaitGroup
			failures := make([]error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					v, err := issuer.Issue(fmt.Sprintf("dev-%03d", g), "model-v1", 50)
					if err != nil {
						failures[g] = err
						return
					}
					m := NewMeter(v)
					input := make([]int8, k)
					for i := range input {
						input[i] = int8(g - 32 + i)
					}
					m.SetAttestor(2, realAttestor(v.ID, "model-v1", wq, k, n, input))
					for round := 0; round < 2; round++ {
						for i := 0; i < 8; i++ {
							if err := m.Charge(uint64(round*8 + i)); err != nil {
								failures[g] = err
								return
							}
						}
						rep, err := m.BuildAttestedReport()
						if err != nil {
							failures[g] = err
							return
						}
						rc := s.SettleAttested(rep)
						if !rc.OK {
							failures[g] = fmt.Errorf("goroutine %d round %d rejected: %s", g, round, rc.Reason)
							return
						}
						m.Acknowledge(rc.AckSeq)
					}
				}(g)
			}
			wg.Wait()
			for _, err := range failures {
				if err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}
