package metering

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
)

// Receipt is the server's settlement answer.
type Receipt struct {
	OK bool
	// AckSeq is the highest charge sequence the server has accepted.
	AckSeq uint64
	// Reason explains a rejection — these are the §III-C tamper signals.
	Reason string
	// ProofsChecked counts the inference proofs verified for this report
	// (zero when verified billing is off).
	ProofsChecked int
}

// Tamper reasons reported in Receipt.Reason.
const (
	ReasonBadVoucher   = "voucher signature invalid"
	ReasonRollback     = "rollback detected: report restarts below settled sequence"
	ReasonGap          = "gap detected: report skips sequences"
	ReasonBadChain     = "hash chain broken"
	ReasonOverQuota    = "claimed usage exceeds voucher quota"
	ReasonBadUsage     = "claimed usage inconsistent with entries"
	ReasonProofMissing = "sampled charge missing inference proof"
	ReasonProofInvalid = "inference proof rejected"
)

// voucherState is what the vendor remembers per voucher between
// settlements: the last accepted head and sequence.
type voucherState struct {
	head [32]byte
	seq  uint64
	used uint64
}

// Settler is the vendor-side settlement service.
type Settler struct {
	issuer *Issuer

	mu    sync.Mutex
	state map[string]*voucherState
	// TamperLog records rejected settlements for audit.
	tamperLog []string
	// lastReceipt remembers each voucher's latest settlement verdict for
	// audit (see faults.Audit).
	lastReceipt map[string]Receipt
	// attRate and attVerifier drive verified billing (see attest.go).
	attRate     int
	attVerifier AttestationVerifier
}

// NewSettler returns a settlement service trusting vouchers from issuer.
func NewSettler(issuer *Issuer) *Settler {
	return &Settler{
		issuer:      issuer,
		state:       make(map[string]*voucherState),
		lastReceipt: make(map[string]Receipt),
	}
}

// Settle verifies a usage report and returns a receipt. On success the
// server state advances; on any inconsistency the report is rejected and
// logged.
func (s *Settler) Settle(r Report) Receipt {
	return s.SettleAttested(AttestedReport{Report: r})
}

// SettleAttested is Settle for reports carrying inference proofs. When
// the settler has been armed with SetAttestation, the deterministic
// sample of the report's charges must each carry a valid proof — a
// missing, surplus, duplicate or failing proof rejects the whole report
// before any state advances.
func (s *Settler) SettleAttested(r AttestedReport) Receipt {
	if !s.issuer.Verify(&r.Voucher) {
		return s.reject(r.Report, ReasonBadVoucher)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.state[r.Voucher.ID]
	if !ok {
		st = &voucherState{head: GenesisHead(r.Voucher)}
		s.state[r.Voucher.ID] = st
	}
	switch {
	case r.FromSeq <= st.seq:
		return s.rejectLocked(r.Report, ReasonRollback)
	case r.FromSeq > st.seq+1:
		return s.rejectLocked(r.Report, ReasonGap)
	}
	// Verify the chain extends the stored head, with contiguous sequences.
	head := st.head
	seq := st.seq
	entryHash := make(map[uint64][32]byte, len(r.Entries))
	for i := range r.Entries {
		e := &r.Entries[i]
		if e.Seq != seq+1 {
			return s.rejectLocked(r.Report, ReasonGap)
		}
		want := chainHash(head, e.Seq, e.Tick, r.Voucher.ID)
		if want != e.Hash {
			return s.rejectLocked(r.Report, ReasonBadChain)
		}
		head = e.Hash
		seq = e.Seq
		entryHash[e.Seq] = e.Hash
	}
	if r.Used != seq {
		return s.rejectLocked(r.Report, ReasonBadUsage)
	}
	if r.Used > r.Voucher.Queries {
		return s.rejectLocked(r.Report, ReasonOverQuota)
	}
	proofsChecked := 0
	if s.attVerifier != nil {
		// Resolve the sample against the verified terminal head, never the
		// device's claims: head now covers every accepted entry.
		sampledCount := 0
		for _, e := range r.Entries {
			if Sampled(head, r.Voucher.ID, e.Seq, s.attRate) {
				sampledCount++
			}
		}
		seen := make(map[uint64]bool, len(r.Attestations))
		checks := make([]AttestationCheck, 0, len(r.Attestations))
		for _, att := range r.Attestations {
			h, inReport := entryHash[att.Seq]
			// A proof for a charge outside this report, for an unsampled
			// charge, or repeated, is a replay or padding attempt.
			if !inReport || seen[att.Seq] || !Sampled(head, r.Voucher.ID, att.Seq, s.attRate) {
				return s.rejectLocked(r.Report, ReasonProofInvalid)
			}
			seen[att.Seq] = true
			checks = append(checks, AttestationCheck{Att: att, EntryHash: h})
		}
		if len(checks) != sampledCount {
			return s.rejectLocked(r.Report, ReasonProofMissing)
		}
		for _, err := range s.attVerifier(r.Voucher, checks) {
			if err != nil {
				return s.rejectLocked(r.Report, ReasonProofInvalid)
			}
		}
		proofsChecked = len(checks)
	}
	st.head = head
	st.seq = seq
	st.used = r.Used
	receipt := Receipt{OK: true, AckSeq: seq, ProofsChecked: proofsChecked}
	s.lastReceipt[r.Voucher.ID] = receipt
	return receipt
}

func (s *Settler) reject(r Report, reason string) Receipt {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rejectLocked(r, reason)
}

func (s *Settler) rejectLocked(r Report, reason string) Receipt {
	s.tamperLog = append(s.tamperLog, fmt.Sprintf("voucher %s: %s", r.Voucher.ID, reason))
	receipt := Receipt{OK: false, Reason: reason}
	s.lastReceipt[r.Voucher.ID] = receipt
	return receipt
}

// LastReceipt returns the most recent settlement verdict for a voucher.
func (s *Settler) LastReceipt(voucherID string) (Receipt, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rc, ok := s.lastReceipt[voucherID]
	return rc, ok
}

// TamperEvents returns the audit log of rejected settlements.
func (s *Settler) TamperEvents() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.tamperLog...)
}

// SettledUsage returns the server-acknowledged usage for a voucher.
func (s *Settler) SettledUsage(voucherID string) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.state[voucherID]
	if !ok {
		return 0, false
	}
	return st.used, true
}

// Server exposes the settler over TCP with newline-delimited JSON — the
// reconnect path a fleet device uses after an offline period.
type Server struct {
	settler  *Settler
	listener net.Listener
	wg       sync.WaitGroup
	closed   chan struct{}
}

// Serve starts accepting settlement connections on l until Close.
func Serve(l net.Listener, settler *Settler) *Server {
	srv := &Server{settler: settler, listener: l, closed: make(chan struct{})}
	srv.wg.Add(1)
	go srv.acceptLoop()
	return srv
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				continue
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	reader := bufio.NewReader(conn)
	dec := json.NewDecoder(reader)
	enc := json.NewEncoder(conn)
	for {
		// AttestedReport is a wire superset of Report: plain reports decode
		// with no attestations and take the legacy path.
		var report AttestedReport
		if err := dec.Decode(&report); err != nil {
			return
		}
		receipt := s.settler.SettleAttested(report)
		if err := enc.Encode(receipt); err != nil {
			return
		}
	}
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close stops the server and waits for in-flight settlements.
func (s *Server) Close() error {
	close(s.closed)
	err := s.listener.Close()
	s.wg.Wait()
	return err
}

// SettleOverTCP dials the settlement server, submits the report and
// returns the receipt.
func SettleOverTCP(addr string, report Report) (Receipt, error) {
	return SettleAttestedOverTCP(addr, AttestedReport{Report: report})
}

// SettleAttestedOverTCP dials the settlement server, submits a report
// with its proof sample and returns the receipt.
func SettleAttestedOverTCP(addr string, report AttestedReport) (Receipt, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return Receipt{}, fmt.Errorf("metering: dial settlement server: %w", err)
	}
	defer conn.Close()
	if err := json.NewEncoder(conn).Encode(report); err != nil {
		return Receipt{}, fmt.Errorf("metering: send report: %w", err)
	}
	var receipt Receipt
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&receipt); err != nil {
		return Receipt{}, fmt.Errorf("metering: read receipt: %w", err)
	}
	return receipt, nil
}

// ErrSettlementRejected wraps a rejected receipt for callers that want an
// error-shaped API.
var ErrSettlementRejected = errors.New("metering: settlement rejected")

// MustSettle is a convenience that settles and converts rejection into an
// error. A meter with an attestor settles with its proof sample attached.
func MustSettle(addr string, m *Meter) error {
	report, err := m.BuildAttestedReport()
	if err != nil {
		return err
	}
	receipt, err := SettleAttestedOverTCP(addr, report)
	if err != nil {
		return err
	}
	if !receipt.OK {
		return fmt.Errorf("%w: %s", ErrSettlementRejected, receipt.Reason)
	}
	m.Acknowledge(receipt.AckSeq)
	return nil
}
