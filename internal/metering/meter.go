package metering

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Entry is one link of the device's usage hash chain:
// Hash_i = SHA-256(Hash_{i-1} ‖ seq ‖ tick ‖ voucherID).
type Entry struct {
	// Seq is the 1-based charge index under the voucher.
	Seq uint64
	// Tick is the device-local time of the charge.
	Tick uint64
	// Hash chains this entry to its predecessor.
	Hash [32]byte
}

// ErrQuotaExhausted is returned by Charge when the prepaid package is used
// up; the application must deny the query (§III-C).
var ErrQuotaExhausted = errors.New("metering: prepaid quota exhausted")

// Meter is the on-device enforcement point: it admits or denies queries
// against the voucher quota entirely offline and appends every admitted
// charge to the hash chain for later settlement. Safe for concurrent use.
type Meter struct {
	mu      sync.Mutex
	voucher Voucher
	used    uint64
	head    [32]byte
	// unsettled holds entries since the last acknowledged settlement.
	unsettled []Entry
	// settledSeq is the last charge sequence the server has acknowledged.
	settledSeq uint64
	// settledHead is the chain head at settledSeq — the root both sides
	// use when a report carries no entries.
	settledHead [32]byte
	// attestor and attRate drive verified billing (see attest.go).
	attestor Attestor
	attRate  int
}

// NewMeter binds a meter to a voucher on a device. The genesis hash chains
// in the voucher identity so logs from different vouchers can never be
// spliced.
func NewMeter(v Voucher) *Meter {
	m := &Meter{voucher: v}
	m.head = sha256.Sum256([]byte("genesis|" + v.ID + "|" + v.DeviceID))
	m.settledHead = m.head
	return m
}

// Voucher returns the bound voucher.
func (m *Meter) Voucher() Voucher {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.voucher
}

// Used returns the number of charges so far.
func (m *Meter) Used() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.used
}

// Remaining returns the unused quota.
func (m *Meter) Remaining() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.voucher.Queries - m.used
}

// Head returns the current chain head.
func (m *Meter) Head() [32]byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.head
}

// Charge admits one query at the device-local tick, or returns
// ErrQuotaExhausted. The charge is appended to the tamper-evident chain.
func (m *Meter) Charge(tick uint64) error {
	_, err := m.ChargeSeq(tick)
	return err
}

// ChargeSeq is Charge returning the assigned chain sequence, so callers
// retaining per-charge evidence (verified billing) can key it.
func (m *Meter) ChargeSeq(tick uint64) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.used >= m.voucher.Queries {
		return 0, fmt.Errorf("%w: %d/%d", ErrQuotaExhausted, m.used, m.voucher.Queries)
	}
	m.used++
	e := Entry{Seq: m.used, Tick: tick}
	e.Hash = chainHash(m.head, e.Seq, e.Tick, m.voucher.ID)
	m.head = e.Hash
	m.unsettled = append(m.unsettled, e)
	return e.Seq, nil
}

func chainHash(prev [32]byte, seq, tick uint64, voucherID string) [32]byte {
	h := sha256.New()
	h.Write(prev[:])
	var nums [16]byte
	binary.LittleEndian.PutUint64(nums[:8], seq)
	binary.LittleEndian.PutUint64(nums[8:], tick)
	h.Write(nums[:])
	h.Write([]byte(voucherID))
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// VerifyChain recomputes the unsettled chain from the last settled head
// and reports whether every link is intact. A device-side integrity check;
// the server performs the same computation during settlement.
func VerifyChain(v Voucher, start [32]byte, entries []Entry) error {
	head := start
	for i := range entries {
		e := &entries[i]
		want := chainHash(head, e.Seq, e.Tick, v.ID)
		if want != e.Hash {
			return fmt.Errorf("metering: chain broken at seq %d", e.Seq)
		}
		head = e.Hash
	}
	return nil
}

// Report is the settlement message: the unsettled chain segment plus the
// voucher, so the server can verify extension from its stored head.
type Report struct {
	Voucher Voucher
	// FromSeq is the first entry's expected sequence (settledSeq+1).
	FromSeq uint64
	Entries []Entry
	// Used is the device's claimed cumulative usage.
	Used uint64
}

// BuildReport snapshots the unsettled usage for settlement. It does not
// mutate the meter; call Acknowledge with the server receipt to prune.
func (m *Meter) BuildReport() Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	entries := make([]Entry, len(m.unsettled))
	copy(entries, m.unsettled)
	return Report{
		Voucher: m.voucher,
		FromSeq: m.settledSeq + 1,
		Entries: entries,
		Used:    m.used,
	}
}

// Acknowledge prunes entries the server has accepted through seq and
// advances the settled head to the last pruned entry's hash.
func (m *Meter) Acknowledge(throughSeq uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if throughSeq <= m.settledSeq {
		return
	}
	keep := m.unsettled[:0]
	for _, e := range m.unsettled {
		if e.Seq > throughSeq {
			keep = append(keep, e)
		} else if e.Seq == throughSeq {
			m.settledHead = e.Hash
		}
	}
	m.unsettled = keep
	m.settledSeq = throughSeq
}

// SettledSeq returns the last server-acknowledged charge sequence.
func (m *Meter) SettledSeq() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.settledSeq
}

// SettledHead returns the chain head as of the last acknowledgment.
func (m *Meter) SettledHead() [32]byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.settledHead
}

// GenesisHead returns the chain genesis for a voucher — what the server
// stores before the first settlement.
func GenesisHead(v Voucher) [32]byte {
	return sha256.Sum256([]byte("genesis|" + v.ID + "|" + v.DeviceID))
}
