// Package metering implements the offline pay-per-query machinery of
// §III-C: prepaid query packages ("vouchers") signed by the vendor, an
// on-device meter that enforces the quota without connectivity and records
// every charge in a hash chain, and a settlement protocol that lets the
// vendor verify usage and detect tampering (rollback, truncation, forged
// entries, forged vouchers, cross-device replay) when the device
// reconnects.
//
// The paper notes that metering is trivial behind a cloud endpoint and
// "not trivial on untrusted hardware" at the edge; the hash-chained local
// log plus chain-extension settlement is the standard offline-payment
// construction adapted to query counting. A voucher prepays queries, not a
// model version: the meter and its chain survive OTA updates and
// rollbacks, so staged rollouts never reset a customer's balance.
package metering
