package core

import (
	"errors"
	"fmt"
	"strings"

	"tinymlops/internal/dataset"
	"tinymlops/internal/device"
	"tinymlops/internal/engine"
	"tinymlops/internal/fed"
	"tinymlops/internal/registry"
	"tinymlops/internal/rollout"
	"tinymlops/internal/swarm"
)

// RolloutConfig controls a staged fleet update (see internal/rollout for
// the wave/gate semantics).
type RolloutConfig struct {
	// Waves defaults to rollout.DefaultWaves() (canary → cohort → fleet).
	Waves []rollout.Wave
	// Gate thresholds (zero value = defaults).
	Gate rollout.Gate
	// Seed keys the deterministic wave assignment.
	Seed uint64
	// Bake drives representative traffic through a wave's devices between
	// their update and the health gate; nil gates on whatever traffic the
	// application generates on its own.
	Bake func(wave rollout.Wave, deviceIDs []string) error
	// BeforeWave runs serially before each wave's update fan-out — the
	// fault plane's hook for imposing per-wave weather.
	BeforeWave func(wave rollout.Wave, deviceIDs []string)
	// Calibration recalibrates updated devices' drift monitors for the new
	// version; nil keeps each device's existing monitor (reset).
	Calibration *dataset.Dataset
	// ForceFull disables delta transfer for every update in the rollout.
	ForceFull bool
	// Retry bounds per-device update attempts within a wave (zero value =
	// one attempt) on a deterministic backoff schedule.
	Retry engine.RetryPolicy
	// Retryable classifies update errors worth another attempt. nil uses
	// TransientUpdateError: dropped links and interrupted installs retry
	// (the latter resuming the half-written slot); everything else —
	// battery death, selection failures, topology problems — fails fast.
	Retryable func(error) bool
	// Swarm, when non-nil, switches transfers to peer-to-peer mode: the
	// registry serves only the canary wave (no device holds the new bytes
	// yet) and acts as seeder of last resort; later waves fetch chunks from
	// devices the earlier waves updated. The controller promotes each
	// passed wave's devices into the seeder set and withdraws a rolled-back
	// wave's pending registrations. Build one with Platform.NewSwarm.
	Swarm *swarm.Swarm
}

// SwarmOptions configures Platform.NewSwarm.
type SwarmOptions struct {
	// ChunkBytes is the manifest chunk size (0 = swarm.DefaultChunkBytes).
	ChunkBytes int64
	// Seed roots the deterministic peer assignment.
	Seed uint64
	// MaxPeerTries bounds seeders probed per chunk before registry
	// fallback (0 = 3).
	MaxPeerTries int
	// PeerDrop injects deterministic mid-chunk peer churn (the fault
	// plane's swarm weather hook); nil means peers never drop.
	PeerDrop swarm.DropFunc
}

// NewSwarm builds a peer-to-peer distribution swarm over this platform's
// fleet and registry: artifact keys ("full:<version>" or
// "delta:<from>><to>") resolve to the registry's canonical bytes as the
// seed of last resort, and seeder IDs resolve to fleet devices. Pass the
// result in RolloutConfig.Swarm or UpdateOptions.Swarm.
func (p *Platform) NewSwarm(opts SwarmOptions) (*swarm.Swarm, error) {
	return swarm.New(swarm.Config{
		Source:       swarm.SourceFunc(p.swarmBytes),
		Peer:         p.Fleet.Get,
		ChunkBytes:   opts.ChunkBytes,
		Seed:         opts.Seed,
		MaxPeerTries: opts.MaxPeerTries,
		PeerDrop:     opts.PeerDrop,
	})
}

// swarmBytes resolves a swarm artifact key to canonical registry bytes:
// "full:<version>" is the stored artifact, "delta:<from>><to>" the cached
// single-flight delta encoding. These are the exact bytes every seeder of
// the key holds, which is what content-addressed chunks require.
func (p *Platform) swarmBytes(key string) ([]byte, error) {
	switch {
	case strings.HasPrefix(key, "full:"):
		return p.Registry.Bytes(strings.TrimPrefix(key, "full:"))
	case strings.HasPrefix(key, "delta:"):
		spec := strings.TrimPrefix(key, "delta:")
		from, to, ok := strings.Cut(spec, ">")
		if !ok || from == "" || to == "" {
			return nil, fmt.Errorf("core: malformed delta key %q", key)
		}
		return p.Registry.Delta(from, to)
	default:
		return nil, fmt.Errorf("core: unknown artifact key %q", key)
	}
}

// TransientUpdateError reports whether an update failure is transient: the
// device was offline, or the install crashed mid-flash and left a
// resumable staging slot. These are the faults a bounded retry can heal
// within a wave; a depleted battery or a permanent selection error cannot.
func TransientUpdateError(err error) bool {
	return errors.Is(err, device.ErrOffline) || errors.Is(err, device.ErrInstallInterrupted)
}

// Rollout drives every deployment of the target version's model line
// through a staged, health-gated update to that version (each device
// re-selecting its variant), rolling a failing wave back to the prior
// image. The result is deterministic for a given (platform state, config)
// at any worker count.
func (p *Platform) Rollout(target *registry.ModelVersion, cfg RolloutConfig) (*rollout.Result, error) {
	if target == nil {
		return nil, fmt.Errorf("core: nil rollout target")
	}
	ctl := rollout.NewController(p.eng)
	retryable := cfg.Retryable
	if retryable == nil {
		retryable = TransientUpdateError
	}
	rcfg := rollout.Config{
		Waves:      cfg.Waves,
		Gate:       cfg.Gate,
		Seed:       cfg.Seed,
		Bake:       cfg.Bake,
		BeforeWave: cfg.BeforeWave,
		Retry:      cfg.Retry,
		Retryable:  retryable,
	}
	if cfg.Swarm != nil {
		// A passed wave's devices hold the new bytes: promote them into the
		// seeder set before the next wave fans out. (A failed wave never
		// reaches AfterWave, and its rollbacks withdrew its pending
		// registrations.)
		rcfg.AfterWave = func(rollout.Wave, []string) { cfg.Swarm.AdvanceWave() }
	}
	return ctl.Run(&rolloutTarget{p: p, target: target, cfg: cfg}, rcfg)
}

// FederatedRollout closes the §III-D → §III-A loop: run federated training
// of the named model line, publish the aggregated global model (and its
// variant matrix) as rollout candidates, then drive the fleet through a
// staged update to the new base. It returns the published versions, the
// per-round training stats and the rollout record.
func (p *Platform) FederatedRollout(name string, clients []*fed.Client, test *dataset.Dataset, fcfg fed.Config, spec registry.OptimizationSpec, rcfg RolloutConfig) ([]*registry.ModelVersion, []fed.RoundStats, *rollout.Result, error) {
	versions, stats, err := p.FederatedUpdate(name, clients, test, fcfg, spec)
	if err != nil {
		return nil, nil, nil, err
	}
	if rcfg.Calibration == nil {
		rcfg.Calibration = test
	}
	res, err := p.Rollout(versions[0], rcfg)
	if err != nil {
		return versions, stats, nil, err
	}
	return versions, stats, res, nil
}

// rolloutTarget adapts a Platform to the rollout.Target interface.
type rolloutTarget struct {
	p      *Platform
	target *registry.ModelVersion
	cfg    RolloutConfig
}

// DeviceIDs lists devices currently running the target's model line —
// Deployments() is already sorted by device ID, so the eligible set is
// deterministic.
func (t *rolloutTarget) DeviceIDs() []string {
	var out []string
	for _, d := range t.p.Deployments() {
		if d.Version.Name == t.target.Name {
			out = append(out, d.DeviceID)
		}
	}
	return out
}

func (t *rolloutTarget) dep(id string) (*Deployment, error) {
	d, ok := t.p.Deployment(id)
	if !ok {
		return nil, fmt.Errorf("core: no deployment on %q", id)
	}
	return d, nil
}

func (t *rolloutTarget) Baseline(id string) (rollout.Health, error) {
	d, err := t.dep(id)
	if err != nil {
		return rollout.Health{}, err
	}
	return d.Health(), nil
}

func (t *rolloutTarget) Health(id string) (rollout.Health, error) {
	return t.Baseline(id)
}

func (t *rolloutTarget) Update(id string) (rollout.Transfer, error) {
	d, err := t.dep(id)
	if err != nil {
		return rollout.Transfer{}, err
	}
	rep, err := d.Update(t.target, UpdateOptions{
		Calibration: t.cfg.Calibration,
		ForceFull:   t.cfg.ForceFull,
		Swarm:       t.cfg.Swarm,
	})
	if err != nil {
		return rollout.Transfer{}, err
	}
	return rollout.Transfer{
		ShipBytes:     rep.ShipBytes,
		FlashBytes:    rep.FlashBytes,
		UsedDelta:     rep.UsedDelta,
		FromID:        rep.From.ID,
		ToID:          rep.To.ID,
		PeerBytes:     rep.PeerBytes,
		RegistryBytes: rep.RegistryBytes,
	}, nil
}

func (t *rolloutTarget) Rollback(id string) error {
	d, err := t.dep(id)
	if err != nil {
		return err
	}
	if _, err = d.Rollback(); err != nil {
		return err
	}
	if t.cfg.Swarm != nil {
		// The device no longer holds the bytes it registered for.
		t.cfg.Swarm.RemovePending(id)
	}
	return nil
}
