package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tinymlops/internal/device"
	"tinymlops/internal/engine"
	"tinymlops/internal/metering"
	"tinymlops/internal/nn"
	"tinymlops/internal/observe"
	"tinymlops/internal/procvm"
	"tinymlops/internal/quant"
	"tinymlops/internal/registry"
	"tinymlops/internal/selector"
	"tinymlops/internal/tensor"
)

// runnable is the executable behind a deployment's forward passes: the
// float network, or the integer-kernel QModel when the selected variant's
// scheme has native hardware support on the device (§III-A: low precision
// buys nothing unless the device runs real integer kernels).
type runnable interface {
	// forwardBatch runs inference on a [batch, features] tensor, borrowing
	// scratch from the worker arena (nil falls back to the runnable's own
	// scratch). The result aliases scratch storage; the caller must hold
	// d.mu and consume it before the next call.
	forwardBatch(x *tensor.Tensor, ar *engine.Arena) *tensor.Tensor
	// execScheme is the weight precision of the kernels actually running.
	execScheme() quant.Scheme
	// execBits is the bit width charged to the device cost model.
	execBits() int
}

// floatRunnable serves a deployment from the float engine. For integer
// variants without native hardware support the weights are already
// fake-quantized in the artifact, and bits keeps the variant's width so
// the device cost model charges the emulation penalty.
type floatRunnable struct {
	net     *nn.Network
	scratch *nn.Scratch // fallback when no arena is supplied
	bits    int
}

func (r *floatRunnable) forwardBatch(x *tensor.Tensor, ar *engine.Arena) *tensor.Tensor {
	s := r.scratch
	if ar != nil {
		s = ar.Slot(r, func() any { return nn.NewScratch() }).(*nn.Scratch)
	}
	return r.net.ForwardBatch(x, s)
}
func (r *floatRunnable) execScheme() quant.Scheme { return quant.Float32 }
func (r *floatRunnable) execBits() int            { return r.bits }

// intRunnable serves a deployment from the integer kernels at the
// variant's native bit width.
type intRunnable struct {
	qm      *quant.QModel
	scratch *quant.QScratch // fallback when no arena is supplied
}

func (r *intRunnable) forwardBatch(x *tensor.Tensor, ar *engine.Arena) *tensor.Tensor {
	s := r.scratch
	if ar != nil {
		s = ar.Slot(r, func() any { return quant.NewQScratch() }).(*quant.QScratch)
	}
	return r.qm.ForwardBatch(x, s)
}
func (r *intRunnable) execScheme() quant.Scheme { return r.qm.Scheme }
func (r *intRunnable) execBits() int            { return r.qm.Scheme.Bits() }

// vmRunnable serves a deployment from a compiled procvm module — the
// obfuscated portable format. Execution is row-by-row (the VM is a
// single-vector machine); the compile-time gate proved the bytecode
// bit-identical to the float network it was lowered from, so a run failure
// here means corrupted state and panics like the nn kernels do.
type vmRunnable struct {
	mod *procvm.Module
	rt  *procvm.Runtime
}

func newVMRunnable(mod *procvm.Module, granted procvm.Capability) *vmRunnable {
	rt := procvm.NewRuntime(granted)
	if mod.GasLimit > rt.MaxGas {
		rt.MaxGas = mod.GasLimit
	}
	return &vmRunnable{mod: mod, rt: rt}
}

func (r *vmRunnable) forwardBatch(x *tensor.Tensor, ar *engine.Arena) *tensor.Tensor {
	rows := x.Dim(0)
	cols := 1
	if rows > 0 {
		cols = x.Size() / rows
	}
	var out *tensor.Tensor
	for i := 0; i < rows; i++ {
		res, err := r.rt.Run(r.mod, x.Data[i*cols:(i+1)*cols])
		if err != nil {
			panic(fmt.Sprintf("core: compiled module %s failed: %v", r.mod.Name, err))
		}
		if !res.Output.IsVec {
			panic(fmt.Sprintf("core: compiled module %s did not produce a vector", r.mod.Name))
		}
		if out == nil {
			out = tensor.New(rows, len(res.Output.Vec))
		}
		copy(out.Data[i*out.Dim(1):(i+1)*out.Dim(1)], res.Output.Vec)
	}
	if out == nil {
		out = tensor.New(0, 1)
	}
	return out
}
func (r *vmRunnable) execScheme() quant.Scheme { return quant.Float32 }
func (r *vmRunnable) execBits() int            { return 32 }

// newRunnable builds the executable for (device, version, model): a
// variant with an integer scheme the device supports natively executes on
// the quant integer kernels; everything else — float bases, devices
// without the bit width, models the integer runtime cannot lower — runs
// the float engine over the artifact's (fake-quantized) weights, charged
// at the variant's bit width so unsupported widths pay the emulation
// penalty. The registry artifact stays the source of truth: the QModel is
// re-derived from the decrypted model after every update or rollback.
func newRunnable(dev *device.Device, v *registry.ModelVersion, model *nn.Network) runnable {
	if v.Scheme != quant.Float32 && dev.Caps.SupportsBits(v.Scheme.Bits()) {
		if qm, err := quant.NewQModel(model, v.Scheme); err == nil {
			return &intRunnable{qm: qm, scratch: quant.NewQScratch()}
		}
	}
	return &floatRunnable{net: model, scratch: nn.NewScratch(), bits: v.Scheme.Bits()}
}

// image is one installed model generation: what a rollback restores.
type image struct {
	version  *registry.ModelVersion
	model    *nn.Network
	compiled *procvm.Module
	monitor  *observe.Monitor
}

// Deployment is one model running on one device: the decrypted model, the
// executable serving it (the float engine, or the integer-kernel QModel
// when the variant's scheme has native hardware support — see
// ExecutionScheme), the metering gate, the drift monitor, the telemetry
// buffer and the optional procvm pipeline stages. Deployments are
// updatable: Update hot-swaps the model to a new registry version (keeping
// meter and telemetry buffer) and Rollback reverts to the previous image,
// A/B-slot style; both re-derive the executable from the swapped-in model.
type Deployment struct {
	DeviceID string
	Version  *registry.ModelVersion

	Meter   *metering.Meter
	Monitor *observe.Monitor
	Buffer  *observe.Buffer

	platform *Platform
	device   *device.Device
	// model is the decrypted network, nil for compiled (procvm) versions,
	// whose artifact is the module in `compiled` instead.
	model     *nn.Network
	compiled  *procvm.Module
	run       runnable
	policy    selector.Policy
	watermark string
	pre       *procvm.Module
	post      *procvm.Module
	runtime   *procvm.Runtime

	// prev is the previous image (one-deep history, like an A/B flash
	// slot): Rollback restores it without re-downloading anything.
	prev *image

	mu sync.Mutex

	// Verified-billing attestor state (billing.go): the proved layer
	// snapshot from the registry artifact and per-charge retained
	// evidence. retained is non-nil iff verified billing is on.
	attWq      []int32
	attK, attN int
	attModelID string
	retained   map[uint64]retainedCharge

	// Reusable serving buffers (guarded by d.mu): the admitted-row feature
	// slab, per-row bookkeeping, the input tensor header over the slab and
	// the argmax outputs. Together with the arena-borrowed model scratch
	// they make the steady-state batch path allocation-free apart from the
	// per-call result slice the API returns.
	batchFeats  []float32
	batchAdm    []admitted
	batchLabels []int
	inHdr       *tensor.Tensor

	tick        uint64
	window      uint32
	winCount    uint32
	winDenied   uint32
	winFailed   uint32 // post-gate inference failures (battery, pipeline)
	winLatency  observe.Welford
	winEnergyMJ float64
	featStats   []observe.Welford
}

// admitted is one InferBatch row that cleared the metering and device
// gates (declared at package scope so the deployment can keep a reusable
// slice of them).
type admitted struct {
	idx int
	lat time.Duration
}

// ErrQueryDenied wraps metering denial at the inference entry point.
var ErrQueryDenied = errors.New("core: query denied by meter")

// acquireArena borrows a worker arena from the platform pool (nil for
// deployments constructed without a platform, e.g. in tests — runnables
// then fall back to their own scratch).
func (d *Deployment) acquireArena() *engine.Arena {
	if d.platform == nil {
		return nil
	}
	return d.platform.arenas.Acquire()
}

func (d *Deployment) releaseArena(ar *engine.Arena) {
	if ar != nil {
		d.platform.arenas.Release(ar)
	}
}

// inputView wraps features in the deployment's cached [rows, dim] header,
// reusing the feature slab so the steady state allocates nothing.
func (d *Deployment) inputView(rows, dim int) *tensor.Tensor {
	if h := d.inHdr; h != nil && h.Dim(0) == rows && h.Dim(1) == dim {
		h.Data = d.batchFeats[:rows*dim]
		return h
	}
	d.inHdr = tensor.FromSlice(d.batchFeats[:rows*dim], rows, dim)
	return d.inHdr
}

// InferenceResult is one query's outcome.
type InferenceResult struct {
	// Label is the predicted class (post-module output if one is bound,
	// otherwise the logits argmax).
	Label int
	// Latency is the modeled on-device execution time.
	Latency time.Duration
	// DriftAlarm reports whether the monitor has latched.
	DriftAlarm bool
}

// admitLocked runs the front half of the serving pipeline shared by every
// query path (local, batched admission, offloaded): advance the device
// tick, charge the prepaid meter (offline enforcement, §III-C — a denial
// costs the device nothing), run the portable preprocessing module
// (§III-A / §IV) and feed the drift monitor (§III-B). Post-gate failures
// count toward window health: a version that cannot serve queries must
// look unhealthy to a rollout gate. Caller holds d.mu.
func (d *Deployment) admitLocked(x []float32) ([]float32, error) {
	d.tick++
	seq, err := d.Meter.ChargeSeq(d.tick)
	if err != nil {
		d.device.DenyQuery()
		d.winDenied++
		return nil, fmt.Errorf("%w: %v", ErrQueryDenied, err)
	}
	features := x
	if d.pre != nil {
		res, err := d.runtime.Run(d.pre, x)
		if err != nil {
			d.winFailed++
			d.retainLocked(seq, nil)
			return nil, fmt.Errorf("core: preprocess: %w", err)
		}
		if !res.Output.IsVec {
			d.winFailed++
			d.retainLocked(seq, nil)
			return nil, fmt.Errorf("core: preprocess must produce a vector")
		}
		features = res.Output.Vec
	}
	if d.Monitor != nil {
		d.Monitor.Observe(features)
	}
	// Every charged sequence keeps evidence — even if a later pipeline
	// stage fails, the charge stands and must stay provable.
	d.retainLocked(seq, features)
	return features, nil
}

// postLabelLocked applies the optional postprocessing module to one
// query's logits, falling back to the given argmax label. Caller holds
// d.mu.
func (d *Deployment) postLabelLocked(logits []float32, label int) (int, error) {
	if d.post == nil {
		return label, nil
	}
	res, err := d.runtime.Run(d.post, logits)
	if err != nil {
		d.winFailed++
		return 0, fmt.Errorf("core: postprocess: %w", err)
	}
	if res.Output.IsVec {
		d.winFailed++
		return 0, fmt.Errorf("core: postprocess must reduce to a scalar label")
	}
	return int(res.Output.Scalar), nil
}

// recordServedLocked accounts one fully served query into the open
// telemetry window (aggregates only; the input never leaves). Caller
// holds d.mu.
func (d *Deployment) recordServedLocked(features []float32, lat time.Duration, energyMJ float64) {
	d.winCount++
	d.winLatency.Add(float64(lat.Nanoseconds()) / 1e3) // fractional µs; MCU-class inferences can be sub-µs in the model
	d.winEnergyMJ += energyMJ
	if d.featStats == nil {
		d.featStats = make([]observe.Welford, len(features))
	}
	for i := range features {
		if i < len(d.featStats) {
			d.featStats[i].Add(float64(features[i]))
		}
	}
}

// Infer runs one metered, monitored query through the deployed pipeline.
func (d *Deployment) Infer(x []float32) (InferenceResult, error) {
	d.mu.Lock()
	defer d.mu.Unlock()

	// Metering gate, preprocessing, drift observation.
	features, err := d.admitLocked(x)
	if err != nil {
		return InferenceResult{}, err
	}

	// Inference on the device cost model, charged at the bit width of the
	// kernels that actually execute (native integer or float/emulated).
	lat, err := d.device.RunInference(d.Version.Metrics.MACs, d.run.execBits())
	if err != nil {
		d.winFailed++
		return InferenceResult{}, fmt.Errorf("core: device: %w", err)
	}
	d.batchFeats = append(d.batchFeats[:0], features...)
	in := d.inputView(1, len(features))
	ar := d.acquireArena()
	logits := d.run.forwardBatch(in, ar)
	d.releaseArena(ar)

	// Postprocessing and telemetry accounting.
	if cap(d.batchLabels) < 1 {
		d.batchLabels = make([]int, 1)
	}
	d.batchLabels = d.batchLabels[:1]
	logits.ArgMaxRowsInto(d.batchLabels)
	label, err := d.postLabelLocked(logits.Data, d.batchLabels[0])
	if err != nil {
		return InferenceResult{}, err
	}
	d.recordServedLocked(features, lat, d.device.Caps.InferenceEnergy(d.Version.Metrics.MACs)*1e3)

	drift := d.Monitor != nil && d.Monitor.Drifted()
	return InferenceResult{Label: label, Latency: lat, DriftAlarm: drift}, nil
}

// BatchOutcome is one query's outcome within InferBatch.
type BatchOutcome struct {
	Result InferenceResult
	Err    error
}

// InferBatch runs a burst of queries through the deployed pipeline with a
// single batched forward pass over the rows that clear the metering and
// device gates. Per-query metering, drift observation, device energy and
// telemetry accounting are identical to calling Infer row by row, and the
// predicted labels are bit-identical (ForwardBatch preserves accumulation
// order); the one visible difference is that DriftAlarm reflects the
// monitor state at the end of the burst, since all rows are observed
// before the shared compute. Reusable scratch buffers make the steady
// state allocate O(batch) instead of O(batch × layers).
func (d *Deployment) InferBatch(rows [][]float32) []BatchOutcome {
	out := make([]BatchOutcome, len(rows))
	if len(rows) == 0 {
		return out
	}
	d.mu.Lock()
	defer d.mu.Unlock()

	adm := d.batchAdm[:0]
	d.batchFeats = d.batchFeats[:0]
	fdim := -1
	for qi, x := range rows {
		d.tick++
		seq, err := d.Meter.ChargeSeq(d.tick)
		if err != nil {
			d.device.DenyQuery()
			d.winDenied++
			out[qi].Err = fmt.Errorf("%w: %v", ErrQueryDenied, err)
			continue
		}
		features := x
		if d.pre != nil {
			res, err := d.runtime.Run(d.pre, x)
			if err != nil {
				d.winFailed++
				d.retainLocked(seq, nil)
				out[qi].Err = fmt.Errorf("core: preprocess: %w", err)
				continue
			}
			if !res.Output.IsVec {
				d.winFailed++
				d.retainLocked(seq, nil)
				out[qi].Err = fmt.Errorf("core: preprocess must produce a vector")
				continue
			}
			features = res.Output.Vec
		}
		// Charged sequences keep evidence regardless of how the rest of
		// the pipeline fares — mirror of admitLocked.
		d.retainLocked(seq, features)
		if fdim < 0 {
			fdim = len(features)
		}
		if len(features) != fdim {
			d.winFailed++
			out[qi].Err = fmt.Errorf("core: feature width %d differs from batch width %d", len(features), fdim)
			continue
		}
		if d.Monitor != nil {
			d.Monitor.Observe(features)
		}
		lat, err := d.device.RunInference(d.Version.Metrics.MACs, d.run.execBits())
		if err != nil {
			d.winFailed++
			out[qi].Err = fmt.Errorf("core: device: %w", err)
			continue
		}
		d.batchFeats = append(d.batchFeats, features...)
		adm = append(adm, admitted{idx: qi, lat: lat})
	}
	d.batchAdm = adm
	if len(adm) == 0 {
		return out
	}

	ar := d.acquireArena()
	logits := d.run.forwardBatch(d.inputView(len(adm), fdim), ar)
	d.releaseArena(ar)
	if cap(d.batchLabels) < len(adm) {
		d.batchLabels = make([]int, len(adm))
	}
	labels := d.batchLabels[:len(adm)]
	logits.ArgMaxRowsInto(labels)
	cols := logits.Dim(1)
	drift := d.Monitor != nil && d.Monitor.Drifted()
	for bi, a := range adm {
		label := labels[bi]
		if d.post != nil {
			res, err := d.runtime.Run(d.post, append([]float32(nil), logits.Data[bi*cols:(bi+1)*cols]...))
			if err != nil {
				d.winFailed++
				out[a.idx].Err = fmt.Errorf("core: postprocess: %w", err)
				continue
			}
			if res.Output.IsVec {
				d.winFailed++
				out[a.idx].Err = fmt.Errorf("core: postprocess must reduce to a scalar label")
				continue
			}
			label = int(res.Output.Scalar)
		}
		// Telemetry accounting, like Infer's, covers only queries the full
		// pipeline served; row order keeps the Welford states identical to
		// the serial path's.
		row := d.batchFeats[bi*fdim : (bi+1)*fdim]
		d.winCount++
		d.winLatency.Add(float64(a.lat.Nanoseconds()) / 1e3)
		d.winEnergyMJ += d.device.Caps.InferenceEnergy(d.Version.Metrics.MACs) * 1e3
		if d.featStats == nil {
			d.featStats = make([]observe.Welford, len(row))
		}
		for i := range row {
			if i < len(d.featStats) {
				d.featStats[i].Add(float64(row[i]))
			}
		}
		out[a.idx].Result = InferenceResult{Label: label, Latency: a.lat, DriftAlarm: drift}
	}
	return out
}

// rollWindow closes the current telemetry window into the buffer.
func (d *Deployment) rollWindow() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.rollWindowLocked()
}

// rollWindowLocked is rollWindow for callers already holding d.mu (the
// update path rolls the window at every version boundary so post-update
// health never mixes with the old version's traffic).
func (d *Deployment) rollWindowLocked() {
	if d.winCount == 0 && d.winDenied == 0 && d.winFailed == 0 {
		return
	}
	rec := observe.Record{
		DeviceID:      d.DeviceID,
		Window:        d.window,
		Inferences:    d.winCount,
		Denied:        d.winDenied,
		MeanLatencyUS: float32(d.winLatency.Mean()),
		MaxLatencyUS:  float32(d.winLatency.Max()),
		EnergyMJ:      float32(d.winEnergyMJ),
	}
	if d.Monitor != nil {
		rec.DriftScore = float32(d.Monitor.MaxScore())
		rec.DriftAlarm = d.Monitor.Drifted()
	}
	for i := range d.featStats {
		rec.FeatureMeans = append(rec.FeatureMeans, float32(d.featStats[i].Mean()))
		rec.FeatureStds = append(rec.FeatureStds, float32(d.featStats[i].Std()))
	}
	d.Buffer.Add(rec)
	d.window++
	d.winCount, d.winDenied, d.winFailed = 0, 0, 0
	d.winLatency.Reset()
	d.winEnergyMJ = 0
	for i := range d.featStats {
		d.featStats[i].Reset()
	}
}

// Model exposes the deployed network for white-box operations (ownership
// verification in disputes). The caller must not mutate it. Compiled
// (procvm) deployments have no network; they return nil — see
// CompiledModule.
func (d *Deployment) Model() *nn.Network { return d.model }

// CompiledModule returns the procvm module serving this deployment, nil
// for network-backed deployments.
func (d *Deployment) CompiledModule() *procvm.Module {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.compiled
}

// ReferenceLogits runs the deployment's serving executable on one input
// row without metering, telemetry or pipeline stages — the bit-exact
// reference a conformance check compares any other serving path (batched,
// offloaded, enclave-hosted) against. It is read-only on model state.
func (d *Deployment) ReferenceLogits(x []float32) []float32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	in := tensor.FromSlice(append([]float32(nil), x...), 1, len(x))
	out := d.run.forwardBatch(in, nil)
	return append([]float32(nil), out.Data...)
}

// ExecutionScheme reports the weight precision of the kernels actually
// serving this deployment: the variant's integer scheme when the device
// executes the QModel natively, Float32 when the float engine serves it
// (float bases, and integer variants falling back to fake-quantized float
// on hardware without the bit width).
func (d *Deployment) ExecutionScheme() quant.Scheme {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.run.execScheme()
}

// Device returns the underlying simulated device.
func (d *Deployment) Device() *device.Device { return d.device }

// Watermarked reports whether a per-customer watermark was embedded into
// the deployed copy — such copies intentionally differ from the registry
// artifact, so a bit-exactness audit must skip them.
func (d *Deployment) Watermarked() bool { return d.watermark != "" }

// StateSnapshot returns the live version, model and watermark flag under
// the deployment lock — the auditor's consistent read. The returned model
// must not be mutated; updates swap the pointer rather than editing in
// place, so the snapshot stays coherent even if an update lands after.
func (d *Deployment) StateSnapshot() (*registry.ModelVersion, *nn.Network, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.Version, d.model, d.watermark != ""
}

// CurrentWindow returns the index of the open telemetry window. Every
// record this deployment has ever emitted carries a strictly smaller
// index — the monotonicity invariant the fleet auditor checks.
func (d *Deployment) CurrentWindow() uint32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.window
}
