package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tinymlops/internal/device"
	"tinymlops/internal/metering"
	"tinymlops/internal/nn"
	"tinymlops/internal/observe"
	"tinymlops/internal/procvm"
	"tinymlops/internal/registry"
	"tinymlops/internal/selector"
	"tinymlops/internal/tensor"
)

// image is one installed model generation: what a rollback restores.
type image struct {
	version *registry.ModelVersion
	model   *nn.Network
	monitor *observe.Monitor
}

// Deployment is one model running on one device: the decrypted model, the
// metering gate, the drift monitor, the telemetry buffer and the optional
// procvm pipeline stages. Deployments are updatable: Update hot-swaps the
// model to a new registry version (keeping meter and telemetry buffer) and
// Rollback reverts to the previous image, A/B-slot style.
type Deployment struct {
	DeviceID string
	Version  *registry.ModelVersion

	Meter   *metering.Meter
	Monitor *observe.Monitor
	Buffer  *observe.Buffer

	platform  *Platform
	device    *device.Device
	model     *nn.Network
	policy    selector.Policy
	watermark string
	pre       *procvm.Module
	post      *procvm.Module
	runtime   *procvm.Runtime

	// prev is the previous image (one-deep history, like an A/B flash
	// slot): Rollback restores it without re-downloading anything.
	prev *image

	mu          sync.Mutex
	tick        uint64
	window      uint32
	winCount    uint32
	winDenied   uint32
	winFailed   uint32 // post-gate inference failures (battery, pipeline)
	winLatency  observe.Welford
	winEnergyMJ float64
	featStats   []observe.Welford
	scratch     *nn.Scratch // reusable ForwardBatch buffers, guarded by mu
}

// ErrQueryDenied wraps metering denial at the inference entry point.
var ErrQueryDenied = errors.New("core: query denied by meter")

// InferenceResult is one query's outcome.
type InferenceResult struct {
	// Label is the predicted class (post-module output if one is bound,
	// otherwise the logits argmax).
	Label int
	// Latency is the modeled on-device execution time.
	Latency time.Duration
	// DriftAlarm reports whether the monitor has latched.
	DriftAlarm bool
}

// admitLocked runs the front half of the serving pipeline shared by every
// query path (local, batched admission, offloaded): advance the device
// tick, charge the prepaid meter (offline enforcement, §III-C — a denial
// costs the device nothing), run the portable preprocessing module
// (§III-A / §IV) and feed the drift monitor (§III-B). Post-gate failures
// count toward window health: a version that cannot serve queries must
// look unhealthy to a rollout gate. Caller holds d.mu.
func (d *Deployment) admitLocked(x []float32) ([]float32, error) {
	d.tick++
	if err := d.Meter.Charge(d.tick); err != nil {
		d.device.DenyQuery()
		d.winDenied++
		return nil, fmt.Errorf("%w: %v", ErrQueryDenied, err)
	}
	features := x
	if d.pre != nil {
		res, err := d.runtime.Run(d.pre, x)
		if err != nil {
			d.winFailed++
			return nil, fmt.Errorf("core: preprocess: %w", err)
		}
		if !res.Output.IsVec {
			d.winFailed++
			return nil, fmt.Errorf("core: preprocess must produce a vector")
		}
		features = res.Output.Vec
	}
	if d.Monitor != nil {
		d.Monitor.Observe(features)
	}
	return features, nil
}

// postLabelLocked applies the optional postprocessing module to one
// query's logits, falling back to the given argmax label. Caller holds
// d.mu.
func (d *Deployment) postLabelLocked(logits []float32, label int) (int, error) {
	if d.post == nil {
		return label, nil
	}
	res, err := d.runtime.Run(d.post, logits)
	if err != nil {
		d.winFailed++
		return 0, fmt.Errorf("core: postprocess: %w", err)
	}
	if res.Output.IsVec {
		d.winFailed++
		return 0, fmt.Errorf("core: postprocess must reduce to a scalar label")
	}
	return int(res.Output.Scalar), nil
}

// recordServedLocked accounts one fully served query into the open
// telemetry window (aggregates only; the input never leaves). Caller
// holds d.mu.
func (d *Deployment) recordServedLocked(features []float32, lat time.Duration, energyMJ float64) {
	d.winCount++
	d.winLatency.Add(float64(lat.Nanoseconds()) / 1e3) // fractional µs; MCU-class inferences can be sub-µs in the model
	d.winEnergyMJ += energyMJ
	if d.featStats == nil {
		d.featStats = make([]observe.Welford, len(features))
	}
	for i := range features {
		if i < len(d.featStats) {
			d.featStats[i].Add(float64(features[i]))
		}
	}
}

// Infer runs one metered, monitored query through the deployed pipeline.
func (d *Deployment) Infer(x []float32) (InferenceResult, error) {
	d.mu.Lock()
	defer d.mu.Unlock()

	// Metering gate, preprocessing, drift observation.
	features, err := d.admitLocked(x)
	if err != nil {
		return InferenceResult{}, err
	}

	// Inference on the device cost model.
	lat, err := d.device.RunInference(d.Version.Metrics.MACs, d.Version.Scheme.Bits())
	if err != nil {
		d.winFailed++
		return InferenceResult{}, fmt.Errorf("core: device: %w", err)
	}
	in := tensor.FromSlice(append([]float32(nil), features...), 1, len(features))
	logits := d.model.Predict(in)

	// Postprocessing and telemetry accounting.
	label, err := d.postLabelLocked(logits.Data, logits.ArgMaxRows()[0])
	if err != nil {
		return InferenceResult{}, err
	}
	d.recordServedLocked(features, lat, d.device.Caps.InferenceEnergy(d.Version.Metrics.MACs)*1e3)

	drift := d.Monitor != nil && d.Monitor.Drifted()
	return InferenceResult{Label: label, Latency: lat, DriftAlarm: drift}, nil
}

// BatchOutcome is one query's outcome within InferBatch.
type BatchOutcome struct {
	Result InferenceResult
	Err    error
}

// InferBatch runs a burst of queries through the deployed pipeline with a
// single batched forward pass over the rows that clear the metering and
// device gates. Per-query metering, drift observation, device energy and
// telemetry accounting are identical to calling Infer row by row, and the
// predicted labels are bit-identical (ForwardBatch preserves accumulation
// order); the one visible difference is that DriftAlarm reflects the
// monitor state at the end of the burst, since all rows are observed
// before the shared compute. Reusable scratch buffers make the steady
// state allocate O(batch) instead of O(batch × layers).
func (d *Deployment) InferBatch(rows [][]float32) []BatchOutcome {
	out := make([]BatchOutcome, len(rows))
	if len(rows) == 0 {
		return out
	}
	d.mu.Lock()
	defer d.mu.Unlock()

	type admitted struct {
		idx int
		lat time.Duration
	}
	var adm []admitted
	var feats []float32
	fdim := -1
	for qi, x := range rows {
		d.tick++
		if err := d.Meter.Charge(d.tick); err != nil {
			d.device.DenyQuery()
			d.winDenied++
			out[qi].Err = fmt.Errorf("%w: %v", ErrQueryDenied, err)
			continue
		}
		features := x
		if d.pre != nil {
			res, err := d.runtime.Run(d.pre, x)
			if err != nil {
				d.winFailed++
				out[qi].Err = fmt.Errorf("core: preprocess: %w", err)
				continue
			}
			if !res.Output.IsVec {
				d.winFailed++
				out[qi].Err = fmt.Errorf("core: preprocess must produce a vector")
				continue
			}
			features = res.Output.Vec
		}
		if fdim < 0 {
			fdim = len(features)
		}
		if len(features) != fdim {
			d.winFailed++
			out[qi].Err = fmt.Errorf("core: feature width %d differs from batch width %d", len(features), fdim)
			continue
		}
		if d.Monitor != nil {
			d.Monitor.Observe(features)
		}
		lat, err := d.device.RunInference(d.Version.Metrics.MACs, d.Version.Scheme.Bits())
		if err != nil {
			d.winFailed++
			out[qi].Err = fmt.Errorf("core: device: %w", err)
			continue
		}
		feats = append(feats, features...)
		adm = append(adm, admitted{idx: qi, lat: lat})
	}
	if len(adm) == 0 {
		return out
	}

	if d.scratch == nil {
		d.scratch = nn.NewScratch()
	}
	logits := d.model.ForwardBatch(tensor.FromSlice(feats, len(adm), fdim), d.scratch)
	labels := logits.ArgMaxRows()
	cols := logits.Dim(1)
	drift := d.Monitor != nil && d.Monitor.Drifted()
	for bi, a := range adm {
		label := labels[bi]
		if d.post != nil {
			res, err := d.runtime.Run(d.post, append([]float32(nil), logits.Data[bi*cols:(bi+1)*cols]...))
			if err != nil {
				d.winFailed++
				out[a.idx].Err = fmt.Errorf("core: postprocess: %w", err)
				continue
			}
			if res.Output.IsVec {
				d.winFailed++
				out[a.idx].Err = fmt.Errorf("core: postprocess must reduce to a scalar label")
				continue
			}
			label = int(res.Output.Scalar)
		}
		// Telemetry accounting, like Infer's, covers only queries the full
		// pipeline served; row order keeps the Welford states identical to
		// the serial path's.
		row := feats[bi*fdim : (bi+1)*fdim]
		d.winCount++
		d.winLatency.Add(float64(a.lat.Nanoseconds()) / 1e3)
		d.winEnergyMJ += d.device.Caps.InferenceEnergy(d.Version.Metrics.MACs) * 1e3
		if d.featStats == nil {
			d.featStats = make([]observe.Welford, len(row))
		}
		for i := range row {
			if i < len(d.featStats) {
				d.featStats[i].Add(float64(row[i]))
			}
		}
		out[a.idx].Result = InferenceResult{Label: label, Latency: a.lat, DriftAlarm: drift}
	}
	return out
}

// rollWindow closes the current telemetry window into the buffer.
func (d *Deployment) rollWindow() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.rollWindowLocked()
}

// rollWindowLocked is rollWindow for callers already holding d.mu (the
// update path rolls the window at every version boundary so post-update
// health never mixes with the old version's traffic).
func (d *Deployment) rollWindowLocked() {
	if d.winCount == 0 && d.winDenied == 0 && d.winFailed == 0 {
		return
	}
	rec := observe.Record{
		DeviceID:      d.DeviceID,
		Window:        d.window,
		Inferences:    d.winCount,
		Denied:        d.winDenied,
		MeanLatencyUS: float32(d.winLatency.Mean()),
		MaxLatencyUS:  float32(d.winLatency.Max()),
		EnergyMJ:      float32(d.winEnergyMJ),
	}
	if d.Monitor != nil {
		rec.DriftScore = float32(d.Monitor.MaxScore())
		rec.DriftAlarm = d.Monitor.Drifted()
	}
	for i := range d.featStats {
		rec.FeatureMeans = append(rec.FeatureMeans, float32(d.featStats[i].Mean()))
		rec.FeatureStds = append(rec.FeatureStds, float32(d.featStats[i].Std()))
	}
	d.Buffer.Add(rec)
	d.window++
	d.winCount, d.winDenied, d.winFailed = 0, 0, 0
	d.winLatency.Reset()
	d.winEnergyMJ = 0
	for i := range d.featStats {
		d.featStats[i].Reset()
	}
}

// Model exposes the deployed network for white-box operations (ownership
// verification in disputes). The caller must not mutate it.
func (d *Deployment) Model() *nn.Network { return d.model }

// Device returns the underlying simulated device.
func (d *Deployment) Device() *device.Device { return d.device }

// Watermarked reports whether a per-customer watermark was embedded into
// the deployed copy — such copies intentionally differ from the registry
// artifact, so a bit-exactness audit must skip them.
func (d *Deployment) Watermarked() bool { return d.watermark != "" }

// StateSnapshot returns the live version, model and watermark flag under
// the deployment lock — the auditor's consistent read. The returned model
// must not be mutated; updates swap the pointer rather than editing in
// place, so the snapshot stays coherent even if an update lands after.
func (d *Deployment) StateSnapshot() (*registry.ModelVersion, *nn.Network, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.Version, d.model, d.watermark != ""
}

// CurrentWindow returns the index of the open telemetry window. Every
// record this deployment has ever emitted carries a strictly smaller
// index — the monotonicity invariant the fleet auditor checks.
func (d *Deployment) CurrentWindow() uint32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.window
}
