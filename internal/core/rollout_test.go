package core

import (
	"reflect"
	"strings"
	"testing"

	"tinymlops/internal/dataset"
	"tinymlops/internal/device"
	"tinymlops/internal/nn"
	"tinymlops/internal/registry"
	"tinymlops/internal/rollout"
	"tinymlops/internal/tensor"
)

// rolloutFixture builds a platform with an always-online 12-device fleet,
// a trained v1 published without variants (so every device runs the same
// artifact and deltas are same-topology), all devices deployed, and a v2
// derived from v1 by fine-tuning only the head layer (a sparse update).
type rolloutFixture struct {
	p        *Platform
	ds       *dataset.Dataset
	v1, v2   *registry.ModelVersion
	inRows   [][]float32 // in-distribution bake traffic
	badRows  [][]float32 // mean-shifted bake traffic (trips the monitor)
	preByDev map[string]string
}

func baseOnlySpec(ds *dataset.Dataset) registry.OptimizationSpec {
	return registry.OptimizationSpec{Evaluate: func(n *nn.Network) float64 {
		return nn.Evaluate(n, ds.X, ds.Y)
	}}
}

func newRolloutFixture(t *testing.T, workers int) *rolloutFixture {
	t.Helper()
	rng := tensor.NewRNG(21)
	fleet, err := device.NewStandardFleet(device.FleetSpec{CountPerProfile: 2, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range fleet.Devices() {
		d.SetBehavior(1, 1, 0)
	}
	fleet.Tick()
	p, err := New(fleet, Config{VendorKey: vendorKey, Seed: 21, MinCohort: 1, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.Blobs(rng, 900, 4, 3, 5)
	net := nn.NewNetwork([]int{4}, nn.NewDense(4, 16, rng), nn.NewReLU(), nn.NewDense(16, 3, rng))
	if _, err := nn.Train(net, ds.X, ds.Y, nn.TrainConfig{
		Epochs: 8, BatchSize: 32, Optimizer: nn.NewSGD(0.1).WithMomentum(0.9), RNG: rng,
	}); err != nil {
		t.Fatal(err)
	}
	v1s, err := p.Publish("clf", net, ds, baseOnlySpec(ds))
	if err != nil {
		t.Fatal(err)
	}
	// v2: fine-tune only the head — the delta covers one layer's tensors.
	v2net := net.Clone()
	head := v2net.Layers()[2].(*nn.Dense)
	for i := range head.W.Value.Data {
		head.W.Value.Data[i] += 0.01 * float32(i%7)
	}
	v2s, err := p.Publish("clf", v2net, ds, baseOnlySpec(ds))
	if err != nil {
		t.Fatal(err)
	}

	ids := make([]string, 0, fleet.Size())
	for _, d := range fleet.Devices() {
		ids = append(ids, d.ID)
	}
	deps, err := p.DeployMany(ids, "clf", DeployConfig{PrepaidQueries: 100000, Calibration: ds})
	if err != nil {
		t.Fatal(err)
	}
	f := &rolloutFixture{p: p, ds: ds, v1: v1s[0], v2: v2s[0], preByDev: make(map[string]string)}
	for i := 0; i < 40; i++ {
		row := make([]float32, 4)
		bad := make([]float32, 4)
		for c := 0; c < 4; c++ {
			row[c] = ds.X.At2(i, c)
			bad[c] = ds.X.At2(i, c) + 6
		}
		f.inRows = append(f.inRows, row)
		f.badRows = append(f.badRows, bad)
	}
	// Pre-rollout traffic establishes each device's health baseline.
	for _, dep := range deps {
		f.preByDev[dep.DeviceID] = dep.Version.ID
		for _, o := range dep.InferBatch(f.inRows) {
			if o.Err != nil {
				t.Fatal(o.Err)
			}
		}
	}
	return f
}

// drive pushes rows through each listed deployment, serially per wave so
// the traffic itself cannot introduce scheduling nondeterminism.
func (f *rolloutFixture) drive(t *testing.T, ids []string, rows [][]float32, repeats int) {
	t.Helper()
	for _, id := range ids {
		dep, ok := f.p.Deployment(id)
		if !ok {
			t.Fatalf("no deployment on %s", id)
		}
		for r := 0; r < repeats; r++ {
			for _, o := range dep.InferBatch(rows) {
				if o.Err != nil {
					t.Fatal(o.Err)
				}
			}
		}
	}
}

// runArc executes the acceptance scenario: canary bakes on healthy
// traffic and passes; the second wave bakes on drifted traffic, trips the
// gate and is rolled back.
func (f *rolloutFixture) runArc(t *testing.T) *rollout.Result {
	t.Helper()
	res, err := f.p.Rollout(f.v2, RolloutConfig{
		Waves: []rollout.Wave{
			{Name: "canary", Fraction: 0.25},
			{Name: "fleet", Fraction: 1.0},
		},
		Seed:        5,
		Calibration: f.ds,
		Bake: func(w rollout.Wave, ids []string) error {
			if w.Name == "canary" {
				f.drive(t, ids, f.inRows, 5)
			} else {
				f.drive(t, ids, f.badRows, 8)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRolloutArcCanaryKeepsV2CohortRollsBack is the acceptance scenario:
// publish v2 → canary passes → the fleet wave trips the drift gate → its
// devices are rolled back to v1 while canary devices keep v2, with meter
// state preserved and the same-topology update shipped as a delta.
func TestRolloutArcCanaryKeepsV2CohortRollsBack(t *testing.T) {
	f := newRolloutFixture(t, 4)

	// Meter continuity probe: any device, tracked across the whole arc.
	probe, _ := f.p.Deployment("phone-00")
	voucherBefore := probe.Meter.Voucher().ID
	usedBefore := probe.Meter.Used()

	res := f.runArc(t)
	if res.Completed {
		t.Fatal("rollout reported completion despite the failed gate")
	}
	if len(res.Waves) != 2 {
		t.Fatalf("waves = %d", len(res.Waves))
	}
	canary, fleetW := res.Waves[0], res.Waves[1]
	if !canary.Gate.Pass || canary.RolledBack {
		t.Fatalf("canary gate = %+v", canary.Gate)
	}
	if fleetW.Gate.Pass || !fleetW.RolledBack {
		t.Fatalf("fleet gate = %+v", fleetW.Gate)
	}
	if fleetW.Gate.DriftAlarms == 0 || !strings.Contains(strings.Join(fleetW.Gate.Reasons, ";"), "drift") {
		t.Fatalf("gate did not fail on drift: %+v", fleetW.Gate)
	}
	if len(canary.DeviceIDs) != 3 || len(fleetW.DeviceIDs) != 9 {
		t.Fatalf("wave sizes = %d/%d", len(canary.DeviceIDs), len(fleetW.DeviceIDs))
	}

	// Canary devices keep v2; rolled-back devices are on their original v1.
	for _, id := range canary.DeviceIDs {
		dep, _ := f.p.Deployment(id)
		if dep.Version.ID != f.v2.ID {
			t.Fatalf("canary %s on %s, want v2 %s", id, dep.Version.ID, f.v2.ID)
		}
	}
	for _, id := range fleetW.DeviceIDs {
		dep, _ := f.p.Deployment(id)
		if dep.Version.ID != f.preByDev[id] {
			t.Fatalf("rolled-back %s on %s, want %s", id, dep.Version.ID, f.preByDev[id])
		}
	}

	// Same-topology update shipped as a delta, measurably below full size.
	for _, o := range append(canary.Outcomes, fleetW.Outcomes...) {
		if o.UpdateErr != "" {
			t.Fatalf("update failed on %s: %s", o.DeviceID, o.UpdateErr)
		}
		if !o.Transfer.UsedDelta {
			t.Fatalf("%s shipped a full artifact", o.DeviceID)
		}
		if o.Transfer.ShipBytes >= int64(f.v2.Metrics.SizeBytes) {
			t.Fatalf("%s delta %d B not below full %d B", o.DeviceID, o.Transfer.ShipBytes, f.v2.Metrics.SizeBytes)
		}
	}

	// Meter state survived update (and, for fleet-wave devices, rollback).
	if probe.Meter.Voucher().ID != voucherBefore {
		t.Fatal("update replaced the prepaid voucher")
	}
	if probe.Meter.Used() <= usedBefore {
		t.Fatal("meter did not keep counting across the update")
	}
}

// TestRolloutArcDeterministicAcrossWorkerCounts replays the full arc at
// two worker counts and demands identical rollout records and fleet state.
func TestRolloutArcDeterministicAcrossWorkerCounts(t *testing.T) {
	type snapshot struct {
		Res      *rollout.Result
		Versions map[string]string
		Used     map[string]uint64
	}
	run := func(workers int) snapshot {
		f := newRolloutFixture(t, workers)
		res := f.runArc(t)
		s := snapshot{Res: res, Versions: make(map[string]string), Used: make(map[string]uint64)}
		for _, dep := range f.p.Deployments() {
			s.Versions[dep.DeviceID] = dep.Version.ID
			s.Used[dep.DeviceID] = dep.Meter.Used()
		}
		return s
	}
	s1 := run(1)
	s8 := run(8)
	if !reflect.DeepEqual(s1.Res, s8.Res) {
		t.Fatalf("rollout records diverged:\n1: %+v\n8: %+v", s1.Res, s8.Res)
	}
	if !reflect.DeepEqual(s1.Versions, s8.Versions) {
		t.Fatalf("fleet versions diverged:\n1: %v\n8: %v", s1.Versions, s8.Versions)
	}
	if !reflect.DeepEqual(s1.Used, s8.Used) {
		t.Fatalf("meter state diverged:\n1: %v\n8: %v", s1.Used, s8.Used)
	}
}

// TestUpdateDeltaVsFullBytes pins the transfer accounting: a forced full
// update ships the packed artifact; the delta path ships (and flashes)
// strictly less for a head-only fine-tune, and the device's flash counter
// sees the difference.
func TestUpdateDeltaVsFullBytes(t *testing.T) {
	f := newRolloutFixture(t, 2)
	dep, _ := f.p.Deployment("edge-gateway-00")

	full, err := dep.Update(f.v2, UpdateOptions{Calibration: f.ds, ForceFull: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.UsedDelta || full.ShipBytes != int64(f.v2.Metrics.SizeBytes) {
		t.Fatalf("full update report = %+v", full)
	}
	if _, err := dep.Rollback(); err != nil {
		t.Fatal(err)
	}
	if dep.Version.ID != f.v1.ID {
		t.Fatalf("rollback landed on %s", dep.Version.ID)
	}
	if _, err := dep.Rollback(); err == nil {
		t.Fatal("second rollback without an update succeeded")
	}

	flashedBefore := dep.Device().Snapshot().FlashedBytes
	del, err := dep.Update(f.v2, UpdateOptions{Calibration: f.ds})
	if err != nil {
		t.Fatal(err)
	}
	if !del.UsedDelta {
		t.Fatal("same-topology update did not use a delta")
	}
	if del.ShipBytes >= full.ShipBytes || del.FlashBytes >= full.FlashBytes {
		t.Fatalf("delta %d/%d B not below full %d/%d B",
			del.ShipBytes, del.FlashBytes, full.ShipBytes, full.FlashBytes)
	}
	if del.ChangedParams == 0 || del.ChangedParams >= del.TotalParams {
		t.Fatalf("delta sparsity = %d/%d", del.ChangedParams, del.TotalParams)
	}
	if got := dep.Device().Snapshot().FlashedBytes - flashedBefore; got != del.FlashBytes {
		t.Fatalf("device flashed %d B, report says %d", got, del.FlashBytes)
	}
	// The hot-swapped model serves traffic and matches v2's predictions.
	x := make([]float32, 4)
	for c := range x {
		x[c] = f.ds.X.At2(0, c)
	}
	if _, err := dep.Infer(x); err != nil {
		t.Fatal(err)
	}
	// An update to the version already running is a content-addressed no-op.
	noop, err := dep.Update(f.v2, UpdateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if noop.ShipBytes != 0 || noop.From.ID != noop.To.ID {
		t.Fatalf("no-op report = %+v", noop)
	}
}

// TestHealthCountsFailedInferences: a version that errors after clearing
// the metering gate must look unhealthy, not idle — otherwise a rollout
// gate would promote a model that serves nothing.
func TestHealthCountsFailedInferences(t *testing.T) {
	f := newRolloutFixture(t, 1)
	dep, _ := f.p.Deployment("phone-00")
	before := dep.Health()

	// Denials count as errors.
	small, err := f.p.Deploy("phone-01", "clf", DeployConfig{PrepaidQueries: 1})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, 4)
	if _, err := small.Infer(x); err != nil {
		t.Fatal(err)
	}
	if _, err := small.Infer(x); err == nil {
		t.Fatal("quota not enforced")
	}
	if h := small.Health(); h.Inferences != 1 || h.Errors != 1 {
		t.Fatalf("health after denial = %+v", h)
	}

	// Post-gate pipeline failures count too: a mixed-width batch fails
	// every row after the first without touching the meter denials.
	rows := [][]float32{make([]float32, 4), make([]float32, 7)}
	outs := dep.InferBatch(rows)
	if outs[1].Err == nil {
		t.Fatal("mixed feature widths accepted")
	}
	h := dep.Health()
	if h.Errors != before.Errors+1 {
		t.Fatalf("failed inference not in health: before %+v after %+v", before, h)
	}
}

// TestUpdateReselectsVariantPerDevice checks §III-A re-selection: with a
// full variant matrix, updating re-runs selection so heterogeneous devices
// land on different variants of the new base.
func TestUpdateReselectsVariantPerDevice(t *testing.T) {
	p, ds, _ := fixture(t, 31)
	ids := []string{"m0-sensor-00", "npu-board-00", "edge-gateway-00"}
	for _, id := range ids {
		if _, err := p.Deploy(id, "clf", DeployConfig{PrepaidQueries: 100, Calibration: ds}); err != nil {
			t.Fatal(err)
		}
	}
	rng := tensor.NewRNG(77)
	net2 := nn.NewNetwork([]int{4}, nn.NewDense(4, 16, rng), nn.NewReLU(), nn.NewDense(16, 3, rng))
	if _, err := nn.Train(net2, ds.X, ds.Y, nn.TrainConfig{
		Epochs: 6, BatchSize: 32, Optimizer: nn.NewSGD(0.1), RNG: rng,
	}); err != nil {
		t.Fatal(err)
	}
	v2s, err := p.Publish("clf", net2, ds, DefaultOptimizationSpec(ds))
	if err != nil {
		t.Fatal(err)
	}
	chosen := make(map[string]bool)
	for _, id := range ids {
		dep, _ := p.Deployment(id)
		rep, err := dep.Update(v2s[0], UpdateOptions{Calibration: ds})
		if err != nil {
			t.Fatalf("update %s: %v", id, err)
		}
		chosen[rep.To.ID] = true
		// Every chosen version belongs to the v2 family.
		if rep.To.ID != v2s[0].ID && rep.To.ParentID != v2s[0].ID {
			t.Fatalf("%s landed outside the target family: %+v", id, rep.To)
		}
	}
	if len(chosen) < 2 {
		t.Fatal("heterogeneous fleet collapsed to one variant on update")
	}
}
