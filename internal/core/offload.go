package core

import (
	"errors"
	"fmt"
	"time"

	"tinymlops/internal/engine"
	"tinymlops/internal/market"
	"tinymlops/internal/offload"
	"tinymlops/internal/quant"
)

// ErrOffloadStale is returned by OffloadSession.Infer after the underlying
// deployment moved to a different model version (an OTA update landed):
// the session's plan and the cloud's registered suffix no longer describe
// the device's model. Re-create the session against the new version.
var ErrOffloadStale = errors.New("core: offload session is stale (deployment was updated)")

// ErrOffloadInteger is returned by Platform.Offload for deployments served
// by the integer kernels: the split runtime's boundary activations move
// through the float32 tensor codec and the cloud suffix executes the float
// artifact, so a split answer could not be bit-exact with the device's own
// integer forward. Callers keep such deployments fully on-device (their
// native kernels are the fast path anyway) or redeploy with a float
// selection policy before offloading.
var ErrOffloadInteger = errors.New("core: integer-kernel deployment cannot offload (boundary activations are float-codec only)")

// OffloadConfig controls Platform.Offload.
type OffloadConfig struct {
	// Cloud is the suffix-serving tier (required). The platform registers
	// the deployment's model version with it automatically.
	Cloud *offload.CloudTier
	// RTT is the fixed round-trip to the cloud used in planning (also the
	// default for Replan.RTT).
	RTT time.Duration
	// Retry bounds re-admission after cloud shedding.
	Retry engine.RetryPolicy
	// Replan tunes the live re-planning loop (hysteresis thresholds,
	// congestion penalty, energy objective).
	Replan offload.ReplanConfig
	// Plan, when non-nil, pins the initial cut instead of planning from
	// the device's current conditions.
	Plan *market.SplitPlan
}

// OffloadSession is a deployment serving queries through the split
// runtime: the metering gate, drift monitor, telemetry windows, and pre/
// post pipeline modules are the deployment's own — only the forward pass
// moves, executing under a live SplitPlan with cloud suffix service.
type OffloadSession struct {
	dep       *Deployment
	sess      *offload.Session
	versionID string
}

// OffloadOutcome is one offloaded query's result: the deployment-level
// view plus the split execution detail.
type OffloadOutcome struct {
	InferenceResult
	// Split records how the query actually executed (mode, cut, boundary
	// bytes, cloud batch, energy).
	Split offload.Result
}

// Offload opens a split-execution session on a live deployment: queries
// submitted through the session stay metered, monitored and telemetered
// exactly like Deployment.Infer, but the forward pass executes under a
// live SplitPlan — prefix on the device, suffix on cfg.Cloud — re-planned
// as bandwidth, battery and cloud congestion drift.
//
// Watermarked deployments are refused: the per-customer mark perturbs the
// on-device weights, so a cloud suffix computed from the registry artifact
// could not be bit-exact with the device's own model. Integer-kernel
// deployments are refused with ErrOffloadInteger for the symmetric reason
// — the boundary codec and the cloud tier are float32-only.
func (p *Platform) Offload(deviceID string, cfg OffloadConfig) (*OffloadSession, error) {
	dep, ok := p.Deployment(deviceID)
	if !ok {
		return nil, fmt.Errorf("core: no deployment on device %q", deviceID)
	}
	if cfg.Cloud == nil {
		return nil, fmt.Errorf("core: offload needs a cloud tier")
	}
	if dep.Watermarked() {
		return nil, fmt.Errorf("core: deployment on %s is watermarked; offload would break bit-exactness", deviceID)
	}
	if sch := dep.ExecutionScheme(); sch != quant.Float32 {
		return nil, fmt.Errorf("%w: %s executes %s", ErrOffloadInteger, deviceID, sch)
	}
	version, model, _ := dep.StateSnapshot()
	// The cloud serves the registry's own artifact — for an unwatermarked
	// deployment that is bit-identical to the device's decrypted copy.
	// Fleet-wide session setup registers each version once, not per
	// device, so skip the artifact load when the tier already has it.
	if !cfg.Cloud.Registered(version.ID) {
		cloudModel, err := p.Registry.Load(version.ID)
		if err != nil {
			return nil, fmt.Errorf("core: offload: %w", err)
		}
		if err := cfg.Cloud.Register(version.ID, cloudModel, version.Scheme.Bits()); err != nil {
			return nil, err
		}
	}
	// A session's first Infer would otherwise block forever on a tier
	// whose dispatchers were never launched — while holding the
	// deployment lock. Start is idempotent, so just ensure it.
	cfg.Cloud.Start()
	replan := cfg.Replan
	if replan.RTT == 0 {
		replan.RTT = cfg.RTT
	}
	sess, err := offload.NewSession(offload.SessionConfig{
		Tenant:    deviceID,
		VersionID: version.ID,
		Device:    dep.device,
		Model:     model,
		Bits:      version.Scheme.Bits(),
		Cloud:     cfg.Cloud,
		Retry:     cfg.Retry,
		Replan:    replan,
		Plan:      cfg.Plan,
	})
	if err != nil {
		return nil, err
	}
	return &OffloadSession{dep: dep, sess: sess, versionID: version.ID}, nil
}

// Plan returns the split currently in force.
func (s *OffloadSession) Plan() market.SplitPlan { return s.sess.Plan() }

// Stats returns the session's split-execution counters.
func (s *OffloadSession) Stats() offload.Stats { return s.sess.Stats() }

// Deployment returns the deployment this session serves.
func (s *OffloadSession) Deployment() *Deployment { return s.dep }

// Infer runs one metered, monitored query through the split runtime. The
// pipeline is Deployment.Infer's, step for step — metering gate first (an
// exhausted voucher denies before any compute), portable preprocessing,
// drift observation, then the split forward pass instead of the local
// one, then postprocessing and telemetry accounting. The label and logits
// are bit-identical to what Deployment.Infer would produce, whichever
// mode the query executed in.
func (s *OffloadSession) Infer(x []float32) (OffloadOutcome, error) {
	d := s.dep
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.Version.ID != s.versionID {
		return OffloadOutcome{}, fmt.Errorf("%w: %s is now on %s, session bound to %s",
			ErrOffloadStale, d.DeviceID, d.Version.ID, s.versionID)
	}
	// Metering gate (§III-C: offloading never escapes pay-per-query),
	// preprocessing, drift observation — the deployment's shared front
	// half.
	features, err := d.admitLocked(x)
	if err != nil {
		return OffloadOutcome{}, err
	}

	// Split execution under the live plan (replacing the local-only
	// forward). Device compute, radio and cloud service charge inside.
	res, err := s.sess.Exec(features)
	if err != nil {
		d.winFailed++
		return OffloadOutcome{}, fmt.Errorf("core: offload: %w", err)
	}

	// Postprocessing on the returned logits, then telemetry accounting —
	// energy is what the device actually spent (prefix + radio, or the
	// full pass when the plan stayed local).
	label, err := d.postLabelLocked(append([]float32(nil), res.Logits...), res.Label)
	if err != nil {
		return OffloadOutcome{}, err
	}
	d.recordServedLocked(features, res.Latency, res.DeviceEnergyJ*1e3)

	drift := d.Monitor != nil && d.Monitor.Drifted()
	return OffloadOutcome{
		InferenceResult: InferenceResult{Label: label, Latency: res.Latency, DriftAlarm: drift},
		Split:           res,
	}, nil
}
