package core

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"time"

	"tinymlops/internal/enclave"
	"tinymlops/internal/engine"
	"tinymlops/internal/market"
	"tinymlops/internal/offload"
	"tinymlops/internal/quant"
)

// ErrOffloadStale is returned by OffloadSession.Infer after the underlying
// deployment moved to a different model version (an OTA update landed):
// the session's plan and the cloud's registered suffix no longer describe
// the device's model. Re-create the session against the new version.
var ErrOffloadStale = errors.New("core: offload session is stale (deployment was updated)")

// ErrOffloadInteger was returned by Platform.Offload for integer-kernel
// deployments before the quantized boundary codec existed. Integer-native
// deployments now split: the boundary crosses as int8 codes plus a dynamic
// per-example scale, and the cloud resumes the same integer kernels — so
// this sentinel is retired and no longer returned. It remains exported so
// callers' errors.Is checks keep compiling (they simply never match).
var ErrOffloadInteger = errors.New("core: integer-kernel deployment cannot offload (boundary activations are float-codec only)")

// OffloadConfig controls Platform.Offload.
type OffloadConfig struct {
	// Cloud is the suffix-serving tier (required). The platform registers
	// the deployment's model version with it automatically.
	Cloud *offload.CloudTier
	// RTT is the fixed round-trip to the cloud used in planning (also the
	// default for Replan.RTT).
	RTT time.Duration
	// Retry bounds re-admission after cloud shedding.
	Retry engine.RetryPolicy
	// Replan tunes the live re-planning loop (hysteresis thresholds,
	// congestion penalty, energy objective).
	Replan offload.ReplanConfig
	// Plan, when non-nil, pins the initial cut instead of planning from
	// the device's current conditions.
	Plan *market.SplitPlan
	// Enclave, when non-nil, hosts protected suffix execution (watermarked
	// and compiled deployments) instead of the platform's lazily
	// provisioned shared session. Its enclave must be provisioned from the
	// platform vendor key — the manufacturer root the platform verifies
	// attestation reports against.
	Enclave *enclave.Session
}

// OffloadSession is a deployment serving queries through the split
// runtime: the metering gate, drift monitor, telemetry windows, and pre/
// post pipeline modules are the deployment's own — only the forward pass
// moves, executing under a live SplitPlan with cloud suffix service.
type OffloadSession struct {
	dep       *Deployment
	sess      *offload.Session
	versionID string
}

// OffloadOutcome is one offloaded query's result: the deployment-level
// view plus the split execution detail.
type OffloadOutcome struct {
	InferenceResult
	// Split records how the query actually executed (mode, cut, boundary
	// bytes, cloud batch, energy).
	Split offload.Result
}

// Offload opens a split-execution session on a live deployment: queries
// submitted through the session stay metered, monitored and telemetered
// exactly like Deployment.Infer, but the forward pass executes under a
// live SplitPlan — prefix on the device, suffix on cfg.Cloud — re-planned
// as bandwidth, battery and cloud congestion drift.
//
// Every variant kind splits, each on its own executor, and every answer
// stays bit-identical to the device serving the query alone:
//
//   - Float deployments ship float boundary activations; the cloud serves
//     the registry artifact (bit-identical to the device's copy).
//   - Integer-native deployments ship int8 boundary codes plus a dynamic
//     per-example scale (the QAB1 codec); the cloud resumes the same
//     integer kernels at a dense-stage cut.
//   - Watermarked deployments seal their per-device marked copy into the
//     cloud enclave: the suffix executes inside the protected world (paying
//     its slowdown), so the mark never exists in cloud plaintext.
//   - Compiled (procvm) deployments seal the module into the enclave and
//     run it whole there when the plan offloads (cut 0).
//
// Each sealed artifact is attested at provisioning: the platform verifies
// the report against the vendor root key and the artifact digest before
// registering the entry.
func (p *Platform) Offload(deviceID string, cfg OffloadConfig) (*OffloadSession, error) {
	dep, ok := p.Deployment(deviceID)
	if !ok {
		return nil, fmt.Errorf("core: no deployment on device %q", deviceID)
	}
	if cfg.Cloud == nil {
		return nil, fmt.Errorf("core: offload needs a cloud tier")
	}
	version, model, watermarked := dep.StateSnapshot()
	compiled := dep.CompiledModule()
	execScheme := dep.ExecutionScheme()
	if watermarked && execScheme != quant.Float32 {
		return nil, fmt.Errorf("core: watermarked integer-native deployment on %s cannot offload (the enclave executes the float copy)", deviceID)
	}

	replan := cfg.Replan
	if replan.RTT == 0 {
		replan.RTT = cfg.RTT
	}
	scfg := offload.SessionConfig{
		Tenant: deviceID,
		Device: dep.device,
		Cloud:  cfg.Cloud,
		Retry:  cfg.Retry,
		Replan: replan,
		Plan:   cfg.Plan,
	}

	switch {
	case compiled != nil:
		// Obfuscated deployment: the module is sealed to the enclave and
		// executes whole in the protected world when the plan offloads.
		sess, err := p.enclaveSession(cfg)
		if err != nil {
			return nil, err
		}
		if !cfg.Cloud.Registered(version.ID) {
			blob, err := p.Registry.Bytes(version.ID)
			if err != nil {
				return nil, fmt.Errorf("core: offload: %w", err)
			}
			if err := p.provisionSealed(sess, version.ID, blob, true); err != nil {
				return nil, err
			}
			if err := cfg.Cloud.RegisterModule(version.ID, sess, version.ID, version.Metrics.MACs); err != nil {
				return nil, err
			}
		}
		// The module does not declare input geometry; the float artifact it
		// was lowered from does.
		parent, err := p.Registry.Load(version.ParentID)
		if err != nil {
			return nil, fmt.Errorf("core: offload: %w", err)
		}
		feats := 1
		for _, d := range parent.InputShape {
			feats *= d
		}
		scfg.VersionID = version.ID
		scfg.Module = compiled
		scfg.ModuleMACs = version.Metrics.MACs
		scfg.InFeatures = feats
		scfg.Bits = 32

	case watermarked:
		// The per-device marked copy is sealed to the enclave under a
		// per-device key: its suffix executes only inside the protected
		// world, so the split no longer breaks watermark protection.
		sess, err := p.enclaveSession(cfg)
		if err != nil {
			return nil, err
		}
		key := version.ID + "@" + deviceID
		if !cfg.Cloud.Registered(key) {
			blob, err := model.MarshalBinary()
			if err != nil {
				return nil, fmt.Errorf("core: offload: %w", err)
			}
			if err := p.provisionSealed(sess, key, blob, false); err != nil {
				return nil, err
			}
			if err := cfg.Cloud.RegisterProtected(key, sess, key, version.Scheme.Bits()); err != nil {
				return nil, err
			}
		}
		scfg.VersionID = key
		scfg.Model = model
		scfg.Bits = version.Scheme.Bits()

	case execScheme != quant.Float32:
		// Integer-native deployment: the cloud lowers the registry artifact
		// onto the same integer kernels; boundaries cross as int8 codes.
		// The "#q" key keeps the quant entry distinct from any float entry
		// of the same version (devices without native support still split
		// in float).
		key := version.ID + "#q"
		if !cfg.Cloud.Registered(key) {
			cloudModel, err := p.Registry.Load(version.ID)
			if err != nil {
				return nil, fmt.Errorf("core: offload: %w", err)
			}
			if err := cfg.Cloud.RegisterQuant(key, cloudModel, execScheme); err != nil {
				return nil, err
			}
		}
		scfg.VersionID = key
		scfg.Model = model
		scfg.Scheme = execScheme
		scfg.Bits = execScheme.Bits()

	default:
		// The cloud serves the registry's own artifact — for an
		// unwatermarked deployment that is bit-identical to the device's
		// decrypted copy. Fleet-wide session setup registers each version
		// once, not per device, so skip the load when the tier has it.
		if !cfg.Cloud.Registered(version.ID) {
			cloudModel, err := p.Registry.Load(version.ID)
			if err != nil {
				return nil, fmt.Errorf("core: offload: %w", err)
			}
			if err := cfg.Cloud.Register(version.ID, cloudModel, version.Scheme.Bits()); err != nil {
				return nil, err
			}
		}
		scfg.VersionID = version.ID
		scfg.Model = model
		scfg.Bits = version.Scheme.Bits()
	}

	// A session's first Infer would otherwise block forever on a tier
	// whose dispatchers were never launched — while holding the
	// deployment lock. Start is idempotent, so just ensure it.
	cfg.Cloud.Start()
	sess, err := offload.NewSession(scfg)
	if err != nil {
		return nil, err
	}
	return &OffloadSession{dep: dep, sess: sess, versionID: version.ID}, nil
}

// enclaveSession returns the session hosting protected suffix execution:
// the caller-supplied one, or the platform's shared cloud enclave session,
// provisioned on first use from the vendor key.
func (p *Platform) enclaveSession(cfg OffloadConfig) (*enclave.Session, error) {
	if cfg.Enclave != nil {
		return cfg.Enclave, nil
	}
	p.encMu.Lock()
	defer p.encMu.Unlock()
	if p.encSess == nil {
		enc, err := enclave.New("cloud-enclave", p.vendorKey, 1.2)
		if err != nil {
			return nil, fmt.Errorf("core: provision cloud enclave: %w", err)
		}
		p.encSess = enclave.NewSession(enc)
	}
	return p.encSess, nil
}

// provisionSealed seals an artifact into the enclave session under artID
// and verifies the attestation chain before anything serves from it: the
// loaded measurement must equal the artifact digest, and the session's
// report over it must verify against the vendor root. Sealing advances the
// enclave's monotonic counter, so it serializes under encMu.
func (p *Platform) provisionSealed(sess *enclave.Session, artID string, blob []byte, module bool) error {
	p.encMu.Lock()
	sealed, err := sess.Enclave().Seal(blob)
	p.encMu.Unlock()
	if err != nil {
		return fmt.Errorf("core: seal %s: %w", artID, err)
	}
	var meas [32]byte
	if module {
		meas, err = sess.LoadSealedModule(artID, sealed)
	} else {
		meas, err = sess.LoadSealedNetwork(artID, sealed)
	}
	if err != nil {
		return fmt.Errorf("core: load sealed %s: %w", artID, err)
	}
	want := sha256.Sum256(blob)
	if meas != want {
		return fmt.Errorf("core: enclave measurement mismatch for %s", artID)
	}
	rep, err := sess.Attest(artID, want[:16])
	if err != nil {
		return fmt.Errorf("core: attest %s: %w", artID, err)
	}
	if !enclave.VerifyReport(p.vendorKey, rep) || rep.Measurement != want {
		return fmt.Errorf("core: attestation for %s failed verification", artID)
	}
	return nil
}

// Plan returns the split currently in force.
func (s *OffloadSession) Plan() market.SplitPlan { return s.sess.Plan() }

// Stats returns the session's split-execution counters.
func (s *OffloadSession) Stats() offload.Stats { return s.sess.Stats() }

// Deployment returns the deployment this session serves.
func (s *OffloadSession) Deployment() *Deployment { return s.dep }

// Infer runs one metered, monitored query through the split runtime. The
// pipeline is Deployment.Infer's, step for step — metering gate first (an
// exhausted voucher denies before any compute), portable preprocessing,
// drift observation, then the split forward pass instead of the local
// one, then postprocessing and telemetry accounting. The label and logits
// are bit-identical to what Deployment.Infer would produce, whichever
// mode the query executed in.
func (s *OffloadSession) Infer(x []float32) (OffloadOutcome, error) {
	d := s.dep
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.Version.ID != s.versionID {
		return OffloadOutcome{}, fmt.Errorf("%w: %s is now on %s, session bound to %s",
			ErrOffloadStale, d.DeviceID, d.Version.ID, s.versionID)
	}
	// Metering gate (§III-C: offloading never escapes pay-per-query),
	// preprocessing, drift observation — the deployment's shared front
	// half.
	features, err := d.admitLocked(x)
	if err != nil {
		return OffloadOutcome{}, err
	}

	// Split execution under the live plan (replacing the local-only
	// forward). Device compute, radio and cloud service charge inside.
	res, err := s.sess.Exec(features)
	if err != nil {
		d.winFailed++
		return OffloadOutcome{}, fmt.Errorf("core: offload: %w", err)
	}

	// Postprocessing on the returned logits, then telemetry accounting —
	// energy is what the device actually spent (prefix + radio, or the
	// full pass when the plan stayed local).
	label, err := d.postLabelLocked(append([]float32(nil), res.Logits...), res.Label)
	if err != nil {
		return OffloadOutcome{}, err
	}
	d.recordServedLocked(features, res.Latency, res.DeviceEnergyJ*1e3)

	drift := d.Monitor != nil && d.Monitor.Drifted()
	return OffloadOutcome{
		InferenceResult: InferenceResult{Label: label, Latency: res.Latency, DriftAlarm: drift},
		Split:           res,
	}, nil
}
