package core

import (
	"errors"
	"testing"

	"tinymlops/internal/registry"
	"tinymlops/internal/rollout"
	"tinymlops/internal/swarm"
)

// swarmFor builds a small-chunk swarm over the fixture's platform.
func (f *rolloutFixture) swarmFor(t *testing.T, seed uint64) *swarm.Swarm {
	t.Helper()
	sw, err := f.p.NewSwarm(SwarmOptions{ChunkBytes: 64, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

// TestSwarmRolloutMatchesRegistryDirect is the equivalence property at
// platform scope: a swarm rollout must leave every device running the
// exact artifact a registry-direct rollout installs — same versions, bit-
// identical bytes (the deep-audit check runs in internal/faults; here the
// registry digest pins it) — while moving most bytes off the registry.
func TestSwarmRolloutMatchesRegistryDirect(t *testing.T) {
	direct := newRolloutFixture(t, 4)
	if _, err := direct.p.Rollout(direct.v2, RolloutConfig{Seed: 33, Calibration: direct.ds}); err != nil {
		t.Fatal(err)
	}

	viaSwarm := newRolloutFixture(t, 4)
	sw := viaSwarm.swarmFor(t, 77)
	res, err := viaSwarm.p.Rollout(viaSwarm.v2, RolloutConfig{Seed: 33, Calibration: viaSwarm.ds, Swarm: sw})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("swarm rollout did not complete")
	}

	dd, sd := direct.p.Deployments(), viaSwarm.p.Deployments()
	if len(dd) != len(sd) {
		t.Fatalf("deployment counts diverge: %d vs %d", len(dd), len(sd))
	}
	for i := range dd {
		if dd[i].DeviceID != sd[i].DeviceID || dd[i].Version.ID != sd[i].Version.ID {
			t.Fatalf("device %s converged to %s direct vs %s swarm",
				dd[i].DeviceID, dd[i].Version.ID, sd[i].Version.ID)
		}
		if dd[i].Version.Digest != sd[i].Version.Digest {
			t.Fatalf("device %s artifact digests diverge", dd[i].DeviceID)
		}
	}

	st := sw.Stats()
	if st.RegistryEgressBytes+st.PeerBytes != st.DeliveredBytes || st.ConservationViolations != 0 {
		t.Fatalf("byte conservation broken: %+v", st)
	}
	if st.PeerBytes == 0 {
		t.Fatal("no bytes moved peer-to-peer; later waves should fetch from the canary")
	}
	if res.TotalPeerBytes != st.PeerBytes || res.TotalRegistryBytes != st.RegistryEgressBytes {
		t.Fatalf("rollout accounting (%d/%d) diverges from the swarm ledger (%d/%d)",
			res.TotalPeerBytes, res.TotalRegistryBytes, st.PeerBytes, st.RegistryEgressBytes)
	}
	if sw.InFlight() != 0 {
		t.Fatalf("%d transfers still in flight after a completed rollout", sw.InFlight())
	}
}

// TestSwarmRegistryServesOnlyCanary pins the headline economics: with
// every transfer the same size, a wave that has seeders pays the registry
// nothing — only the canary wave (and chunks no peer can serve) hits it.
func TestSwarmRegistryServesOnlyCanary(t *testing.T) {
	f := newRolloutFixture(t, 2)
	sw := f.swarmFor(t, 5)
	res, err := f.p.Rollout(f.v2, RolloutConfig{
		Seed:        9,
		Calibration: f.ds,
		ForceFull:   true, // one artifact key, so every wave can peer-source
		Swarm:       sw,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Waves) < 2 {
		t.Fatalf("want ≥2 waves, got %d", len(res.Waves))
	}
	sumWave := func(w rollout.WaveResult) (reg, peer int64) {
		for _, o := range w.Outcomes {
			reg += o.Transfer.RegistryBytes
			peer += o.Transfer.PeerBytes
		}
		return reg, peer
	}
	reg0, peer0 := sumWave(res.Waves[0])
	if reg0 == 0 || peer0 != 0 {
		t.Fatalf("canary wave split reg=%d peer=%d, want all registry", reg0, peer0)
	}
	for i, w := range res.Waves[1:] {
		reg, peer := sumWave(w)
		if len(w.Outcomes) > 0 && peer == 0 {
			t.Fatalf("wave %d moved no peer bytes (reg=%d)", i+1, reg)
		}
		if reg != 0 {
			t.Fatalf("wave %d paid %d registry bytes with online seeders available", i+1, reg)
		}
	}
}

// TestSwarmDeltaBaseEvictedFallsBackToFull is the regression test for the
// silent-fallback fix: when the registry evicts the running version's
// artifact mid-rollout, a delta-eligible swarm update must (a) surface the
// typed ErrDeltaBaseMissing on the report rather than failing or silently
// degrading, and (b) complete by fetching the full artifact over the
// swarm — the wave converges instead of wedging.
func TestSwarmDeltaBaseEvictedFallsBackToFull(t *testing.T) {
	f := newRolloutFixture(t, 2)
	sw := f.swarmFor(t, 13)
	if err := f.p.Registry.Evict(f.v1.ID); err != nil {
		t.Fatal(err)
	}
	deps := f.p.Deployments()
	rep, err := deps[0].Update(f.v2, UpdateOptions{Calibration: f.ds, Swarm: sw})
	if err != nil {
		t.Fatalf("update wedged on an evicted delta base: %v", err)
	}
	if rep.UsedDelta {
		t.Fatal("delta shipped from an evicted base")
	}
	if !errors.Is(rep.DeltaFallback, ErrDeltaBaseMissing) {
		t.Fatalf("DeltaFallback = %v, want ErrDeltaBaseMissing", rep.DeltaFallback)
	}
	if !errors.Is(rep.DeltaFallback, registry.ErrArtifactMissing) {
		t.Fatalf("DeltaFallback = %v should preserve the registry cause", rep.DeltaFallback)
	}
	if rep.To.ID != f.v2.ID || rep.ShipBytes == 0 {
		t.Fatalf("fallback shipped %d bytes to %s", rep.ShipBytes, rep.To.ID)
	}
	// Same classification on the registry-direct path.
	rep2, err := deps[1].Update(f.v2, UpdateOptions{Calibration: f.ds})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.UsedDelta || !errors.Is(rep2.DeltaFallback, ErrDeltaBaseMissing) {
		t.Fatalf("direct path: UsedDelta=%v DeltaFallback=%v", rep2.UsedDelta, rep2.DeltaFallback)
	}
}

// TestSwarmUpdateUsesDeltaKey pins that same-topology swarm updates ship
// the delta artifact (its own swarm key), not the full image, and report
// the saving.
func TestSwarmUpdateUsesDeltaKey(t *testing.T) {
	f := newRolloutFixture(t, 2)
	sw := f.swarmFor(t, 21)
	deps := f.p.Deployments()
	rep, err := deps[0].Update(f.v2, UpdateOptions{Calibration: f.ds, Swarm: sw})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.UsedDelta {
		t.Fatal("same-topology swarm update did not ship a delta")
	}
	if rep.DeltaFallback != nil {
		t.Fatalf("unexpected fallback: %v", rep.DeltaFallback)
	}
	if rep.ShipBytes >= rep.FullBytes {
		t.Fatalf("delta shipped %d of full %d: no saving", rep.ShipBytes, rep.FullBytes)
	}
	key := "delta:" + f.v1.ID + ">" + f.v2.ID
	if m, err := sw.Manifest(key); err != nil || m.TotalBytes != rep.ShipBytes {
		t.Fatalf("delta manifest %v (err %v), want %d bytes under %q", m, err, rep.ShipBytes, key)
	}
	// The updated device becomes a pending seeder for both keys.
	sw.AdvanceWave()
	if s := sw.Seeders(key); len(s) != 1 || s[0] != rep.DeviceID {
		t.Fatalf("delta seeders = %v, want [%s]", s, rep.DeviceID)
	}
	if s := sw.Seeders("full:" + f.v2.ID); len(s) != 1 || s[0] != rep.DeviceID {
		t.Fatalf("full seeders = %v, want [%s]", s, rep.DeviceID)
	}
}

// TestSwarmRollbackWithdrawsPendingSeeder pins that a rolled-back wave's
// devices do not seed bytes they no longer hold.
func TestSwarmRollbackWithdrawsPendingSeeder(t *testing.T) {
	f := newRolloutFixture(t, 2)
	sw := f.swarmFor(t, 29)
	tgt := &rolloutTarget{p: f.p, target: f.v2, cfg: RolloutConfig{Calibration: f.ds, Swarm: sw}}
	id := f.p.Deployments()[0].DeviceID
	if _, err := tgt.Update(id); err != nil {
		t.Fatal(err)
	}
	if err := tgt.Rollback(id); err != nil {
		t.Fatal(err)
	}
	sw.AdvanceWave()
	if s := sw.Seeders("full:" + f.v2.ID); len(s) != 0 {
		t.Fatalf("rolled-back device still seeds: %v", s)
	}
}
