package core

import (
	"fmt"
	"sort"
	"sync"

	"tinymlops/internal/dataset"
	"tinymlops/internal/device"
	"tinymlops/internal/enclave"
	"tinymlops/internal/engine"
	"tinymlops/internal/fed"
	"tinymlops/internal/metering"
	"tinymlops/internal/nn"
	"tinymlops/internal/observe"
	"tinymlops/internal/procvm"
	"tinymlops/internal/quant"
	"tinymlops/internal/registry"
	"tinymlops/internal/selector"
	"tinymlops/internal/tensor"
	"tinymlops/internal/verify"
)

// Config provisions a Platform.
type Config struct {
	// VendorKey signs vouchers and wraps model encryption keys.
	VendorKey []byte
	// Seed drives all platform-side randomness.
	Seed uint64
	// MinCohort is the telemetry k-anonymity floor.
	MinCohort int
	// Workers bounds the platform's parallel fleet operations (deployment
	// fan-out, telemetry sync, settlement); values ≤ 0 mean GOMAXPROCS.
	Workers int
	// VerifiedBilling arms pay-per-query proof settlement: deployments
	// attach sum-check proofs for a deterministic sample of their charges
	// and the settler rejects any report whose sample is missing or fails
	// verification (billing.go).
	VerifiedBilling bool
	// AttestationRate is the billing sample density — roughly 1 in N
	// charges carries a proof; 0 means the default of 4, 1 proves every
	// charge. Only meaningful with VerifiedBilling.
	AttestationRate int
}

// Platform is the TinyMLOps control plane plus the simulated data plane.
type Platform struct {
	Registry   *registry.Registry
	Fleet      *device.Fleet
	Issuer     *metering.Issuer
	Settler    *metering.Settler
	Aggregator *observe.Aggregator

	vendorKey []byte
	rng       *tensor.RNG
	eng       *engine.Engine
	// arenas holds the per-worker serving scratch: deployments borrow an
	// arena per inference call, so scratch memory scales with concurrency
	// rather than with fleet size and the hot loop stays allocation-free.
	arenas *engine.ArenaPool
	// verifier and attRate drive verified billing (billing.go); verifier
	// is nil when the feature is off.
	verifier *verify.BatchVerifier
	attRate  int

	// encMu serializes protected-offload provisioning (sealing advances an
	// enclave-internal monotonic counter); encSess is the lazily provisioned
	// shared cloud enclave session used when OffloadConfig.Enclave is nil.
	encMu   sync.Mutex
	encSess *enclave.Session

	mu          sync.Mutex
	deployments map[string]*Deployment
}

// Engine returns the worker pool behind the platform's fleet-wide
// operations, so callers can reuse it for their own fan-out.
func (p *Platform) Engine() *engine.Engine { return p.eng }

// New creates a platform over a device fleet.
func New(fleet *device.Fleet, cfg Config) (*Platform, error) {
	if len(cfg.VendorKey) < 16 {
		return nil, fmt.Errorf("core: vendor key must be at least 16 bytes")
	}
	issuer, err := metering.NewIssuer(cfg.VendorKey)
	if err != nil {
		return nil, err
	}
	minCohort := cfg.MinCohort
	if minCohort < 1 {
		minCohort = 1
	}
	p := &Platform{
		Registry:    registry.New(),
		Fleet:       fleet,
		Issuer:      issuer,
		Settler:     metering.NewSettler(issuer),
		Aggregator:  observe.NewAggregator(minCohort),
		vendorKey:   append([]byte(nil), cfg.VendorKey...),
		rng:         tensor.NewRNG(cfg.Seed),
		eng:         engine.New(engine.Config{Workers: cfg.Workers}),
		arenas:      engine.NewArenaPool(),
		deployments: make(map[string]*Deployment),
	}
	if cfg.VerifiedBilling {
		p.attRate = cfg.AttestationRate
		if p.attRate == 0 {
			p.attRate = 4
		}
		p.verifier = verify.NewBatchVerifier(p.eng)
		p.Settler.SetAttestation(p.attRate, p.verifyAttestations)
	}
	return p, nil
}

// Publish registers a trained model and derives its optimized variants,
// evaluating each candidate on eval. It returns all registered versions
// (base first).
func (p *Platform) Publish(name string, net *nn.Network, eval *dataset.Dataset, spec registry.OptimizationSpec) ([]*registry.ModelVersion, error) {
	if spec.Evaluate == nil {
		spec.Evaluate = func(n *nn.Network) float64 { return nn.Evaluate(n, eval.X, eval.Y) }
	}
	base := spec.Evaluate(net)
	return p.Registry.RegisterWithVariants(name, net, base, spec)
}

// DeployConfig controls one device deployment.
type DeployConfig struct {
	// Policy drives variant selection (zero value = DefaultPolicy).
	Policy selector.Policy
	// PrepaidQueries sets the voucher quota.
	PrepaidQueries uint64
	// Calibration provides the drift-detector reference sample; nil
	// disables monitoring.
	Calibration *dataset.Dataset
	// Watermark, when non-empty, is the customer identity whose static
	// watermark is embedded into the deployed copy (§V: per-user marks).
	Watermark string
	// Pre and Post are optional procvm pipeline modules.
	Pre, Post *procvm.Module
}

// Deploy selects the best variant of the named model line for the device,
// encrypts and "ships" it (charging the download to the device's radio),
// provisions a prepaid meter and a drift monitor, and returns the live
// deployment handle.
func (p *Platform) Deploy(deviceID, modelName string, cfg DeployConfig) (*Deployment, error) {
	dev, ok := p.Fleet.Get(deviceID)
	if !ok {
		return nil, fmt.Errorf("core: unknown device %q", deviceID)
	}
	candidates := p.candidates(modelName)
	if len(candidates) == 0 {
		return nil, fmt.Errorf("core: model line %q is empty", modelName)
	}
	decision, err := selector.Select(dev, candidates, cfg.Policy)
	if err != nil {
		return nil, fmt.Errorf("core: select for %s: %w", deviceID, err)
	}
	version := decision.Chosen.Version

	// Encrypt the artifact, transfer and flash it, decrypt on device.
	// Compiled (procvm) versions ship the canonical module encoding; the
	// obfuscated bytecode is the protection, so watermarks never apply.
	var model *nn.Network
	var compiled *procvm.Module
	if version.Kind == registry.KindProcVM {
		if cfg.Watermark != "" {
			return nil, fmt.Errorf("core: compiled module versions cannot carry a watermark")
		}
		compiled, _, err = p.shipCompiled(dev, version)
		if err != nil {
			return nil, err
		}
	} else {
		model, _, err = p.shipFull(dev, version)
		if err != nil {
			return nil, err
		}
		if cfg.Watermark != "" {
			// The mark identifies the customer (capacity scales to the carrier
			// layer so tiny models still embed reliably); the registry tag is
			// keyed per device so every customer's mark stays on record and
			// parallel deploys stay deterministic (a single shared key would be
			// last-writer-wins in scheduling order).
			if err := p.embedWatermark(model, version.ID, deviceID, cfg.Watermark); err != nil {
				return nil, err
			}
		}
	}

	quota := cfg.PrepaidQueries
	if quota == 0 {
		quota = 1000
	}
	voucher, err := p.Issuer.Issue(deviceID, version.ID, quota)
	if err != nil {
		return nil, err
	}

	run := newRunnable(dev, version, model)
	if compiled != nil {
		run = newVMRunnable(compiled, procvm.CapSensor)
	}
	d := &Deployment{
		DeviceID:  deviceID,
		Version:   version,
		platform:  p,
		device:    dev,
		model:     model,
		compiled:  compiled,
		run:       run,
		policy:    cfg.Policy,
		watermark: cfg.Watermark,
		Meter:     metering.NewMeter(voucher),
		Buffer:    observe.NewBuffer(256),
		pre:       cfg.Pre,
		post:      cfg.Post,
		runtime:   procvm.NewRuntime(procvm.CapSensor),
	}
	if cfg.Calibration != nil {
		mon, err := buildMonitor(cfg.Calibration)
		if err != nil {
			return nil, err
		}
		d.Monitor = mon
	}
	if p.verifier != nil {
		// d is not yet published, so no lock is needed for the "Locked"
		// snapshot; the attestor proves against the registry artifact, not
		// the (possibly watermarked) deployed copy.
		if err := d.refreshAttestorLocked(); err != nil {
			return nil, err
		}
		d.Meter.SetAttestor(p.attRate, d.attest)
	}
	p.mu.Lock()
	p.deployments[deviceID] = d
	p.mu.Unlock()
	return d, nil
}

// candidates returns every version of a model line (bases and variants).
func (p *Platform) candidates(name string) []*registry.ModelVersion {
	return p.Registry.Versions(name)
}

// Deployment returns the live deployment on a device, if any.
func (p *Platform) Deployment(deviceID string) (*Deployment, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	d, ok := p.deployments[deviceID]
	return d, ok
}

// Deployments returns all live deployments, sorted by device ID so
// fleet-wide fan-outs are deterministic.
func (p *Platform) Deployments() []*Deployment {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Deployment, 0, len(p.deployments))
	for _, d := range p.deployments {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DeviceID < out[j].DeviceID })
	return out
}

// DeployMany deploys the named model line to every listed device across
// the platform's worker pool, returning the deployments in input order.
// Per-device failures are joined into the returned error; successful
// deployments keep their slots, failed ones are nil.
func (p *Platform) DeployMany(deviceIDs []string, modelName string, cfg DeployConfig) ([]*Deployment, error) {
	return engine.Map(p.eng, len(deviceIDs), func(i int) (*Deployment, error) {
		return p.Deploy(deviceIDs[i], modelName, cfg)
	})
}

// buildMonitor calibrates per-feature CUSUM detectors from a reference
// dataset (cheapest detector; the observability experiment compares the
// alternatives).
func buildMonitor(ref *dataset.Dataset) (*observe.Monitor, error) {
	n := ref.Len()
	rows := make([][]float32, n)
	es := ref.X.Size() / n
	for i := 0; i < n; i++ {
		rows[i] = ref.X.Data[i*es : (i+1)*es]
	}
	cols := observe.ColumnsOf(rows)
	// The monitor alarms when ANY feature's detector fires, which divides
	// the per-feature in-control run length by the feature count; scale
	// the CUSUM threshold with log(features) to compensate.
	h := 10 + 4*float64(log2Ceil(len(cols)))
	return observe.NewMonitor(cols, func(col []float64) (observe.Detector, error) {
		var w observe.Welford
		for _, v := range col {
			w.Add(v)
		}
		std := w.Std()
		if std <= 0 {
			std = 1
		}
		return observe.NewCUSUMDetector(w.Mean(), std, 0.5, h)
	})
}

func log2Ceil(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

// WatermarkCapacity reports the per-customer mark size the platform embeds
// into a deployed copy of this model — the convention auditors need to
// re-extract and verify a device's mark.
func WatermarkCapacity(model *nn.Network) int { return watermarkCapacity(model) }

// watermarkCapacity picks a per-customer mark size the first dense layer
// can carry comfortably (≤ a quarter of its weights, at most 32 bits).
func watermarkCapacity(model *nn.Network) int {
	for _, l := range model.Layers() {
		if d, ok := l.(*nn.Dense); ok {
			c := d.W.Value.Size() / 4
			if c > 32 {
				c = 32
			}
			if c < 4 {
				c = 4
			}
			return c
		}
	}
	return 16
}

// SyncTelemetry flushes every deployment's buffered records for devices
// currently on WiFi into the aggregator (cohort = device class). The
// per-deployment window rolls and radio transfers fan out over the worker
// pool; ingestion stays serial in device-ID order so cohort aggregates are
// reproducible. It returns the number of records ingested and bytes
// uplinked.
func (p *Platform) SyncTelemetry() (records, bytes int, err error) {
	deps := p.Deployments()
	type flushed struct {
		recs  []observe.Record
		bytes int
		class string
	}
	flushes, err := engine.Map(p.eng, len(deps), func(i int) (flushed, error) {
		d := deps[i]
		d.rollWindow()
		recs, n, ferr := d.Buffer.FlushIfWiFi(d.device)
		if ferr != nil {
			return flushed{}, ferr
		}
		return flushed{recs: recs, bytes: n, class: d.device.Caps.Class.String()}, nil
	})
	for _, f := range flushes {
		for _, r := range f.recs {
			p.Aggregator.Ingest(f.class, r)
		}
		records += len(f.recs)
		bytes += f.bytes
	}
	return records, bytes, err
}

// SettleAll settles every deployment's meter against a settlement server
// address concurrently, returning per-device errors keyed by device ID.
func (p *Platform) SettleAll(addr string) map[string]error {
	deps := p.Deployments()
	errs := make([]error, len(deps))
	_ = p.eng.ForEach(len(deps), func(i int) error {
		errs[i] = metering.MustSettle(addr, deps[i].Meter)
		return nil
	})
	out := make(map[string]error, len(deps))
	for i, d := range deps {
		out[d.DeviceID] = errs[i]
	}
	return out
}

// FederatedUpdate runs federated training of the named model line over
// client shards and publishes the improved global model into the registry
// as a rollout candidate (re-deriving all variants, tagged as a federated
// aggregate). It returns the new versions and per-round stats; chain with
// Rollout — or call FederatedRollout — to stage the fleet update.
func (p *Platform) FederatedUpdate(name string, clients []*fed.Client, test *dataset.Dataset, fcfg fed.Config, spec registry.OptimizationSpec) ([]*registry.ModelVersion, []fed.RoundStats, error) {
	latest, err := p.Registry.Latest(name)
	if err != nil {
		return nil, nil, err
	}
	global, err := p.Registry.Load(latest.ID)
	if err != nil {
		return nil, nil, err
	}
	if fcfg.Engine == nil {
		fcfg.Engine = p.eng
	}
	co, err := fed.NewCoordinator(global, clients, test.X, test.Y, fcfg)
	if err != nil {
		return nil, nil, err
	}
	stats, err := co.Run()
	if err != nil {
		return nil, nil, err
	}
	versions, err := co.PublishGlobal(p.Registry, name, spec)
	if err != nil {
		return nil, nil, err
	}
	return versions, stats, nil
}

// HierFederatedUpdate is FederatedUpdate's two-tier form: the client fleet
// shards into edge-aggregator cohorts, each cohort's updates aggregate at
// the edge (exactly, in fixed point — with pairwise masking when
// hcfg.SecureAgg is set) and the cloud sums only one compact partial per
// aggregator before publishing the improved global as a rollout candidate.
func (p *Platform) HierFederatedUpdate(name string, clients []*fed.Client, test *dataset.Dataset, hcfg fed.HierConfig, spec registry.OptimizationSpec) ([]*registry.ModelVersion, []fed.RoundStats, error) {
	latest, err := p.Registry.Latest(name)
	if err != nil {
		return nil, nil, err
	}
	global, err := p.Registry.Load(latest.ID)
	if err != nil {
		return nil, nil, err
	}
	if hcfg.Engine == nil {
		hcfg.Engine = p.eng
	}
	hc, err := fed.NewHierCoordinator(global, clients, test.X, test.Y, hcfg)
	if err != nil {
		return nil, nil, err
	}
	stats, err := hc.Run()
	if err != nil {
		return nil, nil, err
	}
	versions, err := hc.PublishGlobal(p.Registry, name, spec)
	if err != nil {
		return nil, nil, err
	}
	return versions, stats, nil
}

// DefaultOptimizationSpec derives the standard int8/int4/ternary/binary
// variant matrix evaluated on eval.
func DefaultOptimizationSpec(eval *dataset.Dataset) registry.OptimizationSpec {
	return registry.OptimizationSpec{
		Schemes:        []quant.Scheme{quant.Int8, quant.Int4, quant.Ternary, quant.Binary},
		PruneFractions: []float64{0},
		Evaluate: func(n *nn.Network) float64 {
			return nn.Evaluate(n, eval.X, eval.Y)
		},
	}
}
