package core

import (
	"fmt"

	"tinymlops/internal/metering"
	"tinymlops/internal/nn"
	"tinymlops/internal/quant"
	"tinymlops/internal/registry"
	"tinymlops/internal/tensor"
	"tinymlops/internal/verify"
)

// Verified pay-per-query billing (§III-C + §VI). With
// Config.VerifiedBilling on, every deployment retains lightweight
// evidence (the quantized input row and the serving model version) for
// each charged query; at settlement the meter's attestor proves the
// deterministic sample of those charges against the deployment's first
// dense layer with a sum-check bound to (voucher, model version,
// sequence, chain entry). The platform arms the settler with a
// BatchVerifier-backed checker that re-derives the proved layer from the
// registry artifact — never the (possibly watermarked) deployed copy —
// so proofs amortize per (model-version, shape) class across the window
// and a report with any missing or failing proof is rejected whole.

// retainedCharge is the per-charge evidence the attestor proves later:
// which model version served it, and the claimed quantized input row. A
// zero-length input means "charged but not served" (preprocess failure,
// battery death) — the attestor proves a zero row, which is honest: the
// query was charged, and the vendor never sees real inputs anyway.
type retainedCharge struct {
	modelID string
	input   []int8
}

// provedLayer extracts the settlement-proved layer of a network: the
// first dense layer's deterministically quantized weights and shape.
func provedLayer(net *nn.Network) ([]int32, int, int, error) {
	for _, l := range net.Layers() {
		if dl, ok := l.(*nn.Dense); ok {
			wq, _ := verify.QuantizeWeights(dl.W.Value)
			return wq, dl.In, dl.Out, nil
		}
	}
	return nil, 0, 0, fmt.Errorf("core: model has no dense layer to prove")
}

// refreshAttestorLocked re-derives the attestor's weight snapshot for
// the live version from the registry artifact. Called at deploy and
// after every update or rollback; caller holds d.mu (or owns d
// exclusively).
func (d *Deployment) refreshAttestorLocked() error {
	// Compiled module versions prove against the float artifact they were
	// lowered from: the bytecode executes the same dense layer, and every
	// retained modelID then names a loadable network — so the settler's
	// class cache and retired-version re-derivation never see a procvm ID.
	proveID := d.Version.ID
	if d.Version.Kind == registry.KindProcVM {
		proveID = d.Version.ParentID
	}
	art, err := d.platform.Registry.Load(proveID)
	if err != nil {
		return fmt.Errorf("core: load attestor artifact for %s: %w", proveID, err)
	}
	wq, k, n, err := provedLayer(art)
	if err != nil {
		return err
	}
	d.attWq, d.attK, d.attN, d.attModelID = wq, k, n, proveID
	if d.retained == nil {
		d.retained = make(map[uint64]retainedCharge)
	}
	return nil
}

// retainLocked stores the evidence for one charged query. Caller holds
// d.mu. Settled sequences are swept opportunistically so the map stays
// bounded by the unsettled window.
func (d *Deployment) retainLocked(seq uint64, features []float32) {
	if d.retained == nil {
		return
	}
	if len(d.retained) >= 1024 {
		settled := d.Meter.SettledSeq()
		for s := range d.retained {
			if s <= settled {
				delete(d.retained, s)
			}
		}
	}
	rc := retainedCharge{modelID: d.attModelID}
	if len(features) == d.attK && d.attK > 0 {
		x := tensor.FromSlice(append([]float32(nil), features...), 1, len(features))
		codes, _ := quant.QuantizeActivations(x)
		rc.input = codes
	}
	d.retained[seq] = rc
}

// attest is the metering.Attestor for this deployment: it proves one
// sampled charge. Runs without d.mu held (the meter calls it from
// BuildAttestedReport).
func (d *Deployment) attest(seq uint64, entryHash [32]byte) (metering.Attestation, error) {
	d.mu.Lock()
	rc, ok := d.retained[seq]
	if !ok {
		rc = retainedCharge{modelID: d.attModelID}
	}
	wq, k, n := d.attWq, d.attK, d.attN
	curModel := d.attModelID
	voucherID := d.Meter.Voucher().ID
	d.mu.Unlock()

	if rc.modelID == "" {
		rc.modelID = curModel
	}
	if rc.modelID != curModel {
		// The charge was served by a version this deployment has since
		// moved off (update or rollback mid-window): prove it against that
		// version's artifact, which the registry still holds.
		art, err := d.platform.Registry.Load(rc.modelID)
		if err != nil {
			return metering.Attestation{}, fmt.Errorf("core: attest against retired version %s: %w", rc.modelID, err)
		}
		wq, k, n, err = provedLayer(art)
		if err != nil {
			return metering.Attestation{}, err
		}
	}
	input := rc.input
	if len(input) != k {
		input = make([]int8, k)
	}
	a := make([]int32, k)
	for i, c := range input {
		a[i] = int32(c)
	}
	ctx := metering.AttestationContext(voucherID, rc.modelID, seq, entryHash)
	claimed, proof, _, err := verify.ProveMatMulCtx(ctx, a, 1, k, wq, n)
	if err != nil {
		return metering.Attestation{}, fmt.Errorf("core: prove charge %d: %w", seq, err)
	}
	blob, err := proof.MarshalBinary()
	if err != nil {
		return metering.Attestation{}, err
	}
	return metering.Attestation{ModelID: rc.modelID, Input: input, Claimed: claimed, Proof: blob}, nil
}

// ensureClass lazily prepares the verifier's weight class for a model
// version, re-deriving the proved layer from the registry artifact.
// Idempotent and safe concurrently (identical weights prepare equal).
func (p *Platform) ensureClass(modelID string) error {
	if p.verifier.Prepared(modelID) {
		return nil
	}
	if _, err := p.Registry.Get(modelID); err != nil {
		return fmt.Errorf("core: attestation names unknown model: %w", err)
	}
	art, err := p.Registry.Load(modelID)
	if err != nil {
		return err
	}
	wq, k, n, err := provedLayer(art)
	if err != nil {
		return err
	}
	return p.verifier.Prepare(modelID, wq, k, n)
}

// verifyAttestations is the metering.AttestationVerifier the platform
// installs on its settler: one batch-amortized sum-check pass over a
// report's proof sample.
func (p *Platform) verifyAttestations(v metering.Voucher, items []metering.AttestationCheck) []error {
	errs := make([]error, len(items))
	batch := make([]verify.BatchItem, len(items))
	for i, it := range items {
		if err := p.ensureClass(it.Att.ModelID); err != nil {
			errs[i] = err
			continue
		}
		var proof verify.Proof
		if err := proof.UnmarshalBinary(it.Att.Proof); err != nil {
			errs[i] = fmt.Errorf("%w: %v", metering.ErrProofInvalid, err)
			continue
		}
		a := make([]int32, len(it.Att.Input))
		for j, c := range it.Att.Input {
			a[j] = int32(c)
		}
		batch[i] = verify.BatchItem{
			ClassID: it.Att.ModelID,
			Ctx:     metering.AttestationContext(v.ID, it.Att.ModelID, it.Att.Seq, it.EntryHash),
			A:       a,
			M:       1,
			C:       it.Att.Claimed,
			Proof:   &proof,
		}
	}
	results, _, err := p.verifier.VerifyBatch(batch)
	if err != nil {
		for i := range errs {
			if errs[i] == nil {
				errs[i] = err
			}
		}
		return errs
	}
	for i, r := range results {
		if errs[i] != nil {
			continue
		}
		if r.Err != nil {
			errs[i] = fmt.Errorf("%w: %v", metering.ErrProofInvalid, r.Err)
		} else if !r.OK {
			errs[i] = fmt.Errorf("%w: sum-check rejected charge %d", metering.ErrProofInvalid, items[i].Att.Seq)
		}
	}
	return errs
}

// BatchVerifier exposes the settlement proof verifier (nil unless
// VerifiedBilling is on) for audit tooling.
func (p *Platform) BatchVerifier() *verify.BatchVerifier { return p.verifier }

// AttestationRate returns the billing sample rate (0 when verified
// billing is off).
func (p *Platform) AttestationRate() int { return p.attRate }
