package core

import (
	"errors"
	"fmt"
	"time"

	"tinymlops/internal/dataset"
	"tinymlops/internal/device"
	"tinymlops/internal/ipprot"
	"tinymlops/internal/nn"
	"tinymlops/internal/procvm"
	"tinymlops/internal/registry"
	"tinymlops/internal/rollout"
	"tinymlops/internal/selector"
	"tinymlops/internal/swarm"
)

// ErrDeltaBaseMissing reports that a delta transfer could not even be
// attempted because the registry no longer holds the artifact of the
// version the device is running — the base was evicted mid-rollout. The
// update surfaces it on the report's DeltaFallback and ships the full
// artifact instead (over the swarm when one is configured), so a wave
// with a pruned base degrades to full transfers rather than wedging.
var ErrDeltaBaseMissing = errors.New("core: delta base artifact missing")

// UpdateOptions controls one deployment update.
type UpdateOptions struct {
	// Calibration recalibrates the drift monitor for the new version; nil
	// keeps the existing monitor and resets its detection state.
	Calibration *dataset.Dataset
	// ForceFull disables delta transfer (used to measure the saving).
	ForceFull bool
	// Swarm, when non-nil, sources the transfer's bytes peer-to-peer: the
	// chosen artifact (or its delta) ships as hash-verified chunks from the
	// wave's seeders, with the registry as seeder of last resort, and the
	// device registers as a pending seeder on success. See internal/swarm.
	Swarm *swarm.Swarm
}

// UpdateReport accounts one update (or rollback): what moved, how it was
// shipped, and what a full transfer would have cost.
type UpdateReport struct {
	DeviceID string
	From, To *registry.ModelVersion
	// UsedDelta reports whether a sparse weight delta was shipped.
	UsedDelta bool
	// ShipBytes went over the radio; FlashBytes were rewritten on device.
	ShipBytes, FlashBytes int64
	// FullBytes is what a full-artifact transfer ships (To's packed size),
	// the denominator of the delta saving.
	FullBytes int64
	// TransferTime is the modeled download+flash duration.
	TransferTime time.Duration
	// ChangedParams/TotalParams summarize delta sparsity (0 for full).
	ChangedParams, TotalParams int
	// PeerBytes/RegistryBytes split a swarm transfer's radio bytes by
	// serving side (both zero on registry-direct transfers).
	PeerBytes, RegistryBytes int64
	// DeltaFallback, when non-nil, explains why a delta-eligible update
	// shipped the full artifact instead of failing: it wraps
	// ErrDeltaBaseMissing when the registry evicted the base image
	// mid-rollout. The update itself succeeded.
	DeltaFallback error
}

// Health returns the deployment's live-window telemetry summary: queries
// served and denied since the last window roll, mean modeled latency, and
// the drift monitor state. The update path rolls the window at every
// version boundary, so after an update this reads the new version's
// behavior only — exactly what a rollout gate needs.
func (d *Deployment) Health() rollout.Health {
	d.mu.Lock()
	defer d.mu.Unlock()
	h := rollout.Health{
		Inferences:    uint64(d.winCount),
		Errors:        uint64(d.winDenied) + uint64(d.winFailed),
		MeanLatencyUS: d.winLatency.Mean(),
	}
	if d.Monitor != nil {
		h.DriftAlarm = d.Monitor.Drifted()
		h.DriftScore = d.Monitor.MaxScore()
	}
	return h
}

// Update moves the deployment to the target version's family: it re-runs
// variant selection over the target and its derived variants for this
// device's current context, ships the chosen artifact — as a sparse weight
// delta when the topology matches the running model, the full encrypted
// image otherwise — and hot-swaps the model. The prepaid meter and the
// telemetry buffer survive the swap (the voucher prepays queries, not a
// version); the telemetry window rolls so post-update health is clean; the
// drift monitor is recalibrated from opts.Calibration or reset. The prior
// image is kept for Rollback.
func (d *Deployment) Update(target *registry.ModelVersion, opts UpdateOptions) (*UpdateReport, error) {
	if d.platform == nil {
		return nil, fmt.Errorf("core: deployment %s is not platform-managed", d.DeviceID)
	}
	if target == nil {
		return nil, fmt.Errorf("core: nil update target")
	}
	p := d.platform
	d.mu.Lock()
	defer d.mu.Unlock()

	// Re-run variant selection among the target's family: the paper's
	// point that every update re-decides per device (§III-A).
	candidates := append([]*registry.ModelVersion{target}, p.Registry.Variants(target.ID)...)
	decision, err := selector.Select(d.device, candidates, d.policy)
	if err != nil {
		return nil, fmt.Errorf("core: update select for %s: %w", d.DeviceID, err)
	}
	chosen := decision.Chosen.Version
	rep := &UpdateReport{
		DeviceID:  d.DeviceID,
		From:      d.Version,
		To:        chosen,
		FullBytes: int64(chosen.Metrics.SizeBytes),
	}
	if chosen.ID == d.Version.ID {
		// Content-addressed no-op: the device already runs these bytes, so
		// nothing ships and the rollback image is untouched — but the
		// window still rolls and the monitor still recalibrates/resets,
		// so a gate judging this device sees post-update traffic only,
		// never a stale alarm from before the rollout.
		d.rollWindowLocked()
		if opts.Calibration != nil {
			mon, merr := buildMonitor(opts.Calibration)
			if merr != nil {
				return nil, merr
			}
			d.Monitor = mon
		} else if d.Monitor != nil {
			d.Monitor.Reset()
		}
		// The device holds these exact bytes, so it can seed them.
		if opts.Swarm != nil && d.watermark == "" {
			opts.Swarm.AddSeeder("full:"+chosen.ID, d.DeviceID)
		}
		return rep, nil
	}

	// Compiled (procvm) targets take their own ship path: bytecode has no
	// weight topology to diff, so delta never applies, and watermarks never
	// apply (the obfuscation is the protection) — a watermarked cohort
	// cannot cross into the compiled kind without losing its mark.
	if chosen.Kind == registry.KindProcVM {
		if d.watermark != "" {
			return nil, fmt.Errorf("core: watermarked deployment %s cannot update to compiled module %s", d.DeviceID, chosen.ID)
		}
		var compiled *procvm.Module
		if opts.Swarm != nil {
			data, ts, serr := opts.Swarm.Transfer(d.device, "full:"+chosen.ID, 0)
			if serr != nil {
				return nil, fmt.Errorf("core: swarm ship to %s: %w", d.DeviceID, serr)
			}
			compiled, err = procvm.DecodeModule(data)
			if err != nil {
				return nil, err
			}
			rep.ShipBytes = ts.TotalBytes
			rep.FlashBytes = ts.TotalBytes
			rep.TransferTime = ts.Duration
			rep.PeerBytes = ts.FromPeers
			rep.RegistryBytes = ts.FromRegistry
		} else {
			var dur time.Duration
			compiled, dur, err = p.shipCompiled(d.device, chosen)
			if err != nil {
				return nil, err
			}
			rep.ShipBytes = int64(chosen.Metrics.SizeBytes)
			rep.FlashBytes = int64(chosen.Metrics.SizeBytes)
			rep.TransferTime = dur
		}
		if err := d.swapLocked(chosen, nil, compiled, opts.Calibration); err != nil {
			return nil, err
		}
		if opts.Swarm != nil {
			opts.Swarm.AddSeeder("full:"+chosen.ID, d.DeviceID)
		}
		return rep, nil
	}

	var model *nn.Network
	// Delta transfer requires the on-device weights to be bit-identical to
	// the registry's stored artifact; a per-customer watermark perturbs
	// them, so watermarked deployments always ship full images. A compiled
	// image holds no float weights at all, so a compiled→network update is
	// always a full ship too.
	if !opts.ForceFull && d.watermark == "" && d.model != nil {
		if opts.Swarm != nil {
			model, err = d.trySwarmDeltaLocked(opts.Swarm, chosen, rep)
		} else {
			model, err = d.tryDeltaLocked(chosen, rep)
		}
		if err != nil {
			return nil, err
		}
	}
	if model == nil {
		if opts.Swarm != nil {
			model, err = p.swarmShipFull(opts.Swarm, d.device, chosen, rep)
			if err != nil {
				return nil, err
			}
		} else {
			var dur time.Duration
			model, dur, err = p.shipFull(d.device, chosen)
			if err != nil {
				return nil, err
			}
			rep.ShipBytes = int64(chosen.Metrics.SizeBytes)
			rep.FlashBytes = int64(chosen.Metrics.SizeBytes)
			rep.TransferTime = dur
		}
		if d.watermark != "" {
			if err := p.embedWatermark(model, chosen.ID, d.DeviceID, d.watermark); err != nil {
				return nil, err
			}
		}
	}
	if err := d.swapLocked(chosen, model, nil, opts.Calibration); err != nil {
		return nil, err
	}
	// The swap succeeded: the device now holds the canonical artifact (and,
	// if it took a delta, the delta bytes it staged), so register it as a
	// pending seeder — visible to fetchers at the next wave promotion.
	// Watermarked copies are perturbed per customer and never seed.
	if opts.Swarm != nil && d.watermark == "" {
		if rep.UsedDelta {
			opts.Swarm.AddSeeder("delta:"+rep.From.ID+">"+chosen.ID, d.DeviceID)
		}
		opts.Swarm.AddSeeder("full:"+chosen.ID, d.DeviceID)
	}
	return rep, nil
}

// tryDeltaLocked attempts a delta transfer to the chosen version, filling
// rep and returning the patched model on success. A nil model (with nil
// error) means the caller must ship the full artifact: the versions do not
// share a topology, or the delta would not beat the packed image — a full
// retrain degrades to a dense delta whose index overhead can exceed what
// it patches. Caller holds d.mu.
func (d *Deployment) tryDeltaLocked(chosen *registry.ModelVersion, rep *UpdateReport) (*nn.Network, error) {
	p := d.platform
	delta, err := p.Registry.Delta(d.Version.ID, chosen.ID)
	if err != nil {
		// Different topology: expected, a full transfer is simply the plan.
		// A missing base artifact (evicted mid-rollout) is surfaced as a
		// typed fallback so callers can tell pruning from topology — the
		// wave degrades to full transfers instead of wedging.
		if errors.Is(err, registry.ErrArtifactMissing) {
			rep.DeltaFallback = fmt.Errorf("%w: %w", ErrDeltaBaseMissing, err)
		}
		return nil, nil
	}
	cost, err := nn.CostOfDelta(delta, chosen.Scheme.Bits())
	if err != nil {
		return nil, err
	}
	if cost.ShipBytes >= chosen.Metrics.SizeBytes {
		return nil, nil // dense delta, not worth shipping
	}
	em, err := ipprot.EncryptModel(p.vendorKey, chosen.ID, delta)
	if err != nil {
		return nil, err
	}
	// The token names the exact patch (source and target bytes): a crash
	// mid-flash leaves a recoverable staging slot, and a retried update
	// that selects the same transition resumes it instead of starting
	// over. A different transition discards the stale slot.
	token := "delta:" + d.Version.ID + ">" + chosen.ID
	dur, err := d.device.InstallResumable(token, int64(cost.ShipBytes), int64(cost.FlashBytes))
	if err != nil {
		return nil, fmt.Errorf("core: ship delta to %s: %w", d.DeviceID, err)
	}
	plain, err := ipprot.DecryptModel(p.vendorKey, em)
	if err != nil {
		return nil, err
	}
	model, err := nn.ApplyDelta(d.model, plain)
	if err != nil {
		return nil, fmt.Errorf("core: apply delta on %s: %w", d.DeviceID, err)
	}
	rep.UsedDelta = true
	rep.ShipBytes = int64(cost.ShipBytes)
	rep.FlashBytes = int64(cost.FlashBytes)
	rep.TransferTime = dur
	rep.ChangedParams, rep.TotalParams = cost.ChangedParams, cost.TotalParams
	return model, nil
}

// trySwarmDeltaLocked is tryDeltaLocked's peer-to-peer counterpart: the
// same delta-worthwhile decision, but the encoded delta ships as
// hash-verified chunks from the wave's seeders (devices that already took
// this exact transition hold its bytes) instead of an encrypted
// registry-direct stream. The swarm moves canonical plaintext bytes — the
// chunk hashes content-address the real artifact — so no envelope
// encryption applies here. Caller holds d.mu.
func (d *Deployment) trySwarmDeltaLocked(sw *swarm.Swarm, chosen *registry.ModelVersion, rep *UpdateReport) (*nn.Network, error) {
	p := d.platform
	delta, err := p.Registry.Delta(d.Version.ID, chosen.ID)
	if err != nil {
		if errors.Is(err, registry.ErrArtifactMissing) {
			rep.DeltaFallback = fmt.Errorf("%w: %w", ErrDeltaBaseMissing, err)
		}
		return nil, nil // full (swarm) transfer
	}
	cost, err := nn.CostOfDelta(delta, chosen.Scheme.Bits())
	if err != nil {
		return nil, err
	}
	if cost.ShipBytes >= chosen.Metrics.SizeBytes {
		return nil, nil // dense delta, not worth shipping
	}
	key := "delta:" + d.Version.ID + ">" + chosen.ID
	data, ts, err := sw.Transfer(d.device, key, int64(cost.FlashBytes))
	if err != nil {
		return nil, fmt.Errorf("core: swarm delta to %s: %w", d.DeviceID, err)
	}
	model, err := nn.ApplyDelta(d.model, data)
	if err != nil {
		return nil, fmt.Errorf("core: apply delta on %s: %w", d.DeviceID, err)
	}
	rep.UsedDelta = true
	rep.ShipBytes = ts.TotalBytes
	rep.FlashBytes = int64(cost.FlashBytes)
	rep.TransferTime = ts.Duration
	rep.PeerBytes = ts.FromPeers
	rep.RegistryBytes = ts.FromRegistry
	rep.ChangedParams, rep.TotalParams = cost.ChangedParams, cost.TotalParams
	return model, nil
}

// swarmShipFull ships a full artifact over the swarm: hash-verified chunks
// from the wave's seeders with the registry as seeder of last resort,
// reusing the same staging-slot discipline as shipFull so an interrupted
// transfer resumes from the exact byte on retry.
func (p *Platform) swarmShipFull(sw *swarm.Swarm, dev *device.Device, v *registry.ModelVersion, rep *UpdateReport) (*nn.Network, error) {
	data, ts, err := sw.Transfer(dev, "full:"+v.ID, 0)
	if err != nil {
		return nil, fmt.Errorf("core: swarm ship to %s: %w", dev.ID, err)
	}
	model, err := nn.UnmarshalNetwork(data)
	if err != nil {
		return nil, err
	}
	rep.ShipBytes = ts.TotalBytes
	rep.FlashBytes = ts.TotalBytes
	rep.TransferTime = ts.Duration
	rep.PeerBytes = ts.FromPeers
	rep.RegistryBytes = ts.FromRegistry
	return model, nil
}

// Rollback reverts the deployment to the image it ran before the last
// Update — no transfer, the prior generation is still in the B slot. The
// meter and telemetry buffer are preserved; the telemetry window rolls;
// the restored monitor is reset so stale alarms do not re-fire. A second
// rollback without an intervening update fails.
func (d *Deployment) Rollback() (*UpdateReport, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.prev == nil {
		return nil, fmt.Errorf("core: deployment %s has no previous image", d.DeviceID)
	}
	rep := &UpdateReport{DeviceID: d.DeviceID, From: d.Version, To: d.prev.version}
	d.rollWindowLocked()
	d.Version, d.model, d.compiled, d.Monitor = d.prev.version, d.prev.model, d.prev.compiled, d.prev.monitor
	d.prev = nil
	if d.Monitor != nil {
		d.Monitor.Reset()
	}
	// Re-derive the executable from the restored image: an integer variant
	// goes back onto the integer kernels with fresh scratch, a compiled
	// image back onto the VM.
	if d.compiled != nil {
		d.run = newVMRunnable(d.compiled, procvm.CapSensor)
	} else {
		d.run = newRunnable(d.device, d.Version, d.model)
	}
	if d.retained != nil {
		if err := d.refreshAttestorLocked(); err != nil {
			return nil, err
		}
	}
	d.featStats = nil
	return rep, nil
}

// swapLocked installs (version, model-or-module) as the live image, saving
// the old one for rollback. Exactly one of m and mod is non-nil, matching
// the version's kind. Caller holds d.mu.
func (d *Deployment) swapLocked(v *registry.ModelVersion, m *nn.Network, mod *procvm.Module, calib *dataset.Dataset) error {
	d.rollWindowLocked()
	d.prev = &image{version: d.Version, model: d.model, compiled: d.compiled, monitor: d.Monitor}
	d.Version = v
	d.model = m
	d.compiled = mod
	// The registry artifact stays the source of truth: deltas patched the
	// float model, and the executable (QModel included) is re-instantiated
	// from the result.
	if mod != nil {
		d.run = newVMRunnable(mod, procvm.CapSensor)
	} else {
		d.run = newRunnable(d.device, v, m)
	}
	if d.retained != nil {
		if err := d.refreshAttestorLocked(); err != nil {
			return err
		}
	}
	if calib != nil {
		mon, err := buildMonitor(calib)
		if err != nil {
			return err
		}
		d.Monitor = mon
	} else if d.Monitor != nil {
		// Same calibration, new version: clear the latch and statistics so
		// post-update health reflects the new model only. The rollback
		// image shares this monitor; Rollback resets it again.
		d.Monitor.Reset()
	}
	d.featStats = nil
	return nil
}

// shipFull encrypts a full artifact, transfers and flashes it on the
// device, and decrypts it back into a runnable network — the §V transfer
// path shared by Deploy and Update.
func (p *Platform) shipFull(dev *device.Device, v *registry.ModelVersion) (*nn.Network, time.Duration, error) {
	artifact, err := p.Registry.Bytes(v.ID)
	if err != nil {
		return nil, 0, err
	}
	em, err := ipprot.EncryptModel(p.vendorKey, v.ID, artifact)
	if err != nil {
		return nil, 0, err
	}
	// Content-addressed install token: an install of the same image that
	// crashed mid-flash resumes from its half-written slot on retry,
	// whether the caller was Deploy or Update.
	dur, err := dev.InstallResumable("full:"+v.ID, int64(v.Metrics.SizeBytes), int64(v.Metrics.SizeBytes))
	if err != nil {
		return nil, 0, fmt.Errorf("core: ship to %s: %w", dev.ID, err)
	}
	plain, err := ipprot.DecryptModel(p.vendorKey, em)
	if err != nil {
		return nil, 0, err
	}
	model, err := nn.UnmarshalNetwork(plain)
	if err != nil {
		return nil, 0, err
	}
	return model, dur, nil
}

// shipCompiled is shipFull's counterpart for compiled procvm artifacts: the
// registry blob is the module's canonical PVM1 encoding, and the decode on
// the far side is strict, so a corrupted transfer fails here rather than at
// first inference. Delta transfer never applies — bytecode has no weight
// topology to diff — so every compiled ship is a full image.
func (p *Platform) shipCompiled(dev *device.Device, v *registry.ModelVersion) (*procvm.Module, time.Duration, error) {
	blob, err := p.Registry.Bytes(v.ID)
	if err != nil {
		return nil, 0, err
	}
	em, err := ipprot.EncryptModel(p.vendorKey, v.ID, blob)
	if err != nil {
		return nil, 0, err
	}
	dur, err := dev.InstallResumable("full:"+v.ID, int64(v.Metrics.SizeBytes), int64(v.Metrics.SizeBytes))
	if err != nil {
		return nil, 0, fmt.Errorf("core: ship to %s: %w", dev.ID, err)
	}
	plain, err := ipprot.DecryptModel(p.vendorKey, em)
	if err != nil {
		return nil, 0, err
	}
	mod, err := procvm.DecodeModule(plain)
	if err != nil {
		return nil, 0, err
	}
	return mod, dur, nil
}

// embedWatermark stamps the customer identity into a deployed copy and
// records it in the registry (§V: per-user marks, keyed per device so
// parallel deploys stay deterministic).
func (p *Platform) embedWatermark(model *nn.Network, versionID, deviceID, owner string) error {
	capacity := watermarkCapacity(model)
	bits := ipprot.KeyedBits(owner, capacity)
	if err := ipprot.EmbedStatic(model, owner, bits, ipprot.DefaultStaticWMConfig()); err != nil {
		return fmt.Errorf("core: watermark: %w", err)
	}
	return p.Registry.SetTag(versionID, "watermark:"+deviceID, owner)
}
