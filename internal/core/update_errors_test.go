package core

import (
	"crypto/sha256"
	"errors"
	"strings"
	"testing"

	"tinymlops/internal/dataset"
	"tinymlops/internal/device"
	"tinymlops/internal/fed"
	"tinymlops/internal/nn"
	"tinymlops/internal/procvm"
	"tinymlops/internal/registry"
	"tinymlops/internal/rollout"
	"tinymlops/internal/tensor"
)

// TestUpdateErrorPaths drives every Update/Rollback failure mode through
// one table: bad targets, unmanaged deployments, missing rollback images,
// offline devices and dead batteries.
func TestUpdateErrorPaths(t *testing.T) {
	f := newRolloutFixture(t, 1)
	cases := []struct {
		name string
		run  func(t *testing.T) error
		want string
		// transient marks errors the rollout retry policy should retry.
		transient bool
	}{
		{
			name: "nil target",
			run: func(t *testing.T) error {
				dep, _ := f.p.Deployment("phone-00")
				_, err := dep.Update(nil, UpdateOptions{})
				return err
			},
			want: "nil update target",
		},
		{
			name: "unmanaged deployment",
			run: func(t *testing.T) error {
				orphan := &Deployment{DeviceID: "ghost"}
				_, err := orphan.Update(f.v2, UpdateOptions{})
				return err
			},
			want: "not platform-managed",
		},
		{
			name: "rollback with no prior image",
			run: func(t *testing.T) error {
				dep, _ := f.p.Deployment("phone-01")
				_, err := dep.Rollback()
				return err
			},
			want: "no previous image",
		},
		{
			name: "offline device",
			run: func(t *testing.T) error {
				dep, _ := f.p.Deployment("m4-wearable-00")
				dep.Device().SetNet(device.Offline)
				defer dep.Device().SetNet(device.WiFi)
				_, err := dep.Update(f.v2, UpdateOptions{})
				return err
			},
			want:      "offline",
			transient: true,
		},
		{
			name: "battery death mid-update",
			run: func(t *testing.T) error {
				dep, _ := f.p.Deployment("m7-camera-00")
				dep.Device().SetNet(device.WiFi)
				dep.Device().SetBatteryLevel(0)
				defer dep.Device().SetBatteryLevel(1)
				_, err := dep.Update(f.v2, UpdateOptions{})
				return err
			},
			want: "battery depleted",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run(t)
			if err == nil {
				t.Fatalf("no error; want %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			if got := TransientUpdateError(err); got != tc.transient {
				t.Fatalf("TransientUpdateError = %v, want %v for %q", got, tc.transient, err)
			}
		})
	}
}

// TestWatermarkedUpdateForcesFullTransfer: a per-customer watermark
// perturbs on-device weights, so the delta precondition (bit-identical
// base) fails and the update must ship the full image.
func TestWatermarkedUpdateForcesFullTransfer(t *testing.T) {
	f := newRolloutFixture(t, 1)
	dep, err := f.p.Deploy("npu-board-01", "clf", DeployConfig{
		PrepaidQueries: 1000, Watermark: "acme-corp",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dep.Watermarked() {
		t.Fatal("deployment not watermarked")
	}
	rep, err := dep.Update(f.v2, UpdateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.UsedDelta {
		t.Fatal("watermarked deployment shipped a delta")
	}
	if rep.ShipBytes != int64(f.v2.Metrics.SizeBytes) {
		t.Fatalf("shipped %d B, want the full %d B", rep.ShipBytes, f.v2.Metrics.SizeBytes)
	}
	// The updated copy carries the watermark again: it must NOT match the
	// registry artifact bit-for-bit.
	data, err := dep.Model().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if sha256.Sum256(data) == f.v2.Digest {
		t.Fatal("watermarked update produced pristine artifact bytes")
	}
}

// TestTopologyMismatchFallsBackToFull: moving to a differently-shaped
// model cannot use a weight delta; the update must ship the full image.
func TestTopologyMismatchFallsBackToFull(t *testing.T) {
	f := newRolloutFixture(t, 1)
	rng := tensor.NewRNG(33)
	wide := nn.NewNetwork([]int{4}, nn.NewDense(4, 24, rng), nn.NewReLU(), nn.NewDense(24, 3, rng))
	if _, err := nn.Train(wide, f.ds.X, f.ds.Y, nn.TrainConfig{
		Epochs: 2, BatchSize: 32, Optimizer: nn.NewSGD(0.1), RNG: rng,
	}); err != nil {
		t.Fatal(err)
	}
	v3s, err := f.p.Publish("clf", wide, f.ds, baseOnlySpec(f.ds))
	if err != nil {
		t.Fatal(err)
	}
	dep, _ := f.p.Deployment("edge-gateway-01")
	rep, err := dep.Update(v3s[0], UpdateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.UsedDelta {
		t.Fatal("topology mismatch still used a delta")
	}
	if rep.ShipBytes != int64(v3s[0].Metrics.SizeBytes) || rep.FlashBytes != rep.ShipBytes {
		t.Fatalf("report = %+v, want full-image accounting", rep)
	}
}

// TestExhaustedMeterSurvivesUpdate: an update must neither mint credit
// nor reset usage — the voucher prepays queries, not a version. The
// deployment keeps denying after the swap.
func TestExhaustedMeterSurvivesUpdate(t *testing.T) {
	f := newRolloutFixture(t, 1)
	dep, err := f.p.Deploy("m0-sensor-01", "clf", DeployConfig{PrepaidQueries: 2})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, 4)
	for i := 0; i < 2; i++ {
		if _, err := dep.Infer(x); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := dep.Infer(x); !errors.Is(err, ErrQueryDenied) {
		t.Fatalf("want ErrQueryDenied, got %v", err)
	}
	voucherBefore := dep.Meter.Voucher().ID
	dep.Device().SetNet(device.WiFi)
	dep.Device().SetBatteryLevel(1)
	if _, err := dep.Update(f.v2, UpdateOptions{}); err != nil {
		t.Fatal(err)
	}
	if dep.Meter.Voucher().ID != voucherBefore {
		t.Fatal("update swapped the voucher")
	}
	if dep.Meter.Used() != 2 || dep.Meter.Remaining() != 0 {
		t.Fatalf("meter after update: used %d remaining %d", dep.Meter.Used(), dep.Meter.Remaining())
	}
	if _, err := dep.Infer(x); !errors.Is(err, ErrQueryDenied) {
		t.Fatalf("exhausted meter served a query after update: %v", err)
	}
}

// TestUpdateInterruptedInstallResumes is the core-level recovery proof:
// a mid-flash crash fails the update transiently, the running version
// stays live, and the retry resumes the half-written slot — total flashed
// bytes across both attempts equal the patch exactly, the final model is
// bit-identical to the registry artifact, and the meter never moves.
func TestUpdateInterruptedInstallResumes(t *testing.T) {
	f := newRolloutFixture(t, 1)
	dep, _ := f.p.Deployment("edge-gateway-00")
	dev := dep.Device()
	usedBefore := dep.Meter.Used()
	flashedBefore := dev.Snapshot().FlashedBytes

	// Crash the first install attempt at 60% of the flash.
	calls := 0
	dev.SetInstallInterrupter(func(token string, rem int64) float64 {
		calls++
		if calls == 1 {
			return 0.6
		}
		return 1
	})
	defer dev.SetInstallInterrupter(nil)

	_, err := dep.Update(f.v2, UpdateOptions{})
	if !errors.Is(err, device.ErrInstallInterrupted) {
		t.Fatalf("want ErrInstallInterrupted, got %v", err)
	}
	if !TransientUpdateError(err) {
		t.Fatal("interrupted install must be retryable")
	}
	if dep.Version.ID != f.v1.ID {
		t.Fatalf("crashed update moved the live version to %s", dep.Version.ID)
	}
	token, flashed, total, ok := dev.Staging()
	if !ok || !strings.HasPrefix(token, "delta:") || flashed == 0 || flashed >= total {
		t.Fatalf("staging after crash = %q %d/%d ok=%v", token, flashed, total, ok)
	}

	// Retry: selection repeats, the token matches, the slot resumes.
	rep, err := dep.Update(f.v2, UpdateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.UsedDelta {
		t.Fatal("retry abandoned the delta")
	}
	if _, _, _, ok := dev.Staging(); ok {
		t.Fatal("staging survived a completed install")
	}
	if got := dev.Snapshot().FlashedBytes - flashedBefore; got != rep.FlashBytes {
		t.Fatalf("flashed %d B across both attempts, want exactly %d (resume, not restart)", got, rep.FlashBytes)
	}
	data, err := dep.Model().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if sha256.Sum256(data) != f.v2.Digest {
		t.Fatal("recovered model diverges from the v2 artifact")
	}
	if dep.Meter.Used() != usedBefore {
		t.Fatalf("meter moved across the interrupted install: %d -> %d", usedBefore, dep.Meter.Used())
	}
}

// TestInferBatchWithPipelineModules covers the batched pre/post paths:
// normalization feeds the model, argmax postprocessing labels each row,
// and a broken postprocess marks only its own rows failed.
func TestInferBatchWithPipelineModules(t *testing.T) {
	f := newRolloutFixture(t, 1)
	means, stds := f.ds.Clone().Standardize()
	pre, err := procvm.NewBuilder("pre").Input().Normalize(means, stds).Build()
	if err != nil {
		t.Fatal(err)
	}
	post, err := procvm.NewBuilder("post").Input().Softmax().ArgMax().Build()
	if err != nil {
		t.Fatal(err)
	}
	dep, err := f.p.Deploy("phone-01", "clf", DeployConfig{
		PrepaidQueries: 1000, Pre: pre, Post: post,
	})
	if err != nil {
		t.Fatal(err)
	}
	outs := dep.InferBatch(f.inRows)
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("row %d: %v", i, o.Err)
		}
		if o.Result.Label < 0 || o.Result.Label > 2 {
			t.Fatalf("row %d label %d", i, o.Result.Label)
		}
	}
	// Batched results must equal the serial path's labels.
	dep2, err := f.p.Deploy("npu-board-00", "clf", DeployConfig{
		PrepaidQueries: 1000, Pre: pre, Post: post,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range f.inRows {
		r, err := dep2.Infer(row)
		if err != nil {
			t.Fatal(err)
		}
		if r.Label != outs[i].Result.Label {
			t.Fatalf("row %d: serial label %d, batched %d", i, r.Label, outs[i].Result.Label)
		}
	}
	// A postprocess that keeps a vector output fails its rows.
	badPost, err := procvm.NewBuilder("bad").Input().Softmax().Build()
	if err != nil {
		t.Fatal(err)
	}
	dep3, err := f.p.Deploy("m0-sensor-00", "clf", DeployConfig{
		PrepaidQueries: 1000, Post: badPost,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range dep3.InferBatch(f.inRows[:2]) {
		if o.Err == nil {
			t.Fatal("vector-valued postprocess accepted in batch path")
		}
	}
}

// TestPublishDefaultEvaluateAndAccessors covers the Publish nil-Evaluate
// default plus the small platform/deployment accessors.
func TestPublishDefaultEvaluateAndAccessors(t *testing.T) {
	f := newRolloutFixture(t, 2)
	if f.p.Engine() == nil || f.p.Engine().Workers() != 2 {
		t.Fatalf("engine = %+v", f.p.Engine())
	}
	rng := tensor.NewRNG(55)
	net := nn.NewNetwork([]int{4}, nn.NewDense(4, 6, rng), nn.NewReLU(), nn.NewDense(6, 3, rng))
	vs, err := f.p.Publish("aux", net, f.ds, registry.OptimizationSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if vs[0].Metrics.Accuracy <= 0 {
		t.Fatalf("default Evaluate not applied: %+v", vs[0].Metrics)
	}
	dep, _ := f.p.Deployment("phone-00")
	w0 := dep.CurrentWindow()
	if _, err := dep.Update(f.v2, UpdateOptions{}); err != nil {
		t.Fatal(err)
	}
	if dep.CurrentWindow() <= w0 {
		t.Fatalf("update did not roll the window: %d -> %d", w0, dep.CurrentWindow())
	}
	if dep.Watermarked() {
		t.Fatal("unwatermarked deployment claims a watermark")
	}
}

// TestFederatedRolloutArc closes the loop: federated training publishes a
// new base and the staged rollout moves the fleet onto it.
func TestFederatedRolloutArc(t *testing.T) {
	f := newRolloutFixture(t, 2)
	rng := tensor.NewRNG(77)
	shards := dataset.PartitionIID(rng, f.ds, 4)
	clients := fed.MakeClients(f.ds, shards, "fc")
	versions, stats, res, err := f.p.FederatedRollout("clf", clients, f.ds, fed.Config{
		Rounds: 1, LocalEpochs: 1, LocalBatch: 32, LR: 0.05, Seed: 3,
	}, baseOnlySpec(f.ds), RolloutConfig{
		Seed: 9,
		Bake: func(w rollout.Wave, ids []string) error {
			f.drive(t, ids, f.inRows, 2)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 || len(versions) == 0 {
		t.Fatalf("fed stats %d, versions %d", len(stats), len(versions))
	}
	if !res.Completed {
		t.Fatalf("federated rollout did not complete: %+v", res.Waves[len(res.Waves)-1].Gate)
	}
	for _, dep := range f.p.Deployments() {
		if dep.Version.Name != "clf" {
			continue
		}
		if dep.Version.ID != versions[0].ID {
			t.Fatalf("%s still on %s after federated rollout", dep.DeviceID, dep.Version.ID)
		}
	}
}

// TestInferFailurePaths covers the serial Infer error branches: a
// preprocess that reduces to a scalar, a postprocess that keeps a vector,
// and a device that cannot power the inference.
func TestInferFailurePaths(t *testing.T) {
	f := newRolloutFixture(t, 1)
	badPre, err := procvm.NewBuilder("scalar-pre").Input().ArgMax().Build()
	if err != nil {
		t.Fatal(err)
	}
	dep, err := f.p.Deploy("phone-01", "clf", DeployConfig{PrepaidQueries: 100, Pre: badPre})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, 4)
	if _, err := dep.Infer(x); err == nil || !strings.Contains(err.Error(), "must produce a vector") {
		t.Fatalf("scalar preprocess accepted: %v", err)
	}
	badPost, err := procvm.NewBuilder("vec-post").Input().Softmax().Build()
	if err != nil {
		t.Fatal(err)
	}
	dep2, err := f.p.Deploy("npu-board-00", "clf", DeployConfig{PrepaidQueries: 100, Post: badPost})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep2.Infer(x); err == nil || !strings.Contains(err.Error(), "reduce to a scalar") {
		t.Fatalf("vector postprocess accepted: %v", err)
	}
	dep3, _ := f.p.Deployment("m0-sensor-00")
	dep3.Device().SetBatteryLevel(0)
	defer dep3.Device().SetBatteryLevel(1)
	if _, err := dep3.Infer(x); err == nil || !strings.Contains(err.Error(), "battery") {
		t.Fatalf("dead battery served a query: %v", err)
	}
	h := dep3.Health()
	if h.Errors == 0 {
		t.Fatal("failed inference missing from health")
	}
}

// TestRolloutWithFailingDevicesCoversTargetErrors exercises the platform
// rollout adapter's failure branches: an offline device fails its update
// inside the wave and is skipped by the rollback sweep.
func TestRolloutWithFailingDevicesCoversTargetErrors(t *testing.T) {
	f := newRolloutFixture(t, 2)
	down, _ := f.p.Deployment("phone-00")
	down.Device().SetNet(device.Offline)
	defer down.Device().SetNet(device.WiFi)
	res, err := f.p.Rollout(f.v2, RolloutConfig{
		Waves: []rollout.Wave{{Name: "all", Fraction: 1}},
		Gate:  rollout.Gate{MaxUpdateFailures: 12, MaxErrorRate: 0.9, MaxDriftFraction: 1, MaxLatencyIncrease: 9},
		Seed:  4,
		Bake: func(w rollout.Wave, ids []string) error {
			f.drive(t, ids, f.inRows, 1)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("tolerant gate failed: %+v", res.Waves[0].Gate)
	}
	if res.Waves[0].Gate.UpdateFailures != 1 {
		t.Fatalf("update failures = %d, want 1 (the offline phone)", res.Waves[0].Gate.UpdateFailures)
	}
	if down.Version.ID != f.v1.ID {
		t.Fatal("offline device should have kept v1")
	}
}

// TestPlatformConfigDefaultsAndFedErrors covers the MinCohort floor and
// the federated-update error path for an unknown model line.
func TestPlatformConfigDefaultsAndFedErrors(t *testing.T) {
	fleet, err := device.NewStandardFleet(device.FleetSpec{CountPerProfile: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(fleet, Config{VendorKey: vendorKey, Seed: 2}) // MinCohort 0 -> 1
	if err != nil {
		t.Fatal(err)
	}
	if p.Aggregator.MinCohort != 1 {
		t.Fatalf("MinCohort floor = %d", p.Aggregator.MinCohort)
	}
	if _, _, err := p.FederatedUpdate("no-such-line", nil, nil, fed.Config{}, registry.OptimizationSpec{}); err == nil {
		t.Fatal("federated update of an unknown line succeeded")
	}
}

// TestWatermarkCapacityClamps covers the tiny-model watermark floor: a
// 2x2 head still embeds at least 4 bits.
func TestWatermarkCapacityClamps(t *testing.T) {
	rng := tensor.NewRNG(8)
	tiny := nn.NewNetwork([]int{2}, nn.NewDense(2, 2, rng))
	if c := watermarkCapacity(tiny); c != 4 {
		t.Fatalf("tiny capacity = %d, want the floor 4", c)
	}
	noDense := nn.NewNetwork([]int{1, 8, 8}, nn.NewConv2D(1, 2, 3, 3, 1, 1, rng))
	if c := watermarkCapacity(noDense); c != 16 {
		t.Fatalf("dense-free capacity = %d, want the default 16", c)
	}
	big := nn.NewNetwork([]int{64}, nn.NewDense(64, 64, rng))
	if c := watermarkCapacity(big); c != 32 {
		t.Fatalf("big capacity = %d, want the cap 32", c)
	}
}
