package core

import (
	"errors"
	"net"
	"testing"

	"tinymlops/internal/dataset"
	"tinymlops/internal/device"
	"tinymlops/internal/fed"
	"tinymlops/internal/ipprot"
	"tinymlops/internal/metering"
	"tinymlops/internal/nn"
	"tinymlops/internal/procvm"
	"tinymlops/internal/quant"
	"tinymlops/internal/registry"
	"tinymlops/internal/tensor"
)

var vendorKey = []byte("vendor-master-key-0123456789abcdef")

// fixture builds a platform with a trained model published and an
// always-online fleet.
func fixture(t *testing.T, seed uint64) (*Platform, *dataset.Dataset, []*registry.ModelVersion) {
	t.Helper()
	rng := tensor.NewRNG(seed)
	fleet, err := device.NewStandardFleet(device.FleetSpec{CountPerProfile: 2, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range fleet.Devices() {
		d.SetBehavior(1, 1, 0)
	}
	fleet.Tick()
	p, err := New(fleet, Config{VendorKey: vendorKey, Seed: seed, MinCohort: 1})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.Blobs(rng, 900, 4, 3, 5)
	net := nn.NewNetwork([]int{4}, nn.NewDense(4, 16, rng), nn.NewReLU(), nn.NewDense(16, 3, rng))
	if _, err := nn.Train(net, ds.X, ds.Y, nn.TrainConfig{
		Epochs: 10, BatchSize: 32, Optimizer: nn.NewSGD(0.1).WithMomentum(0.9), RNG: rng,
	}); err != nil {
		t.Fatal(err)
	}
	versions, err := p.Publish("clf", net, ds, DefaultOptimizationSpec(ds))
	if err != nil {
		t.Fatal(err)
	}
	return p, ds, versions
}

func TestNewValidatesKey(t *testing.T) {
	fleet := device.NewFleet()
	if _, err := New(fleet, Config{VendorKey: []byte("short")}); err == nil {
		t.Fatal("short vendor key accepted")
	}
}

func TestPublishCreatesVariantMatrix(t *testing.T) {
	p, _, versions := fixture(t, 1)
	if len(versions) != 5 { // base + 4 schemes
		t.Fatalf("published %d versions", len(versions))
	}
	if got := p.Registry.Stats(); got.Bases != 1 || got.Variants != 4 {
		t.Fatalf("registry stats = %+v", got)
	}
}

func TestDeployAndInfer(t *testing.T) {
	p, ds, _ := fixture(t, 2)
	dep, err := p.Deploy("phone-00", "clf", DeployConfig{
		PrepaidQueries: 50,
		Calibration:    ds,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Version == nil || dep.Meter.Remaining() != 50 {
		t.Fatalf("deployment = %+v", dep)
	}
	x := make([]float32, 4)
	for f := 0; f < 4; f++ {
		x[f] = ds.X.At2(0, f)
	}
	res, err := dep.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.Label != ds.Y[0] {
		t.Logf("label %d vs truth %d (model may err on one point)", res.Label, ds.Y[0])
	}
	// The download was charged to the device.
	if dep.Device().Snapshot().RxBytes == 0 {
		t.Fatal("model shipment not charged to the radio")
	}
}

func TestMeteringDeniesAfterQuota(t *testing.T) {
	p, ds, _ := fixture(t, 3)
	dep, err := p.Deploy("edge-gateway-00", "clf", DeployConfig{PrepaidQueries: 5})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, 4)
	for i := 0; i < 5; i++ {
		for f := 0; f < 4; f++ {
			x[f] = ds.X.At2(i, f)
		}
		if _, err := dep.Infer(x); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if _, err := dep.Infer(x); !errors.Is(err, ErrQueryDenied) {
		t.Fatalf("6th query error = %v", err)
	}
	if dep.Device().Snapshot().DeniedQueries != 1 {
		t.Fatal("denial not counted on the device")
	}
}

func TestDriftMonitorFlagsShiftedInputs(t *testing.T) {
	p, ds, _ := fixture(t, 4)
	dep, err := p.Deploy("phone-01", "clf", DeployConfig{
		PrepaidQueries: 10000, Calibration: ds,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(99)
	x := make([]float32, 4)
	// In-distribution queries: no alarm.
	for i := 0; i < 300; i++ {
		r := rng.Intn(ds.Len())
		for f := 0; f < 4; f++ {
			x[f] = ds.X.At2(r, f)
		}
		res, err := dep.Infer(x)
		if err != nil {
			t.Fatal(err)
		}
		if res.DriftAlarm {
			t.Fatalf("false drift alarm at query %d", i)
		}
	}
	// Shifted queries: alarm within a few hundred.
	alarmed := false
	for i := 0; i < 400 && !alarmed; i++ {
		r := rng.Intn(ds.Len())
		for f := 0; f < 4; f++ {
			x[f] = ds.X.At2(r, f) + 6
		}
		res, err := dep.Infer(x)
		if err != nil {
			t.Fatal(err)
		}
		alarmed = res.DriftAlarm
	}
	if !alarmed {
		t.Fatal("drift not detected after mean shift")
	}
}

func TestTelemetryFlowsToAggregator(t *testing.T) {
	p, ds, _ := fixture(t, 5)
	dep, err := p.Deploy("m7-camera-00", "clf", DeployConfig{PrepaidQueries: 1000, Calibration: ds})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, 4)
	for i := 0; i < 40; i++ {
		for f := 0; f < 4; f++ {
			x[f] = ds.X.At2(i, f)
		}
		if _, err := dep.Infer(x); err != nil {
			t.Fatal(err)
		}
	}
	records, bytes, err := p.SyncTelemetry()
	if err != nil {
		t.Fatal(err)
	}
	if records == 0 || bytes == 0 {
		t.Fatalf("telemetry did not flow: %d records, %d bytes", records, bytes)
	}
	sum, err := p.Aggregator.Summarize("cortex-m7")
	if err != nil {
		t.Fatal(err)
	}
	if sum.Inferences != 40 || sum.MeanLatency <= 0 {
		t.Fatalf("cohort summary = %+v", sum)
	}
}

func TestSettlementOverTCPFromPlatform(t *testing.T) {
	p, ds, _ := fixture(t, 6)
	dep, err := p.Deploy("phone-00", "clf", DeployConfig{PrepaidQueries: 100})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, 4)
	for i := 0; i < 17; i++ {
		for f := 0; f < 4; f++ {
			x[f] = ds.X.At2(i, f)
		}
		if _, err := dep.Infer(x); err != nil {
			t.Fatal(err)
		}
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := metering.Serve(l, p.Settler)
	defer srv.Close()
	results := p.SettleAll(srv.Addr())
	if err := results["phone-00"]; err != nil {
		t.Fatalf("settlement failed: %v", err)
	}
	used, ok := p.Settler.SettledUsage(dep.Meter.Voucher().ID)
	if !ok || used != 17 {
		t.Fatalf("settled usage = %d", used)
	}
}

func TestDeploySelectsDifferentVariantsAcrossFleet(t *testing.T) {
	p, ds, _ := fixture(t, 7)
	chosen := make(map[string]bool)
	for _, id := range []string{"m0-sensor-00", "npu-board-00", "edge-gateway-00"} {
		dep, err := p.Deploy(id, "clf", DeployConfig{PrepaidQueries: 10, Calibration: ds})
		if err != nil {
			t.Fatalf("deploy %s: %v", id, err)
		}
		chosen[dep.Version.ID] = true
	}
	if len(chosen) < 2 {
		t.Fatal("heterogeneous fleet collapsed to one variant")
	}
}

func TestDeployWithWatermarkTagsRegistry(t *testing.T) {
	p, ds, _ := fixture(t, 8)
	dep, err := p.Deploy("phone-00", "clf", DeployConfig{
		PrepaidQueries: 10, Calibration: ds, Watermark: "customer-42",
	})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := p.Registry.Get(dep.Version.ID)
	if v.Tags["watermark:phone-00"] != "customer-42" {
		t.Fatalf("registry tags = %v", v.Tags)
	}
	// The mark extracts from the deployed copy. Capacity is scaled to the
	// carrier layer: the fixture's first dense layer has 64 weights → 16.
	bits := ipprot.KeyedBits("customer-42", 16)
	got, err := ipprot.ExtractStatic(dep.Model(), "customer-42", 16, ipprot.DefaultStaticWMConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ber := ipprot.BitErrorRate(bits, got); ber != 0 {
		t.Fatalf("deployed-copy BER = %v", ber)
	}
}

func TestDeployWithPipelineModules(t *testing.T) {
	p, ds, _ := fixture(t, 9)
	means, stds := ds.Clone().Standardize()
	pre, err := procvm.NewBuilder("pre").Input().Normalize(means, stds).Build()
	if err != nil {
		t.Fatal(err)
	}
	post, err := procvm.NewBuilder("post").Input().Softmax().ArgMax().Build()
	if err != nil {
		t.Fatal(err)
	}
	dep, err := p.Deploy("phone-00", "clf", DeployConfig{
		PrepaidQueries: 10, Pre: pre, Post: post,
	})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, 4)
	for f := 0; f < 4; f++ {
		x[f] = ds.X.At2(3, f)
	}
	res, err := dep.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Label < 0 || res.Label > 2 {
		t.Fatalf("label = %d", res.Label)
	}
}

func TestDeployErrors(t *testing.T) {
	p, _, _ := fixture(t, 10)
	if _, err := p.Deploy("no-such-device", "clf", DeployConfig{}); err == nil {
		t.Fatal("unknown device accepted")
	}
	if _, err := p.Deploy("phone-00", "no-such-model", DeployConfig{}); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestFederatedUpdateImprovesAndRepublishes(t *testing.T) {
	p, _, _ := fixture(t, 11)
	rng := tensor.NewRNG(123)
	ds := dataset.Blobs(rng, 1200, 4, 3, 5)
	train, test := ds.Split(0.8, rng)
	shards := dataset.PartitionDirichlet(rng, train, 6, 1.0)
	clients := fed.MakeClients(train, shards, "c")
	spec := registry.OptimizationSpec{
		Schemes: []quant.Scheme{quant.Int8},
		Evaluate: func(n *nn.Network) float64 {
			return nn.Evaluate(n, test.X, test.Y)
		},
	}
	versions, stats, err := p.FederatedUpdate("clf", clients, test, fed.Config{
		Rounds: 4, LocalEpochs: 2, LocalBatch: 16, LR: 0.1, Seed: 17,
	}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 4 {
		t.Fatalf("rounds = %d", len(stats))
	}
	if len(versions) != 2 { // new base + int8 variant
		t.Fatalf("republished %d versions", len(versions))
	}
	if versions[0].Metrics.Accuracy < 0.8 {
		t.Fatalf("federated model accuracy = %v", versions[0].Metrics.Accuracy)
	}
	// The registry now has two bases in the line.
	bases := 0
	for _, v := range p.Registry.Versions("clf") {
		if v.ParentID == "" {
			bases++
		}
	}
	if bases != 2 {
		t.Fatalf("bases in line = %d", bases)
	}
}
