package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"tinymlops/internal/compat"
	"tinymlops/internal/enclave"
	"tinymlops/internal/selector"

	"tinymlops/internal/dataset"
	"tinymlops/internal/device"
	"tinymlops/internal/market"
	"tinymlops/internal/nn"
	"tinymlops/internal/offload"
	"tinymlops/internal/registry"
	"tinymlops/internal/tensor"
)

// offloadPlatform provisions a one-phone platform with a published model
// line and a live deployment, plus a started cloud tier.
func offloadPlatform(t *testing.T, watermark string) (*Platform, *Deployment, *offload.CloudTier, *dataset.Dataset) {
	t.Helper()
	fleet, err := device.NewStandardFleet(device.FleetSpec{CountPerProfile: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range fleet.Devices() {
		d.SetNet(device.WiFi)
	}
	p, err := New(fleet, Config{VendorKey: []byte("offload-core-key-0123456789abcdef"), Seed: 5, MinCohort: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(6)
	ds := dataset.Blobs(rng, 200, 6, 3, 4)
	net := nn.NewNetwork([]int{6},
		nn.NewDense(6, 16, rng), nn.NewReLU(), nn.NewDense(16, 3, rng))
	spec := registry.OptimizationSpec{Evaluate: func(n *nn.Network) float64 { return nn.Evaluate(n, ds.X, ds.Y) }}
	if _, err := p.Publish("off", net, ds, spec); err != nil {
		t.Fatal(err)
	}
	dep, err := p.Deploy("phone-00", "off", DeployConfig{
		PrepaidQueries: 50, Calibration: ds, Watermark: watermark,
	})
	if err != nil {
		t.Fatal(err)
	}
	cloud := offload.NewCloud(offload.CloudConfig{})
	cloud.Start()
	t.Cleanup(cloud.Close)
	return p, dep, cloud, ds
}

// TestPlatformOffloadBitExactAndMetered drives mixed local and offloaded
// queries through one deployment: the offloaded answers must be
// bit-identical to the deployed model's own forward pass, the single
// prepaid meter must count both kinds, and telemetry windows must roll
// the combined traffic.
func TestPlatformOffloadBitExactAndMetered(t *testing.T) {
	p, dep, cloud, ds := offloadPlatform(t, "")
	cut := 1
	sess, err := p.Offload("phone-00", OffloadConfig{
		Cloud: cloud, Plan: &market.SplitPlan{Cut: cut},
		Replan: offload.ReplanConfig{Disabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	es := ds.X.Size() / ds.Len()
	for q := 0; q < 10; q++ {
		x := ds.X.Data[q*es : (q+1)*es]
		out, err := sess.Infer(x)
		if err != nil {
			t.Fatal(err)
		}
		if out.Split.Mode != offload.ModeSplit || out.Split.Cut != cut {
			t.Fatalf("query %d: mode %v cut %d", q, out.Split.Mode, out.Split.Cut)
		}
		want := dep.Model().Predict(tensor.FromSlice(append([]float32(nil), x...), 1, es))
		for i, v := range out.Split.Logits {
			if math.Float32bits(v) != math.Float32bits(want.Data[i]) {
				t.Fatalf("query %d: offloaded logit %d differs from on-device forward", q, i)
			}
		}
		if out.Label != want.ArgMaxRows()[0] {
			t.Fatalf("query %d: label %d", q, out.Label)
		}
		// Interleave a fully local query through the same deployment.
		if _, err := dep.Infer(x); err != nil {
			t.Fatal(err)
		}
	}
	if used := dep.Meter.Used(); used != 20 {
		t.Fatalf("meter used %d, want 20 (10 offloaded + 10 local)", used)
	}
	c := dep.Device().Snapshot()
	if c.TxBytes == 0 {
		t.Fatal("no activation bytes ever crossed the uplink")
	}
	st := sess.Stats()
	if st.Split != 10 || st.Queries != 10 {
		t.Fatalf("session stats %+v", st)
	}
	if cs := cloud.Stats(); cs.Served != 10 {
		t.Fatalf("cloud served %d, want 10", cs.Served)
	}
}

// TestPlatformOffloadDeniesWhenExhausted pins pay-per-query through the
// split: once the shared meter runs out, offloaded queries are denied
// before any compute, same as local ones.
func TestPlatformOffloadDeniesWhenExhausted(t *testing.T) {
	p, dep, cloud, ds := offloadPlatform(t, "")
	sess, err := p.Offload("phone-00", OffloadConfig{Cloud: cloud})
	if err != nil {
		t.Fatal(err)
	}
	es := ds.X.Size() / ds.Len()
	x := ds.X.Data[:es]
	for dep.Meter.Remaining() > 0 {
		if _, err := sess.Infer(x); err != nil {
			t.Fatal(err)
		}
	}
	before := dep.Device().Snapshot()
	if _, err := sess.Infer(x); !errors.Is(err, ErrQueryDenied) {
		t.Fatalf("exhausted meter returned %v", err)
	}
	after := dep.Device().Snapshot()
	if after.Inferences != before.Inferences || after.TxBytes != before.TxBytes {
		t.Fatal("denied offloaded query still spent device resources")
	}
	if after.DeniedQueries != before.DeniedQueries+1 {
		t.Fatal("denial not counted")
	}
}

// TestPlatformOffloadWatermarkedEnclave: a per-customer mark perturbs the
// on-device weights, so a plaintext cloud suffix could never be bit-exact.
// The platform instead seals the device's marked copy into the cloud
// enclave and the suffix executes inside the protected world — offloaded
// answers stay bit-identical to the watermarked model's own forward pass.
func TestPlatformOffloadWatermarkedEnclave(t *testing.T) {
	p, dep, cloud, ds := offloadPlatform(t, "customer-7")
	sess, err := p.Offload("phone-00", OffloadConfig{
		Cloud: cloud, Plan: &market.SplitPlan{Cut: 1},
		Replan: offload.ReplanConfig{Disabled: true},
	})
	if err != nil {
		t.Fatalf("watermarked offload: %v", err)
	}
	es := ds.X.Size() / ds.Len()
	for q := 0; q < 5; q++ {
		x := ds.X.Data[q*es : (q+1)*es]
		out, err := sess.Infer(x)
		if err != nil {
			t.Fatal(err)
		}
		if out.Split.Mode != offload.ModeSplit {
			t.Fatalf("query %d: mode %v, want split", q, out.Split.Mode)
		}
		want := dep.ReferenceLogits(x)
		for i, v := range out.Split.Logits {
			if math.Float32bits(v) != math.Float32bits(want[i]) {
				t.Fatalf("query %d: enclave logit %d differs from watermarked device forward", q, i)
			}
		}
	}
	// The sealed copy is per device: its cloud entry is keyed by device,
	// never colliding with the unmarked registry artifact.
	ver, _, _ := dep.StateSnapshot()
	if !cloud.Registered(ver.ID + "@phone-00") {
		t.Fatal("watermarked copy not registered under its per-device key")
	}
	if cloud.Registered(ver.ID) {
		t.Fatal("watermarked offload leaked an unprotected registry entry")
	}
}

// TestPlatformOffloadStaleAfterUpdate: an OTA update invalidates the
// session (new weights, new version) rather than serving a mixed model.
func TestPlatformOffloadStaleAfterUpdate(t *testing.T) {
	p, dep, cloud, ds := offloadPlatform(t, "")
	sess, err := p.Offload("phone-00", OffloadConfig{Cloud: cloud})
	if err != nil {
		t.Fatal(err)
	}
	es := ds.X.Size() / ds.Len()
	x := ds.X.Data[:es]
	if _, err := sess.Infer(x); err != nil {
		t.Fatal(err)
	}
	// Publish and install v2 (head fine-tune keeps the topology).
	v2net := dep.Model().Clone()
	head := v2net.Layers()[2].(*nn.Dense)
	for i := range head.W.Value.Data {
		head.W.Value.Data[i] += 0.01
	}
	spec := registry.OptimizationSpec{Evaluate: func(n *nn.Network) float64 { return 0.9 }}
	v2s, err := p.Publish("off", v2net, ds, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Update(v2s[0], UpdateOptions{Calibration: ds}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Infer(x); !errors.Is(err, ErrOffloadStale) {
		t.Fatalf("stale session returned %v", err)
	}
	// A fresh session against the new version works again.
	sess2, err := p.Offload("phone-00", OffloadConfig{Cloud: cloud})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess2.Infer(x); err != nil {
		t.Fatal(err)
	}
}

// TestPlatformOffloadRejectsForeignEnclave: protected offload only serves
// through an enclave whose attestation chain verifies against the
// platform's vendor root. A session provisioned from a different
// manufacturer key produces reports the platform cannot verify, so both
// protected paths — watermarked and compiled — must refuse to open.
func TestPlatformOffloadRejectsForeignEnclave(t *testing.T) {
	p, _, cloud, ds := offloadPlatform(t, "customer-7")
	rogueEnc, err := enclave.New("rogue-cloud", []byte("rogue-manufacturer-root-key-00001"), 1.5)
	if err != nil {
		t.Fatal(err)
	}
	rogue := enclave.NewSession(rogueEnc)
	if _, err := p.Offload("phone-00", OffloadConfig{Cloud: cloud, Enclave: rogue}); err == nil {
		t.Fatal("watermarked offload accepted a foreign enclave")
	} else if !strings.Contains(err.Error(), "attestation") {
		t.Fatalf("watermarked offload failed outside attestation: %v", err)
	}

	// Compiled deployments take the enclave-module path; same gate. The
	// fixture publishes no quantized variants, so the deployed version is
	// the float base the compiled module descends from.
	base := p.Deployments()[0].Version
	art, err := p.Registry.Load(base.ID)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := compat.CompileProcVM(art, compat.CompileOptions{Name: base.Name})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Registry.RegisterCompiled(base.ID, mod, base.Metrics.Accuracy); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Deploy("m4-wearable-00", "off", DeployConfig{
		PrepaidQueries: 10, Calibration: ds,
		Policy: selector.Policy{Kinds: []string{registry.KindProcVM}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Offload("m4-wearable-00", OffloadConfig{Cloud: cloud, Enclave: rogue}); err == nil {
		t.Fatal("compiled offload accepted a foreign enclave")
	} else if !strings.Contains(err.Error(), "attestation") {
		t.Fatalf("compiled offload failed outside attestation: %v", err)
	}
	// The platform's own lazily provisioned enclave still works.
	if _, err := p.Offload("m4-wearable-00", OffloadConfig{Cloud: cloud}); err != nil {
		t.Fatalf("vendor enclave refused after rogue attempt: %v", err)
	}
}
