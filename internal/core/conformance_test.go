package core

import (
	"math"
	"testing"

	"tinymlops/internal/compat"
	"tinymlops/internal/dataset"
	"tinymlops/internal/device"
	"tinymlops/internal/ipprot"
	"tinymlops/internal/market"
	"tinymlops/internal/nn"
	"tinymlops/internal/offload"
	"tinymlops/internal/procvm"
	"tinymlops/internal/quant"
	"tinymlops/internal/registry"
	"tinymlops/internal/selector"
	"tinymlops/internal/tensor"
)

// schemePin pins selection to one weight precision.
func schemePin(s quant.Scheme) selector.Policy {
	return selector.Policy{Schemes: []quant.Scheme{s}}
}

// conformanceVariant is one row of the variant matrix: a serving kind, the
// selection policy that pins it, the device whose hardware executes it
// natively, and the split cut its offload plane runs at.
type conformanceVariant struct {
	name     string
	deviceID string
	policy   func() DeployConfig
	wantKind string
	wantExec quant.Scheme
	wantMark bool
	cut      int
}

// conformanceFixture is a six-profile fleet serving the "conf" model line,
// plus a started cloud tier. Generations are published one at a time (see
// publishGen) so each serving plane selects against exactly the registry
// state a staged rollout would see.
type conformanceFixture struct {
	p     *Platform
	cloud *offload.CloudTier
	ds    *dataset.Dataset
	es    int
	rng   *tensor.RNG
	spec  registry.OptimizationSpec
}

func newConformanceFixture(t *testing.T) *conformanceFixture {
	t.Helper()
	fleet, err := device.NewStandardFleet(device.FleetSpec{CountPerProfile: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range fleet.Devices() {
		d.SetNet(device.WiFi)
	}
	p, err := New(fleet, Config{VendorKey: []byte("conformance-key-0123456789abcdef"), Seed: 9, MinCohort: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(10)
	ds := dataset.Blobs(rng, 200, 6, 3, 4)
	f := &conformanceFixture{
		p: p, ds: ds, es: ds.X.Size() / ds.Len(), rng: rng,
		spec: registry.OptimizationSpec{
			Schemes:  []quant.Scheme{quant.Int8, quant.Int4},
			Evaluate: func(n *nn.Network) float64 { return nn.Evaluate(n, ds.X, ds.Y) },
		},
	}
	f.cloud = offload.NewCloud(offload.CloudConfig{})
	f.cloud.Start()
	t.Cleanup(f.cloud.Close)
	return f
}

// publishGen publishes one new generation of the "conf" line — the float
// base, its int8/int4 variants, and a lowered procvm module — and returns
// the base version.
func (f *conformanceFixture) publishGen(t *testing.T) *registry.ModelVersion {
	t.Helper()
	net := nn.NewNetwork([]int{6},
		nn.NewDense(6, 16, f.rng), nn.NewReLU(), nn.NewDense(16, 3, f.rng))
	vs, err := f.p.Publish("conf", net, f.ds, f.spec)
	if err != nil {
		t.Fatal(err)
	}
	base := vs[0]
	art, err := f.p.Registry.Load(base.ID)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := compat.CompileProcVM(art, compat.CompileOptions{Name: base.Name})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.p.Registry.RegisterCompiled(base.ID, mod, base.Metrics.Accuracy); err != nil {
		t.Fatal(err)
	}
	return base
}

// conformanceVariants returns the five-kind matrix. Each variant is pinned
// to a device whose hardware serves it natively, so ExecutionScheme (and
// the independent reference below) never silently falls back.
func conformanceVariants() []conformanceVariant {
	return []conformanceVariant{
		{
			name: "float32", deviceID: "m7-camera-00",
			policy:   func() DeployConfig { return DeployConfig{Policy: schemePin(quant.Float32)} },
			wantKind: registry.KindNetwork, wantExec: quant.Float32, cut: 1,
		},
		{
			name: "int8", deviceID: "phone-00",
			policy:   func() DeployConfig { return DeployConfig{Policy: schemePin(quant.Int8)} },
			wantKind: registry.KindNetwork, wantExec: quant.Int8, cut: 2,
		},
		{
			name: "int4", deviceID: "npu-board-00",
			policy:   func() DeployConfig { return DeployConfig{Policy: schemePin(quant.Int4)} },
			wantKind: registry.KindNetwork, wantExec: quant.Int4, cut: 2,
		},
		{
			name: "watermarked", deviceID: "edge-gateway-00",
			policy: func() DeployConfig {
				return DeployConfig{Policy: schemePin(quant.Float32), Watermark: "conf-customer"}
			},
			wantKind: registry.KindNetwork, wantExec: quant.Float32, wantMark: true, cut: 1,
		},
		{
			name: "procvm", deviceID: "m4-wearable-00",
			policy: func() DeployConfig {
				return DeployConfig{Policy: selector.Policy{Kinds: []string{registry.KindProcVM}}}
			},
			wantKind: registry.KindProcVM, wantExec: quant.Float32, cut: 0,
		},
	}
}

// independentLogits recomputes what the deployment's live version should
// produce for one input row without touching the deployment's own
// executable: the registry artifact is re-loaded (and, for watermarked
// copies, re-marked from the version's ownership tag) and run through a
// freshly built engine of the matching kind. This is the monolithic
// reference every serving plane must match bit-for-bit.
func independentLogits(t *testing.T, p *Platform, dep *Deployment, x []float32) []float32 {
	t.Helper()
	ver := dep.Version
	if ver.Kind == registry.KindProcVM {
		blob, err := p.Registry.Bytes(ver.ID)
		if err != nil {
			t.Fatal(err)
		}
		mod, err := procvm.DecodeModule(blob)
		if err != nil {
			t.Fatal(err)
		}
		rt := procvm.NewRuntime(mod.Caps)
		if mod.GasLimit > rt.MaxGas {
			rt.MaxGas = mod.GasLimit
		}
		res, err := rt.Run(mod, x)
		if err != nil {
			t.Fatal(err)
		}
		return append([]float32(nil), res.Output.Vec...)
	}
	model, err := p.Registry.Load(ver.ID)
	if err != nil {
		t.Fatal(err)
	}
	if dep.Watermarked() {
		owner := ver.Tags["watermark:"+dep.DeviceID]
		if owner == "" {
			t.Fatalf("watermarked deployment %s has no ownership tag on %s", dep.DeviceID, ver.ID)
		}
		bits := ipprot.KeyedBits(owner, WatermarkCapacity(model))
		if err := ipprot.EmbedStatic(model, owner, bits, ipprot.DefaultStaticWMConfig()); err != nil {
			t.Fatal(err)
		}
	}
	in := tensor.FromSlice(append([]float32(nil), x...), 1, len(x))
	if dep.ExecutionScheme() != quant.Float32 {
		qm, err := quant.NewQModel(model, ver.Scheme)
		if err != nil {
			t.Fatal(err)
		}
		return append([]float32(nil), qm.ForwardBatch(in, quant.NewQScratch()).Data...)
	}
	return append([]float32(nil), model.Predict(in).Data...)
}

func bitsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// assertNoFallback pins the deployment to its declared variant: the kind,
// the executing precision, the watermark flag and the lineage must all
// match the matrix row — a silent fall-back to the float engine (or an
// unmarked copy, or a stale generation) fails the cell even when the
// numbers happen to agree.
func assertNoFallback(t *testing.T, dep *Deployment, v conformanceVariant, wantVer *registry.ModelVersion) {
	t.Helper()
	if dep.Version.Kind != v.wantKind {
		t.Fatalf("%s: kind %q, want %q", v.name, dep.Version.Kind, v.wantKind)
	}
	if got := dep.ExecutionScheme(); got != v.wantExec {
		t.Fatalf("%s: execution scheme %v, want %v (silent fallback)", v.name, got, v.wantExec)
	}
	if dep.Watermarked() != v.wantMark {
		t.Fatalf("%s: watermarked=%v, want %v", v.name, dep.Watermarked(), v.wantMark)
	}
	if (dep.CompiledModule() != nil) != (v.wantKind == registry.KindProcVM) {
		t.Fatalf("%s: compiled-module presence disagrees with kind %q", v.name, v.wantKind)
	}
	if dep.Version.ParentID != wantVer.ID && dep.Version.ID != wantVer.ID {
		t.Fatalf("%s: deployed %s is not a variant of generation %s", v.name, dep.Version.ID, wantVer.ID)
	}
}

// serveConformance drives a few local queries through the deployment and
// requires its executable's logits to be bit-identical to the independent
// monolithic forward, with Infer's label the reference argmax.
func (f *conformanceFixture) serveConformance(t *testing.T, dep *Deployment, name, plane string) {
	t.Helper()
	for q := 0; q < 4; q++ {
		x := f.ds.X.Data[q*f.es : (q+1)*f.es]
		want := independentLogits(t, f.p, dep, x)
		if got := dep.ReferenceLogits(x); !bitsEqual(got, want) {
			t.Fatalf("%s/%s: serving logits differ from independent forward", name, plane)
		}
		out, err := dep.Infer(x)
		if err != nil {
			t.Fatalf("%s/%s: %v", name, plane, err)
		}
		if out.Label != argMax(want) {
			t.Fatalf("%s/%s: label %d, want argmax %d", name, plane, out.Label, argMax(want))
		}
	}
}

// TestConformanceVariantMatrix drives every variant kind through every
// serving plane — local serve, split offload, direct-ship update (the
// rollout plane) and swarm-sourced update — and requires each plane's
// answers to be bit-identical to a monolithic forward pass recomputed
// independently from the registry artifact. No cell may silently fall
// back: the executing kind, precision and watermark are asserted before
// any numbers are compared. Generations are published between planes, as a
// staged rollout would, so selection always re-decides against live
// registry state.
func TestConformanceVariantMatrix(t *testing.T) {
	f := newConformanceFixture(t)
	variants := conformanceVariants()
	deps := make(map[string]*Deployment, len(variants))

	// Planes 1+2: deploy against generation 1, serve locally, then serve
	// the same inputs through a pinned split — every query must actually
	// split (no silent local fallback) and return the reference bits.
	v1 := f.publishGen(t)
	for _, v := range variants {
		cfg := v.policy()
		cfg.PrepaidQueries = 200
		cfg.Calibration = f.ds
		dep, err := f.p.Deploy(v.deviceID, "conf", cfg)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		deps[v.name] = dep
		assertNoFallback(t, dep, v, v1)
		f.serveConformance(t, dep, v.name, "serve")

		sess, err := f.p.Offload(v.deviceID, OffloadConfig{
			Cloud: f.cloud, Plan: &market.SplitPlan{Cut: v.cut},
			Replan: offload.ReplanConfig{Disabled: true},
		})
		if err != nil {
			t.Fatalf("%s: offload: %v", v.name, err)
		}
		for q := 0; q < 4; q++ {
			x := f.ds.X.Data[q*f.es : (q+1)*f.es]
			out, err := sess.Infer(x)
			if err != nil {
				t.Fatalf("%s/offload: %v", v.name, err)
			}
			if out.Split.Mode != offload.ModeSplit {
				t.Fatalf("%s/offload: mode %v, want split", v.name, out.Split.Mode)
			}
			if !bitsEqual(out.Split.Logits, independentLogits(t, f.p, dep, x)) {
				t.Fatalf("%s/offload: split logits differ from independent forward", v.name)
			}
		}
	}

	// Plane 3: rollout — generation 2 publishes, every variant updates via
	// a direct registry ship, survives re-selection in kind, and serves the
	// new generation bit-exactly.
	v2 := f.publishGen(t)
	for _, v := range variants {
		dep := deps[v.name]
		if _, err := dep.Update(v2, UpdateOptions{Calibration: f.ds}); err != nil {
			t.Fatalf("%s/rollout: %v", v.name, err)
		}
		assertNoFallback(t, dep, v, v2)
		f.serveConformance(t, dep, v.name, "rollout")
	}

	// Plane 4: swarm-sourced update to generation 3. Watermarked copies
	// are perturbed per customer, so their transfer ships direct even when
	// a swarm is offered — but the cell must still converge and stay
	// marked. Everyone else's bytes must be fully attributed to peers or
	// the registry.
	v3 := f.publishGen(t)
	sw, err := f.p.NewSwarm(SwarmOptions{ChunkBytes: 256, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range variants {
		dep := deps[v.name]
		rep, err := dep.Update(v3, UpdateOptions{Calibration: f.ds, Swarm: sw})
		if err != nil {
			t.Fatalf("%s/swarm-update: %v", v.name, err)
		}
		if rep.ShipBytes == 0 {
			t.Fatalf("%s/swarm-update: nothing shipped", v.name)
		}
		if !v.wantMark && rep.PeerBytes+rep.RegistryBytes != rep.ShipBytes {
			t.Fatalf("%s/swarm-update: swarm accounting %d+%d != %d shipped",
				v.name, rep.PeerBytes, rep.RegistryBytes, rep.ShipBytes)
		}
		assertNoFallback(t, dep, v, v3)
		f.serveConformance(t, dep, v.name, "swarm-update")
	}
	st := sw.Stats()
	if st.RegistryEgressBytes+st.PeerBytes != st.DeliveredBytes || st.ConservationViolations != 0 {
		t.Fatalf("swarm byte conservation broken after matrix: %+v", st)
	}
}

func argMax(v []float32) int {
	best := 0
	for i := range v {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}
