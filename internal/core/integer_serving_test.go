package core

import (
	"math"
	"testing"

	"tinymlops/internal/dataset"
	"tinymlops/internal/device"
	"tinymlops/internal/market"
	"tinymlops/internal/nn"
	"tinymlops/internal/offload"
	"tinymlops/internal/quant"
	"tinymlops/internal/registry"
	"tinymlops/internal/selector"
	"tinymlops/internal/tensor"
)

// softCaps is a hardware profile with no native low-bit support: integer
// variants deployed here must fall back to fake-quantized float execution
// and pay the emulation penalty in the cost model.
func softCaps() device.Capabilities {
	return device.Capabilities{
		Name: "m-soft", Class: device.ClassM4,
		ClockHz:          120e6,
		MACsPerCycle:     map[int]float64{32: 0.5},
		EmulationPenalty: 2,
		FlashBytes:       1 << 20, RAMBytes: 256 << 10,
		EnergyPerMACJoule: 25e-12, EnergyPerTxByteJoule: 1.5e-6,
		BatteryJoule: 5000,
		SupportedOps: []string{"dense", "relu", "flatten", "softmax"},
	}
}

// integerFixture builds a platform over one NPU-class device (native
// int8) and one soft-float device, with a trained model line carrying an
// int8 variant.
func integerFixture(t *testing.T, seed uint64) (*Platform, *dataset.Dataset, []*registry.ModelVersion) {
	t.Helper()
	rng := tensor.NewRNG(seed)
	fleet := device.NewFleet()
	npuCaps, err := device.ProfileByName("npu-board")
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []struct {
		id   string
		caps device.Capabilities
	}{{"npu-00", npuCaps}, {"soft-00", softCaps()}} {
		d := device.NewDevice(spec.id, spec.caps, tensor.NewRNG(seed+uint64(len(spec.id))))
		d.SetBehavior(1, 1, 0)
		d.Tick()
		if err := fleet.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	p, err := New(fleet, Config{VendorKey: []byte("integer-serving-key-0123456789ab"), Seed: seed, MinCohort: 1})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.Blobs(rng, 600, 4, 3, 5)
	net := nn.NewNetwork([]int{4}, nn.NewDense(4, 16, rng), nn.NewReLU(), nn.NewDense(16, 3, rng))
	if _, err := nn.Train(net, ds.X, ds.Y, nn.TrainConfig{
		Epochs: 8, BatchSize: 32, Optimizer: nn.NewSGD(0.1).WithMomentum(0.9), RNG: rng,
	}); err != nil {
		t.Fatal(err)
	}
	versions, err := p.Publish("intline", net, ds, registry.OptimizationSpec{
		Schemes:  []quant.Scheme{quant.Int8},
		Evaluate: func(n *nn.Network) float64 { return nn.Evaluate(n, ds.X, ds.Y) },
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, ds, versions
}

func int8Policy() selector.Policy {
	return selector.Policy{Schemes: []quant.Scheme{quant.Int8}}
}

// TestDeployIntegerVariantServesNativeKernels is the acceptance test of
// the integer serving path: an int8 variant deployed to a device with
// native 8-bit support executes via the QModel — the reported scheme is
// Int8, the charged latency is the device's native int8 latency (not the
// float32 one), every batched answer is bit-identical to the QModel built
// from the registry artifact, and the labels agree with the fake-quantized
// float reference within the documented tolerance.
func TestDeployIntegerVariantServesNativeKernels(t *testing.T) {
	p, ds, _ := integerFixture(t, 21)
	dep, err := p.Deploy("npu-00", "intline", DeployConfig{
		PrepaidQueries: 10_000, Policy: int8Policy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Version.Scheme != quant.Int8 {
		t.Fatalf("selected scheme %v, policy pinned int8", dep.Version.Scheme)
	}
	if got := dep.ExecutionScheme(); got != quant.Int8 {
		t.Fatalf("execution scheme %v, want int8", got)
	}

	// The cost model charges the native int8 rate: on the NPU profile that
	// is 16× the float32 rate, so the two latencies must diverge.
	macs := dep.Version.Metrics.MACs
	caps := dep.Device().Caps
	wantLat := caps.InferenceLatency(macs, 8)
	if f32 := caps.InferenceLatency(macs, 32); wantLat >= f32 {
		t.Fatalf("fixture broken: int8 latency %v not below float32 %v", wantLat, f32)
	}
	x := make([]float32, 4)
	for f := range x {
		x[f] = ds.X.At2(0, f)
	}
	res, err := dep.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency != wantLat {
		t.Fatalf("charged latency %v, want native int8 latency %v", res.Latency, wantLat)
	}

	// Deployment answers are exactly the QModel of the registry artifact.
	artifact, err := p.Registry.Load(dep.Version.ID)
	if err != nil {
		t.Fatal(err)
	}
	qm, err := quant.NewQModel(artifact, quant.Int8)
	if err != nil {
		t.Fatal(err)
	}
	n := 64
	rows := make([][]float32, n)
	for i := range rows {
		rows[i] = append([]float32(nil), ds.X.Data[i*4:(i+1)*4]...)
	}
	wantLabels := qm.Predict(ds.X.RowSlice(0, n)).ArgMaxRows()
	floatLabels := artifact.Predict(ds.X.RowSlice(0, n)).ArgMaxRows()
	agree := 0
	for i, o := range dep.InferBatch(rows) {
		if o.Err != nil {
			t.Fatalf("row %d: %v", i, o.Err)
		}
		if o.Result.Label != wantLabels[i] {
			t.Fatalf("row %d: deployment label %d != QModel label %d", i, o.Result.Label, wantLabels[i])
		}
		if o.Result.Latency != wantLat {
			t.Fatalf("row %d: batched latency %v != %v", i, o.Result.Latency, wantLat)
		}
		if o.Result.Label == floatLabels[i] {
			agree++
		}
	}
	// Documented tolerance vs the fake-quantized float reference: dynamic
	// activation quantization perturbs each activation by at most half the
	// example's scale, which may flip a prediction sitting on a decision
	// boundary; at least 90% of labels must agree.
	if agree < n*9/10 {
		t.Fatalf("only %d/%d labels agree with the float reference", agree, n)
	}
}

// TestDeployIntegerVariantFallsBackWithoutNativeBits pins the fallback
// wiring: the same int8 variant on hardware without 8-bit MACs executes
// on the float engine (fake-quantized weights) and is charged the
// emulated — slower than float32 — latency.
func TestDeployIntegerVariantFallsBackWithoutNativeBits(t *testing.T) {
	p, ds, _ := integerFixture(t, 22)
	dep, err := p.Deploy("soft-00", "intline", DeployConfig{
		PrepaidQueries: 100, Policy: int8Policy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Version.Scheme != quant.Int8 {
		t.Fatalf("selected scheme %v", dep.Version.Scheme)
	}
	if got := dep.ExecutionScheme(); got != quant.Float32 {
		t.Fatalf("execution scheme %v, want float32 fallback", got)
	}
	x := make([]float32, 4)
	for f := range x {
		x[f] = ds.X.At2(0, f)
	}
	res, err := dep.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	caps := dep.Device().Caps
	macs := dep.Version.Metrics.MACs
	if want := caps.InferenceLatency(macs, 8); res.Latency != want {
		t.Fatalf("latency %v, want emulated %v", res.Latency, want)
	}
	if f32 := caps.InferenceLatency(macs, 32); res.Latency <= f32 {
		t.Fatalf("emulated int8 latency %v should exceed float32 %v (§III-A)", res.Latency, f32)
	}
}

// TestQModelReinstantiatedAcrossUpdateAndRollback drives the OTA arc on
// an integer deployment: the delta still applies to the exact float
// artifact, and after Update and after Rollback the deployment serves a
// freshly derived QModel of whichever artifact is live.
func TestQModelReinstantiatedAcrossUpdateAndRollback(t *testing.T) {
	p, ds, versions := integerFixture(t, 23)
	dep, err := p.Deploy("npu-00", "intline", DeployConfig{
		PrepaidQueries: 10_000, Policy: int8Policy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	v1Variant := dep.Version

	// v2: head-only fine-tune of the base, republished with its variants.
	base, err := p.Registry.Load(versions[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	v2net := base.Clone()
	head := v2net.Layers()[2].(*nn.Dense)
	for i := range head.W.Value.Data {
		head.W.Value.Data[i] += 0.02 * float32(i%3+1)
	}
	v2s, err := p.Publish("intline", v2net, ds, registry.OptimizationSpec{
		Schemes:  []quant.Scheme{quant.Int8},
		Evaluate: func(n *nn.Network) float64 { return nn.Evaluate(n, ds.X, ds.Y) },
	})
	if err != nil {
		t.Fatal(err)
	}

	labelsFor := func(vID string) []int {
		t.Helper()
		artifact, err := p.Registry.Load(vID)
		if err != nil {
			t.Fatal(err)
		}
		qm, err := quant.NewQModel(artifact, quant.Int8)
		if err != nil {
			t.Fatal(err)
		}
		return qm.Predict(ds.X.RowSlice(0, 32)).ArgMaxRows()
	}
	check := func(stage string, wantVersion string) {
		t.Helper()
		if dep.Version.ID != wantVersion {
			t.Fatalf("%s: on version %s, want %s", stage, dep.Version.ID, wantVersion)
		}
		if got := dep.ExecutionScheme(); got != quant.Int8 {
			t.Fatalf("%s: execution scheme %v, want int8", stage, got)
		}
		want := labelsFor(wantVersion)
		rows := make([][]float32, 32)
		for i := range rows {
			rows[i] = append([]float32(nil), ds.X.Data[i*4:(i+1)*4]...)
		}
		for i, o := range dep.InferBatch(rows) {
			if o.Err != nil {
				t.Fatalf("%s row %d: %v", stage, i, o.Err)
			}
			if o.Result.Label != want[i] {
				t.Fatalf("%s row %d: label %d != artifact QModel label %d", stage, i, o.Result.Label, want[i])
			}
		}
	}

	check("pre-update", v1Variant.ID)
	if _, err := dep.Update(v2s[0], UpdateOptions{}); err != nil {
		t.Fatal(err)
	}
	v2Variant := p.Registry.Variants(v2s[0].ID)
	if len(v2Variant) != 1 {
		t.Fatalf("v2 variants = %d", len(v2Variant))
	}
	check("post-update", v2Variant[0].ID)
	if _, err := dep.Rollback(); err != nil {
		t.Fatal(err)
	}
	check("post-rollback", v1Variant.ID)
}

// TestOffloadIntegerDeployments pins the quantized split: an integer-
// native deployment offloads through the QAB1 boundary codec (int8 codes
// plus one dynamic scale per example), the cloud resumes the same integer
// kernels at a dense-stage cut, and offloaded answers stay bit-identical
// to the device executing alone. ErrOffloadInteger is retired — it never
// fires.
func TestOffloadIntegerDeployments(t *testing.T) {
	p, ds, _ := integerFixture(t, 24)
	dep, err := p.Deploy("npu-00", "intline", DeployConfig{
		PrepaidQueries: 100, Policy: int8Policy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if dep.ExecutionScheme() == quant.Float32 {
		t.Fatal("fixture lost its native integer execution")
	}
	cloud := offload.NewCloud(offload.CloudConfig{MaxBatch: 4})
	cloud.Start()
	defer cloud.Close()
	// Stage layout is [dense relu dense]: cut 2 is the dense boundary the
	// session snaps any plan onto.
	sess, err := p.Offload("npu-00", OffloadConfig{
		Cloud: cloud, Plan: &market.SplitPlan{Cut: 2},
		Replan: offload.ReplanConfig{Disabled: true},
	})
	if err != nil {
		t.Fatalf("integer offload: %v, want success (refusal retired)", err)
	}
	es := ds.X.Size() / ds.Len()
	for q := 0; q < 8; q++ {
		x := ds.X.Data[q*es : (q+1)*es]
		out, err := sess.Infer(x)
		if err != nil {
			t.Fatal(err)
		}
		if out.Split.Mode != offload.ModeSplit || out.Split.Cut != 2 {
			t.Fatalf("query %d: mode %v cut %d", q, out.Split.Mode, out.Split.Cut)
		}
		want := dep.ReferenceLogits(x)
		for i, v := range out.Split.Logits {
			if math.Float32bits(v) != math.Float32bits(want[i]) {
				t.Fatalf("query %d: quantized split logit %d differs from on-device integer forward", q, i)
			}
		}
	}
	ver, _, _ := dep.StateSnapshot()
	if !cloud.Registered(ver.ID + "#q") {
		t.Fatal("integer split did not register a quant entry")
	}

	// The float fallback on the soft device offloads through the plain
	// float path under the version's own key — the two entries coexist.
	if _, err := p.Deploy("soft-00", "intline", DeployConfig{
		PrepaidQueries: 100, Policy: int8Policy(),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Offload("soft-00", OffloadConfig{Cloud: cloud}); err != nil {
		t.Fatalf("float-fallback deployment refused: %v", err)
	}
	if !cloud.Registered(ver.ID) {
		t.Fatal("float entry missing after fallback offload")
	}
}
