package core

import (
	"net"
	"strings"
	"testing"

	"tinymlops/internal/dataset"
	"tinymlops/internal/device"
	"tinymlops/internal/metering"
	"tinymlops/internal/nn"
	"tinymlops/internal/registry"
	"tinymlops/internal/tensor"
)

// verifiedFixture is fixture with verified billing armed at rate.
func verifiedFixture(t *testing.T, seed uint64, rate int) (*Platform, *dataset.Dataset, []*registry.ModelVersion) {
	t.Helper()
	rng := tensor.NewRNG(seed)
	fleet, err := device.NewStandardFleet(device.FleetSpec{CountPerProfile: 2, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range fleet.Devices() {
		d.SetBehavior(1, 1, 0)
	}
	fleet.Tick()
	p, err := New(fleet, Config{
		VendorKey: vendorKey, Seed: seed, MinCohort: 1,
		VerifiedBilling: true, AttestationRate: rate,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.Blobs(rng, 600, 4, 3, 5)
	net := nn.NewNetwork([]int{4}, nn.NewDense(4, 16, rng), nn.NewReLU(), nn.NewDense(16, 3, rng))
	if _, err := nn.Train(net, ds.X, ds.Y, nn.TrainConfig{
		Epochs: 6, BatchSize: 32, Optimizer: nn.NewSGD(0.1).WithMomentum(0.9), RNG: rng,
	}); err != nil {
		t.Fatal(err)
	}
	versions, err := p.Publish("clf", net, ds, DefaultOptimizationSpec(ds))
	if err != nil {
		t.Fatal(err)
	}
	return p, ds, versions
}

func settlementServer(t *testing.T, p *Platform) *metering.Server {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := metering.Serve(l, p.Settler)
	t.Cleanup(func() { srv.Close() })
	return srv
}

// The tentpole path end to end: charged queries → sampled proofs in the
// settlement report → batch verification → receipt, over real TCP, with
// a watermarked deployment in the mix (proofs must come from the registry
// artifact, so the watermark must not break them).
func TestVerifiedBillingEndToEnd(t *testing.T) {
	p, ds, _ := verifiedFixture(t, 21, 2)
	srv := settlementServer(t, p)

	devs := []string{"phone-00", "edge-gateway-00"}
	if _, err := p.Deploy(devs[0], "clf", DeployConfig{PrepaidQueries: 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Deploy(devs[1], "clf", DeployConfig{PrepaidQueries: 100, Watermark: "customer-7"}); err != nil {
		t.Fatal(err)
	}

	x := make([]float32, 4)
	for _, id := range devs {
		dep, _ := p.Deployment(id)
		for i := 0; i < 17; i++ {
			for f := 0; f < 4; f++ {
				x[f] = ds.X.At2(i, f)
			}
			if _, err := dep.Infer(x); err != nil {
				t.Fatalf("%s query %d: %v", id, i, err)
			}
		}
	}

	for id, err := range p.SettleAll(srv.Addr()) {
		if err != nil {
			t.Fatalf("settle %s: %v", id, err)
		}
	}
	proofs := 0
	for _, id := range devs {
		dep, _ := p.Deployment(id)
		rc, ok := p.Settler.LastReceipt(dep.Meter.Voucher().ID)
		if !ok || !rc.OK {
			t.Fatalf("%s receipt = %+v (ok=%v)", id, rc, ok)
		}
		if rc.AckSeq != 17 {
			t.Fatalf("%s acked %d charges, want 17", id, rc.AckSeq)
		}
		proofs += rc.ProofsChecked
		if dep.Meter.SettledSeq() != 17 {
			t.Fatalf("%s meter settled seq %d", id, dep.Meter.SettledSeq())
		}
	}
	if proofs == 0 {
		t.Fatal("no proofs were checked across the fleet")
	}
}

// A device that inflates its tick count cannot settle: the fabricated
// entries are chain-valid, but the settlement sample (rooted at the new
// terminal head) demands proofs of real inference it never ran.
func TestVerifiedBillingRejectsInflatedUsage(t *testing.T) {
	p, ds, _ := verifiedFixture(t, 22, 2)
	dep, err := p.Deploy("phone-00", "clf", DeployConfig{PrepaidQueries: 100})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, 4)
	for i := 0; i < 10; i++ {
		for f := 0; f < 4; f++ {
			x[f] = ds.X.At2(i, f)
		}
		if _, err := dep.Infer(x); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := dep.Meter.BuildAttestedReport()
	if err != nil {
		t.Fatal(err)
	}
	v := dep.Meter.Voucher()
	head := rep.Entries[len(rep.Entries)-1].Hash
	for i := 0; i < 8; i++ {
		e := metering.NextEntry(head, rep.Used+1, 999, v.ID)
		rep.Entries = append(rep.Entries, e)
		rep.Used++
		head = e.Hash
	}
	rc := p.Settler.SettleAttested(rep)
	if rc.OK {
		t.Fatal("inflated report settled")
	}
	if rc.Reason != metering.ReasonProofMissing && rc.Reason != metering.ReasonProofInvalid {
		t.Fatalf("inflation rejected for the wrong reason: %s", rc.Reason)
	}
	// The honest report still settles afterwards.
	honest, err := dep.Meter.BuildAttestedReport()
	if err != nil {
		t.Fatal(err)
	}
	if rc := p.Settler.SettleAttested(honest); !rc.OK {
		t.Fatalf("honest report rejected after fraud attempt: %s", rc.Reason)
	}
}

// Charges served by a version the deployment has since updated off must
// still prove at settlement — and a proof relabeled to another version
// must fail even when that version shares the proved layer's weights
// (the context binds the model identity, not just the weights).
func TestVerifiedBillingAcrossUpdate(t *testing.T) {
	p, ds, versions := verifiedFixture(t, 23, 1)
	dep, err := p.Deploy("phone-00", "clf", DeployConfig{PrepaidQueries: 200})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, 4)
	serve := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			for f := 0; f < 4; f++ {
				x[f] = ds.X.At2(i, f)
			}
			if _, err := dep.Infer(x); err != nil {
				t.Fatal(err)
			}
		}
	}
	serve(6)
	v1 := dep.Version.ID

	// Publish a v2 whose first dense layer is IDENTICAL to v1's — a
	// head-only fine-tune. Weight comparison alone cannot tell them apart.
	art, err := p.Registry.Load(versions[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range art.Layers() {
		if d, ok := l.(*nn.Dense); ok && d.In == 16 {
			for i := range d.W.Value.Data {
				d.W.Value.Data[i] += 0.01
			}
		}
	}
	v2s, err := p.Publish("clf2", art, ds, DefaultOptimizationSpec(ds))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Update(v2s[0], UpdateOptions{}); err != nil {
		t.Fatal(err)
	}
	serve(5)

	rep, err := dep.Meter.BuildAttestedReport()
	if err != nil {
		t.Fatal(err)
	}
	sawV1, sawV2 := false, false
	for _, att := range rep.Attestations {
		sawV1 = sawV1 || att.ModelID == v1
		sawV2 = sawV2 || att.ModelID == dep.Version.ID
	}
	if !sawV1 || !sawV2 {
		t.Fatalf("report should attest both versions (v1=%v v2=%v)", sawV1, sawV2)
	}
	rcOK := p.Settler.SettleAttested(rep)
	if !rcOK.OK {
		t.Fatalf("cross-version report rejected: %s", rcOK.Reason)
	}
	dep.Meter.Acknowledge(rcOK.AckSeq)

	// Relabel: produce a fresh window, then claim v1 charges were served
	// by v2 (same first-dense weights). Must be rejected via the context.
	serve(4)
	rep2, err := dep.Meter.BuildAttestedReport()
	if err != nil {
		t.Fatal(err)
	}
	relabeled := false
	for i := range rep2.Attestations {
		if rep2.Attestations[i].ModelID == dep.Version.ID {
			rep2.Attestations[i].ModelID = v1
			relabeled = true
			break
		}
	}
	if !relabeled {
		t.Fatal("nothing to relabel in second window")
	}
	rc := p.Settler.SettleAttested(rep2)
	if rc.OK {
		t.Fatal("relabeled model version settled")
	}
	if !strings.Contains(rc.Reason, "proof") {
		t.Fatalf("relabeling rejected for the wrong reason: %s", rc.Reason)
	}
}
