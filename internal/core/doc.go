// Package core assembles the TinyMLOps platform of Figure 1: one facade
// that owns the model registry and optimization pipeline (§III-A), deploys
// per-device variants with encrypted artifacts and metered query packages
// (§III-A/C, §V), runs the on-device pipeline (procvm preprocessing →
// metering gate → inference on the device cost model → drift monitoring →
// postprocessing), ships anonymized telemetry when devices reach WiFi
// (§III-B), settles usage with the vendor (§III-C), and retrains the
// global model federatedly before re-deriving every variant (§III-D).
//
// Fleet-wide operations — DeployMany, SyncTelemetry, SettleAll — fan out
// over the platform's internal/engine worker pool (Config.Workers), and
// Deployment.InferBatch serves whole query bursts through one batched
// forward pass with reusable scratch buffers; both are the §I "millions of
// users" story made operational, with results deterministic at any worker
// count.
package core
