// Package tinymlops is the public API of the TinyMLOps platform — a Go
// reproduction of "TinyMLOps: Operational Challenges for Widespread Edge
// AI Adoption" (Leroux et al., 2022).
//
// The package re-exports the platform facade and the subsystems a
// downstream user composes:
//
//   - model training and serialization (the nn engine),
//   - the registry with its automatic optimization pipeline (§III-A),
//   - per-device variant selection and deployment over a simulated
//     heterogeneous fleet, serving integer variants through native
//     int8/int4 kernels on capable hardware (§III-A, §IV),
//   - on-device observability and store-and-forward telemetry (§III-B),
//   - offline pay-per-query metering with tamper-evident settlement
//     (§III-C),
//   - federated learning with update compression and personalization
//     (§III-D),
//   - model IP protection: encryption, watermarking, extraction defenses
//     (§V),
//   - verifiable execution via sum-check proofs (§VI).
//
// See examples/quickstart for the end-to-end flow.
package tinymlops

import (
	"time"

	"tinymlops/internal/compat"
	"tinymlops/internal/core"
	"tinymlops/internal/dataset"
	"tinymlops/internal/device"
	"tinymlops/internal/enclave"
	"tinymlops/internal/engine"
	"tinymlops/internal/faults"
	"tinymlops/internal/fed"
	"tinymlops/internal/market"
	"tinymlops/internal/nn"
	"tinymlops/internal/offload"
	"tinymlops/internal/procvm"
	"tinymlops/internal/registry"
	"tinymlops/internal/rollout"
	"tinymlops/internal/selector"
	"tinymlops/internal/swarm"
	"tinymlops/internal/tensor"
)

// Platform is the TinyMLOps control plane over a simulated device fleet.
type Platform = core.Platform

// PlatformConfig provisions a Platform (vendor key, seed, telemetry
// anonymity floor).
type PlatformConfig = core.Config

// Deployment is one model live on one device: metering gate, drift
// monitor, telemetry buffer and pipeline modules included.
type Deployment = core.Deployment

// DeployConfig controls selection policy, prepaid quota, drift
// calibration, watermarking and pipeline modules for one deployment.
type DeployConfig = core.DeployConfig

// InferenceResult is one query's outcome on a deployment.
type InferenceResult = core.InferenceResult

// ErrQueryDenied is returned by Deployment.Infer when the prepaid meter is
// exhausted.
var ErrQueryDenied = core.ErrQueryDenied

// BatchOutcome is one query's outcome within Deployment.InferBatch.
type BatchOutcome = core.BatchOutcome

// Staged OTA rollout types (§III-A: updatable deployments).

// UpdateOptions controls one Deployment.Update (monitor recalibration,
// full-vs-delta transfer).
type UpdateOptions = core.UpdateOptions

// UpdateReport accounts one update or rollback: versions moved, bytes
// shipped and flashed, delta sparsity.
type UpdateReport = core.UpdateReport

// RolloutConfig controls Platform.Rollout (waves, gate, seed, bake,
// monitor recalibration).
type RolloutConfig = core.RolloutConfig

// RolloutWave is one stage of a staged rollout: a name and the cumulative
// fleet fraction updated once the wave completes.
type RolloutWave = rollout.Wave

// RolloutGate sets the health thresholds a wave must clear (drift alarms,
// error rate, latency regression, update failures).
type RolloutGate = rollout.Gate

// RolloutResult is the whole rollout's record: per-wave outcomes, gate
// decisions, rollbacks and transfer accounting.
type RolloutResult = rollout.Result

// WaveResult is one wave's record within a RolloutResult.
type WaveResult = rollout.WaveResult

// GateDecision is the health gate's verdict over one wave.
type GateDecision = rollout.GateDecision

// DeviceHealth is a deployment's telemetry summary over its live window —
// what rollout gates compare before and after an update.
type DeviceHealth = rollout.Health

// DefaultRolloutWaves returns the canary → cohort → fleet progression.
func DefaultRolloutWaves() []RolloutWave { return rollout.DefaultWaves() }

// Weight-delta codec (sparse same-topology OTA patches).

// ModelDeltaCost is the modeled transfer/flash footprint of a delta at a
// given weight precision.
type ModelDeltaCost = nn.DeltaCost

// EncodeModelDelta computes the sparse weight delta that upgrades oldNet
// to newNet (same topology required); applying it reproduces newNet
// bit-exactly.
func EncodeModelDelta(oldNet, newNet *Network) ([]byte, error) {
	return nn.EncodeDelta(oldNet, newNet)
}

// ApplyModelDelta returns a new network equal to oldNet patched by delta.
func ApplyModelDelta(oldNet *Network, delta []byte) (*Network, error) {
	return nn.ApplyDelta(oldNet, delta)
}

// CostOfModelDelta parses an encoded delta and returns its modeled cost at
// the given weight bit width (≤ 0 means 32).
func CostOfModelDelta(delta []byte, bits int) (ModelDeltaCost, error) {
	return nn.CostOfDelta(delta, bits)
}

// Fault injection and fleet auditing (the chaos plane).

// ChaosConfig sets the deterministic per-round fault rates: network
// drops, latency spikes, battery death, mid-flash install crashes, churn,
// telemetry loss, and federated dropouts/stragglers.
type ChaosConfig = faults.ChaosConfig

// FaultProfile is the set of faults one device draws for one round — a
// pure function of (seed, round, device ID).
type FaultProfile = faults.FaultProfile

// FaultPlane derives and applies deterministic fault profiles to a fleet.
type FaultPlane = faults.Plane

// NewFaultPlane returns a fault plane over the configuration.
func NewFaultPlane(cfg ChaosConfig) *FaultPlane { return faults.New(cfg) }

// AuditConfig controls one fleet invariant audit.
type AuditConfig = faults.AuditConfig

// AuditReport is the fleet-wide invariant audit result: meter
// conservation, slot/version convergence, telemetry monotonicity, and
// partial-install detection.
type AuditReport = faults.AuditReport

// AuditPlatform checks a platform's fleet against the invariants a chaos
// run must not break.
func AuditPlatform(p *Platform, cfg AuditConfig) *AuditReport { return faults.Audit(p, cfg) }

// ChaosScenarioConfig configures the canned chaos experiment.
type ChaosScenarioConfig = faults.ScenarioConfig

// ChaosScenarioResult records one chaos experiment: rollout record, fault
// accounting, audit, and the determinism fingerprint.
type ChaosScenarioResult = faults.ScenarioResult

// RunChaosScenario deploys v1, publishes v2, drives a staged rollout
// under the configured fault weather, reconciles the stragglers and
// audits every invariant. Bit-identical at any worker count.
func RunChaosScenario(cfg ChaosScenarioConfig) (*ChaosScenarioResult, error) {
	return faults.RunScenario(cfg)
}

// ClientFault is one federated client's injected failure for a round
// (dropout or straggler); see FedConfig's Faults hook.
type ClientFault = fed.ClientFault

// Peer-to-peer OTA swarm distribution (content-addressed chunks with a
// byte-conservation ledger; see internal/swarm).

// Swarm coordinates peer-to-peer artifact distribution: wave-N devices
// that hold a version serve hash-verified chunks to wave-N+1 fetchers,
// with the registry seeding only the canary wave and acting as source of
// last resort. Build one with Platform.NewSwarm and pass it to
// RolloutConfig.Swarm or UpdateOptions.Swarm.
type Swarm = swarm.Swarm

// SwarmOptions configures Platform.NewSwarm (chunk size, seed, peer-drop
// weather, per-chunk retry budget).
type SwarmOptions = core.SwarmOptions

// SwarmStats is the swarm's cumulative transfer ledger; its byte
// conservation invariant (registry egress + peer bytes == delivered
// bytes) is checked by the fleet audit.
type SwarmStats = swarm.Stats

// SwarmTransferStats accounts one completed swarm transfer.
type SwarmTransferStats = swarm.TransferStats

// SwarmDropFunc injects deterministic peer loss into a swarm: called per
// (wave, attempt, fetcher, peer, key, chunk), it returns 0 for no drop, a
// fraction in (0,1) for a mid-chunk loss at that point, or ≥1 for a drop
// before the first byte.
type SwarmDropFunc = swarm.DropFunc

// SwarmReport is a chaos scenario's swarm record: the cumulative ledger
// plus each wave's registry/peer egress split.
type SwarmReport = faults.SwarmReport

// SwarmWaveBytes is one rollout wave's radio-byte split by source.
type SwarmWaveBytes = faults.WaveBytes

// ChunkManifest splits an artifact into fixed-size content-addressed
// chunks: per-chunk SHA-256 hashes plus a whole-artifact digest, with a
// canonical binary codec.
type ChunkManifest = swarm.Manifest

// ChunkReassembler collects verified chunks and assembles the artifact
// bit-exactly.
type ChunkReassembler = swarm.Reassembler

// BuildChunkManifest chunks data under key (chunkBytes ≤ 0 uses the 4 KiB
// default).
func BuildChunkManifest(key string, data []byte, chunkBytes int64) (*ChunkManifest, error) {
	return swarm.BuildManifest(key, data, chunkBytes)
}

// UnmarshalChunkManifest decodes a canonical manifest; any decodable
// input re-encodes to exactly the same bytes.
func UnmarshalChunkManifest(data []byte) (*ChunkManifest, error) {
	return swarm.UnmarshalManifest(data)
}

// NewChunkReassembler returns an empty reassembler for the manifest.
func NewChunkReassembler(m *ChunkManifest) *ChunkReassembler { return swarm.NewReassembler(m) }

// Typed swarm chunk errors: every rejection is classifiable.
var (
	// ErrBadManifest is returned for malformed or non-canonical manifest
	// encodings.
	ErrBadManifest = swarm.ErrBadManifest
	// ErrChunkHashMismatch is returned when a chunk's bytes fail its
	// manifest hash.
	ErrChunkHashMismatch = swarm.ErrChunkHashMismatch
	// ErrDuplicateChunk is returned when a chunk index is added twice —
	// every byte is downloaded exactly once.
	ErrDuplicateChunk = swarm.ErrDuplicateChunk
)

// ErrDeltaBaseMissing is set as UpdateReport.DeltaFallback when a
// delta-eligible update found the running version's artifact evicted from
// the registry and fell back to a full-artifact transfer.
var ErrDeltaBaseMissing = core.ErrDeltaBaseMissing

// ErrArtifactMissing is wrapped by registry loads of evicted or unknown
// version artifacts.
var ErrArtifactMissing = registry.ErrArtifactMissing

// Edge–cloud offload plane (§IV: partitioned execution, live).

// LayerCost is one layer's static cost summary (MACs, activation size) —
// what split planning consumes; see Network.Summary.
type LayerCost = nn.LayerCost

// SplitPlan describes running layers [0,Cut) on the device and [Cut,n) in
// the cloud, with the latency decomposition that justified the cut.
type SplitPlan = market.SplitPlan

// BestSplit finds the layer cut minimizing end-to-end latency for the
// given device/cloud pair, uplink bandwidth (bytes/second; 0 forces the
// full-edge plan), round-trip time and raw input size. It returns the
// best plan and the full per-cut curve.
func BestSplit(costs []LayerCost, dev, cloud DeviceCapabilities, bits int, bandwidthBps float64, rtt time.Duration, inputBytes int64) (SplitPlan, []SplitPlan, error) {
	return market.BestSplit(costs, dev, cloud, bits, bandwidthBps, rtt, inputBytes)
}

// OffloadCloud is the cloud half of the offload plane: a bounded, batched
// admission queue that coalesces concurrent suffix requests into single
// ForwardBatch calls with per-tenant fair scheduling.
type OffloadCloud = offload.CloudTier

// OffloadCloudConfig sizes an OffloadCloud (modeled hardware, batch
// coalescing limit, queue bound, dispatcher count).
type OffloadCloudConfig = offload.CloudConfig

// OffloadCloudStats aggregates a tier's serving counters (submitted,
// served, shed, batches, high-water marks).
type OffloadCloudStats = offload.CloudStats

// NewOffloadCloud returns a cloud tier; call Start to begin serving and
// Close to drain and stop.
func NewOffloadCloud(cfg OffloadCloudConfig) *OffloadCloud { return offload.NewCloud(cfg) }

// OffloadConfig controls Platform.Offload (cloud tier, RTT, shed retry
// policy, re-planning thresholds, optional pinned plan).
type OffloadConfig = core.OffloadConfig

// OffloadSession is a deployment serving queries through the split
// runtime — metering, drift monitoring and telemetry stay the
// deployment's own; only the forward pass moves.
type OffloadSession = core.OffloadSession

// OffloadOutcome is one offloaded query's result: the deployment-level
// view plus the split execution detail.
type OffloadOutcome = core.OffloadOutcome

// OffloadResult is the split runtime's per-query record (mode, cut,
// boundary bytes, energy, cloud batch).
type OffloadResult = offload.Result

// OffloadMode records how an offloaded query executed.
type OffloadMode = offload.Mode

// Offload execution modes: the plan kept the query local, the split ran
// prefix-on-device / suffix-in-cloud, or a failed split fell back to full
// on-device execution.
const (
	OffloadLocal    = offload.ModeLocal
	OffloadSplit    = offload.ModeSplit
	OffloadFallback = offload.ModeFallback
)

// OffloadStats aggregates a session's execution counters.
type OffloadStats = offload.Stats

// OffloadReplanConfig tunes when a session re-runs BestSplit and how
// reluctant it is to move the cut (two-stage hysteresis).
type OffloadReplanConfig = offload.ReplanConfig

// OffloadConditions is the live telemetry a replanner watches: uplink
// bandwidth, battery fraction, cloud queue depth.
type OffloadConditions = offload.Conditions

// OffloadReport is the chaos scenario's offload-phase record.
type OffloadReport = faults.OffloadReport

// ErrOffloadShed is returned by OffloadCloud.Submit when the bounded
// admission queue is full; sessions retry it on the deterministic backoff
// schedule and fall back to local execution if it persists.
var ErrOffloadShed = offload.ErrShed

// ErrOffloadStale is returned after an OTA update invalidates an offload
// session; open a new session against the updated deployment.
var ErrOffloadStale = core.ErrOffloadStale

// ErrOffloadInteger is retired: integer-kernel deployments now split
// through the quantized boundary codec (int8 codes plus a per-example
// scale), so Platform.Offload never returns it. The sentinel stays
// exported so existing errors.Is checks keep compiling; they simply never
// match.
var ErrOffloadInteger = core.ErrOffloadInteger

// Portable protected execution: compat→procvm lowering, registry-first
// compiled artifacts and enclave-hosted trusted offload.

// ProcVMModule is a compiled processing pipeline for the capability-gated,
// gas-metered bytecode VM — the portable protected executable format. The
// canonical encoding (Module.Encode / DecodeProcVMModule) is what the
// registry stores and deployments flash.
type ProcVMModule = procvm.Module

// ProcVMRuntime executes modules under a capability grant and a gas
// budget.
type ProcVMRuntime = procvm.Runtime

// ProcVMCapability is a bitmask of host resources a module requires and a
// runtime grants.
type ProcVMCapability = procvm.Capability

// Procvm capability flags.
const (
	ProcVMCapNone    = procvm.CapNone
	ProcVMCapSensor  = procvm.CapSensor
	ProcVMCapNetwork = procvm.CapNetwork
	ProcVMCapStorage = procvm.CapStorage
)

// ErrProcVMOutOfGas is returned when execution exhausts the runtime's gas
// budget; ErrProcVMCapabilityDenied when the host grant does not cover the
// module's manifest.
var (
	ErrProcVMOutOfGas         = procvm.ErrOutOfGas
	ErrProcVMCapabilityDenied = procvm.ErrCapabilityDenied
)

// NewProcVMRuntime returns a runtime granting the given capabilities.
func NewProcVMRuntime(granted ProcVMCapability) *ProcVMRuntime { return procvm.NewRuntime(granted) }

// DecodeProcVMModule parses a canonical module encoding, rejecting any
// truncated, trailing or malformed input.
func DecodeProcVMModule(data []byte) (*ProcVMModule, error) { return procvm.DecodeModule(data) }

// ProcVMCompileOptions controls CompileProcVM (module name, capability
// manifest, verification probes and lowering tolerance).
type ProcVMCompileOptions = compat.CompileOptions

// CompileProcVM lowers a trained network into a procvm module: dropout is
// stripped, batchnorm folded, each layer instruction-selected onto the VM
// ISA, and the result is gate-checked bit-exact against the lowered
// network on every probe before anything is returned. The module's gas
// limit is pinned to its measured execution cost.
func CompileProcVM(net *Network, opts ProcVMCompileOptions) (*ProcVMModule, error) {
	return compat.CompileProcVM(net, opts)
}

// Artifact kinds in the registry's lineage DAG: plain serialized networks
// (the default) and compiled procvm modules registered as first-class
// variants via Registry.RegisterCompiled.
const (
	ModelKindNetwork = registry.KindNetwork
	ModelKindProcVM  = registry.KindProcVM
)

// EnclaveSession hosts protected suffix execution on the cloud tier:
// sealed artifacts (networks and compiled modules) are loaded, measured
// and attested, then served to offload sessions without the plaintext
// ever leaving the enclave. Build the Enclave itself with NewEnclave
// (protect.go) and verify reports with VerifyAttestation. Pass a session
// through OffloadConfig.Enclave, or leave it nil and the platform
// provisions a shared cloud enclave from the vendor key on first use.
type EnclaveSession = enclave.Session

// EnclaveReport is a keyed attestation over (enclave, measurement,
// nonce); verify it against the manufacturer root with VerifyAttestation.
type EnclaveReport = enclave.Report

// NewEnclaveSession opens a protected-execution session on an enclave.
func NewEnclaveSession(e *Enclave) *EnclaveSession { return enclave.NewSession(e) }

// TransientUpdateError reports whether an update failure is worth
// retrying: the device was offline, or the install crashed mid-flash and
// left a resumable slot.
func TransientUpdateError(err error) bool { return core.TransientUpdateError(err) }

// ErrDeviceOffline is wrapped by transfer failures on disconnected
// devices.
var ErrDeviceOffline = device.ErrOffline

// ErrInstallInterrupted is wrapped by installs that crashed mid-flash;
// retrying the same image resumes the half-written slot.
var ErrInstallInterrupted = device.ErrInstallInterrupted

// Execution engine types.

// RetryPolicy bounds retries of transient faults on a deterministic
// exponential backoff schedule.
type RetryPolicy = engine.RetryPolicy

// RetryResult accounts one retried operation (attempts, total backoff).
type RetryResult = engine.RetryResult

// Retry runs fn under the policy, consulting retryable (nil = retry all)
// between attempts.
func Retry(p RetryPolicy, retryable func(error) bool, fn func(attempt int) error) (RetryResult, error) {
	return engine.Retry(p, retryable, fn)
}

// SeedForID derives an independent seed for a string-keyed entity in a
// round — the ID-keyed sibling of the engine's positional derivation.
func SeedForID(root, round uint64, id string) uint64 { return engine.SeedForID(root, round, id) }

// Engine is the bounded worker pool behind all parallel fleet operations.
type Engine = engine.Engine

// EngineConfig sizes an Engine (Workers ≤ 0 means all cores).
type EngineConfig = engine.Config

// NewEngine returns a worker pool with cfg.Workers workers.
func NewEngine(cfg EngineConfig) *Engine { return engine.New(cfg) }

// DefaultEngine returns a worker pool sized to the machine.
func DefaultEngine() *Engine { return engine.Default() }

// FleetRunner drives a Fleet through deterministic, parallel simulation
// rounds: same seed ⇒ same results at any worker count.
type FleetRunner = engine.FleetRunner

// NewFleetRunner returns a runner over fleet on eng (nil eng = all cores).
func NewFleetRunner(eng *Engine, fleet *Fleet, seed uint64) *FleetRunner {
	return engine.NewFleetRunner(eng, fleet, seed)
}

// FleetResult pairs a device with its outcome for one fleet round.
type FleetResult[T any] struct {
	DeviceID string
	Value    T
	Err      error
}

// RunFleetRound executes work once per device across the runner's pool and
// returns the results in fleet insertion order. The rng handed to work is
// derived from (seed, round, device index) and must be its only source of
// randomness, which keeps rounds reproducible at any worker count.
func RunFleetRound[T any](r *FleetRunner, work func(d *Device, rng *RNG) (T, error)) []FleetResult[T] {
	res := engine.RunRound(r, func(d *device.Device, rng *tensor.RNG) (T, error) {
		return work(d, rng)
	})
	out := make([]FleetResult[T], len(res))
	for i, v := range res {
		out[i] = FleetResult[T]{DeviceID: v.DeviceID, Value: v.Value, Err: v.Err}
	}
	return out
}

// NewPlatform creates a platform over a device fleet.
func NewPlatform(fleet *Fleet, cfg PlatformConfig) (*Platform, error) {
	return core.New(fleet, cfg)
}

// DefaultOptimizationSpec derives int8/int4/ternary/binary variants
// evaluated on eval — the standard §III-A optimization pipeline.
func DefaultOptimizationSpec(eval *Dataset) OptimizationSpec {
	return core.DefaultOptimizationSpec(eval)
}

// Registry types.

// Registry is the content-addressed model store with lineage tracking.
type Registry = registry.Registry

// ModelVersion is one node of the registry's lineage DAG.
type ModelVersion = registry.ModelVersion

// OptimizationSpec configures automatic variant generation on publish.
type OptimizationSpec = registry.OptimizationSpec

// Selection types.

// SelectionPolicy weighs accuracy, latency, download and energy when
// choosing a variant for a device context.
type SelectionPolicy = selector.Policy

// DefaultSelectionPolicy returns the weights used across the experiments.
func DefaultSelectionPolicy() SelectionPolicy { return selector.DefaultPolicy() }

// Select picks the best feasible model variant for one device.
func Select(dev *Device, candidates []*ModelVersion, policy SelectionPolicy) (selector.Decision, error) {
	return selector.Select(dev, candidates, policy)
}

// Fleet types.

// Device is one simulated edge node (capabilities, battery, connectivity,
// usage counters).
type Device = device.Device

// Fleet is a collection of simulated devices.
type Fleet = device.Fleet

// DeviceCapabilities describes a hardware profile.
type DeviceCapabilities = device.Capabilities

// FleetSpec configures NewStandardFleet.
type FleetSpec = device.FleetSpec

// NewStandardFleet builds a heterogeneous fleet with CountPerProfile
// devices of each of the six standard profiles.
func NewStandardFleet(spec FleetSpec) (*Fleet, error) { return device.NewStandardFleet(spec) }

// StandardProfiles returns the six reference device profiles.
func StandardProfiles() []DeviceCapabilities { return device.StandardProfiles() }

// ProfileByName returns a standard profile by name
// ("m0-sensor", "m4-wearable", "m7-camera", "npu-board", "phone",
// "edge-gateway").
func ProfileByName(name string) (DeviceCapabilities, error) { return device.ProfileByName(name) }

// Dataset types.

// Dataset is a labeled collection of fixed-shape examples.
type Dataset = dataset.Dataset

// Blobs generates the linearly separable Gaussian-cluster task.
func Blobs(rng *RNG, n, features, classes int, sep float32) *Dataset {
	return dataset.Blobs(rng, n, features, classes, sep)
}

// Rings generates the concentric-ring task (not linearly separable).
func Rings(rng *RNG, n, classes int, noise float32) *Dataset {
	return dataset.Rings(rng, n, classes, noise)
}

// ShapeImages generates single-channel images of four shape classes for
// convolutional models.
func ShapeImages(rng *RNG, n, size int, noise float32) *Dataset {
	return dataset.ShapeImages(rng, n, size, noise)
}

// KeywordSeq generates keyword-spotting-like waveforms; pitchShift
// emulates speaker variability for personalization studies.
func KeywordSeq(rng *RNG, n, seqLen, classes int, noise, pitchShift float32) *Dataset {
	return dataset.KeywordSeq(rng, n, seqLen, classes, noise, pitchShift)
}

// VibrationAnomaly generates machine-vibration windows for predictive
// maintenance; machineID gives each machine its own signature.
func VibrationAnomaly(rng *RNG, n, window int, anomalyFrac float64, machineID int) *Dataset {
	return dataset.VibrationAnomaly(rng, n, window, anomalyFrac, machineID)
}

// PartitionDirichlet shards a dataset with label skew controlled by alpha
// (small alpha = pathological non-IID).
func PartitionDirichlet(rng *RNG, ds *Dataset, k int, alpha float64) [][]int {
	return dataset.PartitionDirichlet(rng, ds, k, alpha)
}

// PartitionIID shards a dataset uniformly.
func PartitionIID(rng *RNG, ds *Dataset, k int) [][]int {
	return dataset.PartitionIID(rng, ds, k)
}

// DriftStream draws from a base dataset and injects a distribution change
// at a fixed onset.
type DriftStream = dataset.DriftStream

// DriftKind names a drift injection mode.
type DriftKind = dataset.DriftKind

// Drift kinds for NewDriftStream.
const (
	DriftNone      = dataset.DriftNone
	DriftMeanShift = dataset.DriftMeanShift
	DriftRotate    = dataset.DriftRotate
	DriftScale     = dataset.DriftScale
)

// NewDriftStream returns a stream over base with the given drift schedule.
func NewDriftStream(rng *RNG, base *Dataset, onset int, kind DriftKind, magnitude float64) *DriftStream {
	return dataset.NewDriftStream(rng, base, onset, kind, magnitude)
}
